"""Receiver-side representation of the compressed signal.

The transmitter (a filter from :mod:`repro.core`) emits recordings; the
receiver turns them back into an evaluable approximation of the original
signal.  This subpackage provides:

* :class:`~repro.approximation.piecewise.PiecewiseLinearApproximation` and
  :class:`~repro.approximation.piecewise.PiecewiseConstantApproximation` —
  evaluable approximations with error-measurement helpers,
* :func:`~repro.approximation.reconstruct.reconstruct` — rebuild an
  approximation from a recording stream,
* :mod:`~repro.approximation.encoding` — a compact binary encoding of
  recordings used for byte-level compression accounting.
"""

from repro.approximation.encoding import (
    decode_recordings,
    encode_recordings,
    encoded_size_bytes,
    raw_size_bytes,
)
from repro.approximation.piecewise import (
    Approximation,
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)
from repro.approximation.reconstruct import reconstruct, segments_from_recordings

__all__ = [
    "Approximation",
    "PiecewiseLinearApproximation",
    "PiecewiseConstantApproximation",
    "reconstruct",
    "segments_from_recordings",
    "encode_recordings",
    "decode_recordings",
    "encoded_size_bytes",
    "raw_size_bytes",
]
