"""Compact binary encoding of recordings.

The paper measures compression as the ratio of the number of data points to
the number of recordings.  For systems that care about actual bytes on the
wire (sensor networks, §1), this module provides a simple deterministic binary
codec so byte-level ratios can be reported as well:

* header: dimension count ``d`` (uint16) and recording count ``n`` (uint32);
* per recording: kind (uint8), time (float64) and ``d`` float64 values.

The codec is loss-free with respect to the recordings (not the raw signal) and
is intentionally simple — it is an accounting device, not a storage format.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.core.types import FilterResult, Recording, RecordingKind

__all__ = [
    "encode_recordings",
    "decode_recordings",
    "encoded_size_bytes",
    "raw_size_bytes",
    "byte_compression_ratio",
]

_HEADER = struct.Struct("<HI")
_KIND_CODES = {
    RecordingKind.SEGMENT_START: 0,
    RecordingKind.SEGMENT_END: 1,
    RecordingKind.HOLD: 2,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

RecordingsLike = Union[FilterResult, Sequence[Recording]]


def _recordings(recordings: RecordingsLike) -> List[Recording]:
    if isinstance(recordings, FilterResult):
        return list(recordings.recordings)
    return list(recordings)


def encode_recordings(recordings: RecordingsLike) -> bytes:
    """Serialize recordings to bytes.

    Raises:
        ValueError: If the recordings do not all share one dimensionality.
    """
    records = _recordings(recordings)
    if not records:
        return _HEADER.pack(0, 0)
    dimensions = records[0].dimensions
    if any(record.dimensions != dimensions for record in records):
        raise ValueError("all recordings must share the same dimensionality")
    body = struct.Struct(f"<Bd{dimensions}d")
    chunks = [_HEADER.pack(dimensions, len(records))]
    for record in records:
        chunks.append(
            body.pack(_KIND_CODES[record.kind], record.time, *map(float, record.value))
        )
    return b"".join(chunks)


def decode_recordings(payload: bytes) -> List[Recording]:
    """Inverse of :func:`encode_recordings`."""
    dimensions, count = _HEADER.unpack_from(payload, 0)
    if count == 0:
        return []
    body = struct.Struct(f"<Bd{dimensions}d")
    records: List[Recording] = []
    offset = _HEADER.size
    for _ in range(count):
        fields = body.unpack_from(payload, offset)
        offset += body.size
        kind = _CODE_KINDS[fields[0]]
        time = fields[1]
        values = np.asarray(fields[2:], dtype=float)
        records.append(Recording(time, values, kind))
    return records


def encoded_size_bytes(recordings: RecordingsLike) -> int:
    """Size in bytes of the encoded recording stream."""
    return len(encode_recordings(recordings))


def raw_size_bytes(point_count: int, dimensions: int, value_bytes: int = 8, time_bytes: int = 8) -> int:
    """Size in bytes of the unfiltered stream (one time plus d values per point)."""
    if point_count < 0 or dimensions < 0:
        raise ValueError("point_count and dimensions must be non-negative")
    return point_count * (time_bytes + dimensions * value_bytes)


def byte_compression_ratio(recordings: RecordingsLike, point_count: int, dimensions: int) -> float:
    """Byte-level compression ratio: raw stream size / encoded recording size."""
    encoded = encoded_size_bytes(recordings)
    if encoded == 0:
        return float("inf")
    return raw_size_bytes(point_count, dimensions) / encoded
