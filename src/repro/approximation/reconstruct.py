"""Rebuild an evaluable approximation from a recording stream.

The receiver only sees :class:`~repro.core.types.Recording` objects.  Their
``kind`` field carries enough structure to reconstruct the transmitter's
approximation without knowing which filter produced them:

* ``HOLD`` recordings form a piece-wise constant (step) approximation.
* ``SEGMENT_START`` opens a new, disconnected segment.
* ``SEGMENT_END`` closes the open segment; when it is followed by another
  ``SEGMENT_END`` the two consecutive recordings form a *connected* segment
  (they share the intermediate endpoint), exactly as produced by the swing
  filter and by the slide filter's joined segments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.core.types import FilterResult, Recording, RecordingKind, Segment
from repro.approximation.piecewise import (
    Approximation,
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)

__all__ = ["segments_from_recordings", "reconstruct"]

RecordingsLike = Union[FilterResult, Iterable[Recording]]


def _recording_list(recordings: RecordingsLike) -> List[Recording]:
    if isinstance(recordings, FilterResult):
        return list(recordings.recordings)
    return list(recordings)


def segments_from_recordings(recordings: RecordingsLike) -> List[Segment]:
    """Convert linear-family recordings into ordered segments.

    A trailing ``SEGMENT_START`` without a matching end (a stream that ended
    immediately after a violation) becomes a zero-length segment so that the
    final data point is still covered.

    Raises:
        ValueError: If the recordings contain ``HOLD`` entries (piece-wise
            constant output) or a ``SEGMENT_END`` with no open segment.
    """
    records = _recording_list(recordings)
    segments: List[Segment] = []
    open_start: Optional[Recording] = None
    previous_end: Optional[Recording] = None
    for record in records:
        if record.kind is RecordingKind.HOLD:
            raise ValueError("HOLD recordings form a constant approximation, not segments")
        if record.kind is RecordingKind.SEGMENT_START:
            if open_start is not None:
                # Two consecutive segment starts: the earlier one stands for a
                # single transmitted point and becomes a zero-length segment
                # so the receiver still covers it.
                segments.append(
                    Segment(
                        start_time=open_start.time,
                        start_value=open_start.value,
                        end_time=open_start.time,
                        end_value=open_start.value,
                        connected_to_previous=False,
                    )
                )
            open_start = record
            previous_end = None
            continue
        # SEGMENT_END
        if open_start is not None:
            start = open_start
            connected = False
            open_start = None
        elif previous_end is not None:
            start = previous_end
            connected = True
        elif not segments:
            # A recording stream may begin mid-signal (e.g. a time-range read
            # from a segment store): a leading end recording then only anchors
            # the next connected segment.
            previous_end = record
            continue
        else:
            raise ValueError(
                f"segment end at t={record.time!r} has no matching start recording"
            )
        segments.append(
            Segment(
                start_time=start.time,
                start_value=start.value,
                end_time=record.time,
                end_value=record.value,
                connected_to_previous=connected,
            )
        )
        previous_end = record
    if open_start is not None:
        segments.append(
            Segment(
                start_time=open_start.time,
                start_value=open_start.value,
                end_time=open_start.time,
                end_value=open_start.value,
                connected_to_previous=False,
            )
        )
    return segments


def reconstruct(recordings: RecordingsLike) -> Approximation:
    """Build the receiver-side approximation from recordings.

    The approximation family (constant vs. linear) is inferred from the
    recording kinds.

    Raises:
        ValueError: If the recording stream is empty or mixes ``HOLD`` with
            segment recordings.
    """
    records = _recording_list(recordings)
    if not records:
        raise ValueError("cannot reconstruct an approximation from zero recordings")
    hold = [record.kind is RecordingKind.HOLD for record in records]
    if all(hold):
        return PiecewiseConstantApproximation(
            [record.time for record in records],
            [record.value for record in records],
        )
    if any(hold):
        raise ValueError("recordings mix HOLD and segment kinds; cannot reconstruct")
    return PiecewiseLinearApproximation(segments_from_recordings(records))


def recordings_per_segment(segments: Sequence[Segment]) -> int:
    """Count the recordings needed to transmit ``segments``.

    Connected segments share an endpoint with their predecessor and therefore
    cost one recording; disconnected segments cost two.  The result matches
    ``len(result.recordings)`` for the linear-family filters and is used by
    the compression-accounting tests.
    """
    count = 0
    for segment in segments:
        if segment.connected_to_previous:
            count += 1
        else:
            count += 1 if segment.duration == 0.0 else 2
    return count
