"""Evaluable piece-wise approximations of a signal.

Both classes share the small :class:`Approximation` interface: evaluate the
approximation at one or many times, and measure deviations against the
original data points.  Times falling between disconnected segments (where the
original stream had no data) are evaluated against the nearest applicable
segment so that the functions are total.
"""

from __future__ import annotations

import abc
import bisect
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.types import DataPoint, Segment, ensure_points

__all__ = [
    "Approximation",
    "PiecewiseLinearApproximation",
    "PiecewiseConstantApproximation",
]


class Approximation(abc.ABC):
    """Common interface of receiver-side approximations."""

    @property
    @abc.abstractmethod
    def dimensions(self) -> int:
        """Number of signal dimensions."""

    @abc.abstractmethod
    def value_at(self, time: float) -> np.ndarray:
        """Evaluate the approximation at ``time``."""

    def values_at(self, times: Iterable[float]) -> np.ndarray:
        """Evaluate at many times; returns an ``(n, d)`` array."""
        rows = [self.value_at(float(t)) for t in times]
        if not rows:
            return np.empty((0, self.dimensions))
        return np.vstack(rows)

    # ------------------------------------------------------------------ #
    # Error measurement
    # ------------------------------------------------------------------ #
    def deviations(self, points: Iterable) -> np.ndarray:
        """Per-point, per-dimension deviations ``approx - original``."""
        data = ensure_points(points)
        if not data:
            return np.empty((0, self.dimensions))
        approximated = self.values_at(p.time for p in data)
        original = np.vstack([p.value for p in data])
        return approximated - original

    def max_absolute_error(self, points: Iterable) -> float:
        """Largest absolute deviation over all points and dimensions."""
        deviations = self.deviations(points)
        if deviations.size == 0:
            return 0.0
        return float(np.abs(deviations).max())

    def mean_absolute_error(self, points: Iterable) -> float:
        """Mean absolute deviation over all points and dimensions."""
        deviations = self.deviations(points)
        if deviations.size == 0:
            return 0.0
        return float(np.abs(deviations).mean())

    def within_bound(self, points: Iterable, epsilon, slack: float = 1e-9) -> bool:
        """Check the paper's L∞ guarantee: every deviation ≤ ε (+ ``slack``)."""
        deviations = np.abs(self.deviations(points))
        if deviations.size == 0:
            return True
        bound = np.atleast_1d(np.asarray(epsilon, dtype=float))
        if bound.size == 1:
            bound = np.full(self.dimensions, float(bound[0]))
        scaled_slack = slack * (1.0 + np.abs(bound))
        return bool(np.all(deviations <= bound + scaled_slack))


class PiecewiseLinearApproximation(Approximation):
    """A sequence of (possibly disconnected) line segments.

    Segments must be ordered by start time.  Evaluation picks the segment
    covering the requested time; for times in a gap between segments or
    outside the overall span, the nearest segment is extrapolated.
    """

    def __init__(self, segments: Sequence[Segment]) -> None:
        self._segments: List[Segment] = list(segments)
        if not self._segments:
            raise ValueError("an approximation needs at least one segment")
        for earlier, later in zip(self._segments, self._segments[1:]):
            if later.start_time < earlier.start_time:
                raise ValueError("segments must be ordered by start time")
        self._end_times = [segment.end_time for segment in self._segments]
        self._endpoint_cache = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def segments(self) -> Sequence[Segment]:
        """The underlying segments, ordered by time."""
        return tuple(self._segments)

    @property
    def segment_count(self) -> int:
        """Number of line segments."""
        return len(self._segments)

    @property
    def dimensions(self) -> int:
        return self._segments[0].dimensions

    @property
    def start_time(self) -> float:
        """Time where the approximation starts."""
        return self._segments[0].start_time

    @property
    def end_time(self) -> float:
        """Time where the approximation ends."""
        return self._segments[-1].end_time

    def connected_count(self) -> int:
        """Number of segments sharing their start with the previous segment."""
        return sum(1 for segment in self._segments if segment.connected_to_previous)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def segment_at(self, time: float) -> Segment:
        """Return the segment responsible for ``time``."""
        index = bisect.bisect_left(self._end_times, time)
        if index >= len(self._segments):
            return self._segments[-1]
        return self._segments[index]

    def value_at(self, time: float) -> np.ndarray:
        return self.segment_at(time).value_at(time)

    def _endpoints(self):
        """``(t0, x0, t1, x1)`` endpoint arrays, built once per instance."""
        if self._endpoint_cache is None:
            t0 = np.array([s.start_time for s in self._segments])
            t1 = np.asarray(self._end_times, dtype=float)
            x0 = np.vstack([s.start_value for s in self._segments])
            x1 = np.vstack([s.end_value for s in self._segments])
            self._endpoint_cache = (t0, x0, t1, x1)
        return self._endpoint_cache

    def values_at(self, times: Iterable[float]) -> np.ndarray:
        """Vectorized evaluation; same segment choice as :meth:`value_at`."""
        time_array = np.asarray(
            times if isinstance(times, np.ndarray) else list(times), dtype=float
        )
        if time_array.size == 0:
            return np.empty((0, self.dimensions))
        t0, x0, t1, x1 = self._endpoints()
        indices = np.searchsorted(t1, time_array, side="left")
        indices = np.minimum(indices, len(self._segments) - 1)
        seg_t0, seg_t1 = t0[indices], t1[indices]
        duration = seg_t1 - seg_t0
        # Zero-duration segments hold their start value; avoid the 0/0.
        safe = np.where(duration > 0.0, duration, 1.0)
        fraction = np.where(duration > 0.0, (time_array - seg_t0) / safe, 0.0)
        return x0[indices] + fraction[:, None] * (x1[indices] - x0[indices])


class PiecewiseConstantApproximation(Approximation):
    """A step function: each recording's value is held until the next one."""

    def __init__(self, times: Sequence[float], values: Sequence) -> None:
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        if not times:
            raise ValueError("an approximation needs at least one step")
        self._times = [float(t) for t in times]
        if any(b <= a for a, b in zip(self._times, self._times[1:])):
            raise ValueError("step times must be strictly increasing")
        self._values = np.vstack([np.atleast_1d(np.asarray(v, dtype=float)) for v in values])

    @property
    def steps(self) -> Sequence[float]:
        """Times at which the held value changes."""
        return tuple(self._times)

    @property
    def step_count(self) -> int:
        """Number of held values."""
        return len(self._times)

    @property
    def dimensions(self) -> int:
        return int(self._values.shape[1])

    def value_at(self, time: float) -> np.ndarray:
        index = bisect.bisect_right(self._times, time) - 1
        index = max(index, 0)
        return self._values[index].copy()

    def values_at(self, times: Iterable[float]) -> np.ndarray:
        time_list = [float(t) for t in times]
        if not time_list:
            return np.empty((0, self.dimensions))
        indices = np.searchsorted(self._times, time_list, side="right") - 1
        indices = np.clip(indices, 0, len(self._times) - 1)
        return self._values[indices]


def approximate_points(approximation: Approximation, points: Iterable) -> List[DataPoint]:
    """Return the approximation sampled at the original points' times."""
    data = ensure_points(points)
    return [DataPoint(p.time, approximation.value_at(p.time)) for p in data]
