"""Checkpointed, resumable ingestion of one stream into a store.

:func:`ingest_stream_checkpointed` is the durable counterpart of
:class:`~repro.pipeline.ingest.BatchIngestor`: it drives a filter over the
stream chunk by chunk, appends the emitted recordings straight to a store,
and periodically freezes the run — store flush, then an atomic
:class:`~repro.runtime.checkpoint.IngestCheckpoint` with the filter's
snapshot and the consumed-point / stored-recording offsets.

Resume semantics (``resume=True`` with an existing checkpoint):

1. the store's stream is rolled back to ``recordings_stored`` (recordings
   appended after the checkpoint — including any the crash left in the log —
   are dropped, so nothing is duplicated),
2. the filter is rebuilt from the checkpointed
   :class:`~repro.core.state.FilterState`,
3. the first ``points_ingested`` source points are skipped, and
4. ingestion continues; the recordings produced are bit-identical to an
   uninterrupted run because filter snapshots restore exactly.

Both the ``repro ingest --checkpoint`` CLI path and the
:class:`~repro.runtime.parallel.ParallelIngestor` workers run through this
function.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.base import StreamFilter
from repro.core.registry import create_filter, restore_filter
from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks, normalize_chunk
from repro.pipeline.ingest import IngestReport
from repro.runtime.checkpoint import CheckpointManager, IngestCheckpoint
from repro.storage import StoreLike, open_store

__all__ = ["DEFAULT_CHECKPOINT_EVERY", "ingest_stream_checkpointed", "run_ingest"]

#: Default checkpoint cadence, in ingested chunks.
DEFAULT_CHECKPOINT_EVERY = 16


def _skip_points(
    chunks: Iterable[Tuple[np.ndarray, np.ndarray]], skip: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Drop the first ``skip`` points from a chunk iterable (resume path)."""
    remaining = skip
    for times, values in chunks:
        times, values = normalize_chunk(times, values)
        if remaining >= times.shape[0]:
            remaining -= times.shape[0]
            continue
        if remaining > 0:
            times, values = times[remaining:], values[remaining:]
            remaining = 0
        yield times, values


def _epsilon_vector(spec) -> Optional[np.ndarray]:
    """Normalize an ε spec for comparison (``None`` when not comparable)."""
    epsilons = getattr(spec, "epsilons", spec)  # unwrap an ErrorBound
    try:
        return np.atleast_1d(np.asarray(epsilons, dtype=float))
    except (TypeError, ValueError):
        return None


def _check_resume_config(name, previous, stream_filter, epsilon) -> None:
    """Refuse to resume under a different filter or precision width.

    The checkpointed config is what actually governs the resumed run
    (:func:`restore_filter` rebuilds the filter from it); silently accepting
    different request arguments would make the caller believe the remainder
    of the stream was compressed with them.
    """
    state = previous.filter_state
    if state is None:
        return
    requested = (
        stream_filter.name
        if isinstance(stream_filter, StreamFilter)
        else create_filter(stream_filter, epsilon if epsilon is not None else 1.0).name
    )
    if requested != state.filter_name:
        raise ValueError(
            f"checkpoint for {name!r} was written by the {state.filter_name!r} "
            f"filter, cannot resume with {requested!r}"
        )
    if epsilon is None:
        return
    ours = _epsilon_vector(epsilon)
    theirs = _epsilon_vector(state.config.get("epsilon"))
    if ours is not None and theirs is not None and not np.array_equal(ours, theirs):
        raise ValueError(
            f"checkpoint for {name!r} was written with epsilon "
            f"{theirs.tolist()}, cannot resume with {ours.tolist()}"
        )


def ingest_stream_checkpointed(
    store: StoreLike,
    name: str,
    stream_filter: Union[StreamFilter, str],
    epsilon=None,
    times=None,
    values=None,
    chunks: Optional[Iterable[Tuple[np.ndarray, np.ndarray]]] = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: Optional[Union[CheckpointManager, str, Path]] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    **filter_kwargs,
) -> IngestReport:
    """Ingest one stream into ``store``, checkpointing as it goes.

    Args:
        store: Open store (plain or sharded) the recordings are appended to.
        name: Stream name in the store.
        stream_filter: Filter instance or registered filter name.
        epsilon: Precision width; required when the filter is given by name,
            also recorded in the stream's catalog entry.
        times / values: The workload as monolithic arrays (chunked with
            ``chunk_size``); mutually exclusive with ``chunks``.
        chunks: The workload as an iterable of ``(times, values)`` chunk
            pairs (live ingestion).
        chunk_size: Points per chunk for the array form.
        checkpoint: Checkpoint manager or directory; ``None`` disables
            checkpointing (the function degrades to a plain store ingest).
        checkpoint_every: Chunks between checkpoints.
        resume: Resume from ``name``'s checkpoint when one exists; without
            one the run starts fresh.
        **filter_kwargs: Extra options when building the filter by name.

    Returns:
        An :class:`~repro.pipeline.ingest.IngestReport` covering *this run*
        (skipped points are not counted again on resume).

    Raises:
        ValueError: On conflicting workload arguments, a chunk-size mismatch
            with the checkpoint being resumed, or a corrupt checkpoint.
    """
    if (times is None) != (values is None):
        raise ValueError("times and values must be given together")
    if (times is None) == (chunks is None):
        raise ValueError("exactly one of (times, values) or chunks is required")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
    manager: Optional[CheckpointManager] = None
    if checkpoint is not None:
        manager = (
            checkpoint
            if isinstance(checkpoint, CheckpointManager)
            else CheckpointManager(checkpoint)
        )
    if resume and manager is None:
        raise ValueError("resume=True requires a checkpoint manager or directory")

    skip = 0
    the_filter: Optional[StreamFilter] = None
    if resume and manager is not None:
        previous = manager.load(name)
        if previous is not None:
            if previous.complete:
                stored = store.describe(name).recordings if name in store else 0
                if stored < previous.recordings_stored:
                    raise ValueError(
                        f"checkpoint marks {name!r} complete with "
                        f"{previous.recordings_stored} recordings but the store "
                        f"holds {stored} — wrong --store, or the store was "
                        "deleted after the run finished"
                    )
                # Fully ingested already; nothing to redo.
                return IngestReport(
                    filter_name=previous.filter_state.filter_name
                    if previous.filter_state is not None
                    else str(stream_filter),
                    points=0,
                    recordings=0,
                    chunks=0,
                    compression_ratio=0.0,
                    elapsed_seconds=0.0,
                )
            if times is not None and previous.chunk_size != chunk_size:
                raise ValueError(
                    f"checkpoint for {name!r} was written with chunk_size "
                    f"{previous.chunk_size}, cannot resume with {chunk_size}"
                )
            _check_resume_config(name, previous, stream_filter, epsilon)
            if name in store:
                store.truncate_stream(name, previous.recordings_stored)
            elif previous.recordings_stored > 0:
                raise ValueError(
                    f"checkpoint for {name!r} expects {previous.recordings_stored} "
                    "stored recordings but the store does not know the stream"
                )
            the_filter = restore_filter(previous.filter_state)
            skip = previous.points_ingested
        elif name in store and store.describe(name).recordings > 0:
            # Resume requested but nothing was ever checkpointed for this
            # stream: the existing data cannot be attributed to a
            # checkpointed run (those write an initial checkpoint before
            # their first chunk), so it may be a legitimate earlier ingest —
            # refuse rather than silently truncating or appending onto it.
            raise ValueError(
                f"no checkpoint found for stream {name!r} but the store already "
                "holds data for it; delete the stream (or point --checkpoint at "
                "the directory the original run used) before resuming"
            )
    if the_filter is None:
        if isinstance(stream_filter, StreamFilter):
            the_filter = stream_filter
        else:
            if epsilon is None:
                raise ValueError("epsilon is required when the filter is given by name")
            the_filter = create_filter(stream_filter, epsilon, **filter_kwargs)

    epsilon_list = (
        [float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None
    )
    if times is not None:
        chunk_iter: Iterable = iter_chunks(
            np.asarray(times, dtype=float)[skip:],
            np.asarray(values, dtype=float)[skip:],
            chunk_size,
        )
    else:
        chunk_iter = _skip_points(chunks, skip)

    started = _time.perf_counter()
    points = skip
    run_points = 0
    run_recordings = 0
    run_chunks = 0
    since_checkpoint = 0

    def save_checkpoint(complete: bool) -> None:
        if manager is None:
            return
        # The checkpoint records a durable fact about the store, so the log
        # and catalog must be fsynced before it: a power loss must never
        # leave a checkpoint claiming recordings the page cache still owned.
        if name in store:
            store.sync(name)
        else:
            store.flush()
        stored = store.describe(name).recordings if name in store else 0
        manager.save(
            IngestCheckpoint(
                stream=name,
                filter_state=the_filter.snapshot(),
                points_ingested=points,
                recordings_stored=stored,
                chunk_size=chunk_size,
                complete=complete,
            )
        )

    if manager is not None and skip == 0:
        # Initial checkpoint before the first chunk: from here on a kill at
        # *any* point leaves a checkpoint to resume from (it records the
        # stream's pre-run length, so resume rolls back exactly the appends
        # this run made).
        save_checkpoint(complete=False)

    for chunk_times, chunk_values in chunk_iter:
        recordings = the_filter.process_batch(chunk_times, chunk_values)
        if recordings:
            store.append(name, recordings, epsilon=epsilon_list)
        count = np.asarray(chunk_times).shape[0]
        points += count
        run_points += count
        run_recordings += len(recordings)
        run_chunks += 1
        since_checkpoint += 1
        if since_checkpoint >= checkpoint_every:
            save_checkpoint(complete=False)
            since_checkpoint = 0

    final = the_filter.finish()
    if final:
        store.append(name, final, epsilon=epsilon_list)
    run_recordings += len(final)
    store.flush()
    save_checkpoint(complete=True)
    elapsed = _time.perf_counter() - started

    if run_recordings:
        ratio = run_points / run_recordings
    else:
        ratio = float("inf") if run_points else 0.0
    return IngestReport(
        filter_name=the_filter.name,
        points=run_points,
        recordings=run_recordings,
        chunks=run_chunks,
        compression_ratio=ratio,
        elapsed_seconds=elapsed,
    )


def run_ingest(
    store_directory: Union[str, Path],
    name: str,
    filter_name: str,
    epsilon,
    times,
    values,
    *,
    shards: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    **filter_kwargs,
) -> IngestReport:
    """Open (or create) the store at ``store_directory`` and ingest one stream.

    Convenience wrapper around :func:`ingest_stream_checkpointed` used by the
    ``repro ingest`` CLI; the store is opened with deferred catalog
    persistence and closed (flushed) on the way out.
    """
    # Validate everything ingest_stream_checkpointed (or chunking) would
    # reject *before* open_store, which creates the store directory as a
    # side effect.
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint manager or directory")
    store = open_store(store_directory, shards=shards, autoflush=False)
    try:
        return ingest_stream_checkpointed(
            store,
            name,
            filter_name,
            epsilon,
            times,
            values,
            chunk_size=chunk_size,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            **filter_kwargs,
        )
    finally:
        store.close()
