"""Atomic ingestion checkpoints.

A checkpoint freezes one stream's ingestion mid-flight: the filter's
complete resumable state (:class:`~repro.core.state.FilterState`), how many
source points have been consumed, and how many recordings the store held at
the moment of the snapshot.  Together with
:meth:`~repro.storage.segment_store.SegmentStore.truncate_stream` this gives
exactly-once resume semantics — a killed ingest restarts from the last
checkpoint, rolls the store back to the checkpointed length, skips the
already-consumed points, and produces a store bit-identical to an
uninterrupted run.

Checkpoint files are written atomically (temp file + ``fsync`` +
``os.replace`` + parent-directory ``fsync`` in the same directory), so a
crash mid-save leaves the previous checkpoint intact rather than a
truncated pickle — and the replace itself survives a power cut.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.state import FilterState
from repro.storage.segment_store import collision_safe_filename
from repro.testing import faults

__all__ = ["CHECKPOINT_VERSION", "IngestCheckpoint", "CheckpointManager"]

#: Version of the on-disk checkpoint payload; bumped on incompatible change.
CHECKPOINT_VERSION = 1


@dataclass
class IngestCheckpoint:
    """Resumable position of one stream's ingestion.

    Attributes:
        stream: Name of the stream in the store.
        filter_state: Snapshot of the compressing filter.
        points_ingested: Source points consumed before the snapshot.
        recordings_stored: Recordings the store held (flushed) at snapshot
            time — the length the stream is rolled back to on resume.
        chunk_size: Chunk size of the run (resume must match it so chunk
            boundaries — and hence the batch path's recordings — line up).
        complete: ``True`` once the stream was fully ingested and finished.
        version: On-disk payload version.
    """

    stream: str
    filter_state: Optional[FilterState]
    points_ingested: int
    recordings_stored: int
    chunk_size: int
    complete: bool = False
    version: int = CHECKPOINT_VERSION


class CheckpointManager:
    """Directory of per-stream ingestion checkpoints.

    Args:
        directory: Where the ``*.ckpt`` files live; created if missing.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._directory

    def path_for(self, stream: str) -> Path:
        """Checkpoint file path of one stream (collision-safe, like logs)."""
        return self._directory / collision_safe_filename(stream, ".ckpt")

    def save(self, checkpoint: IngestCheckpoint) -> Path:
        """Atomically persist a checkpoint, replacing any previous one."""
        path = self.path_for(checkpoint.stream)
        staging = path.with_name(path.name + ".tmp")
        payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        with open(staging, "wb") as handle:
            faults.write(handle, payload, path=staging)
            faults.fsync(handle, path=staging)
        faults.crash_point("checkpoint.save.before_replace")
        faults.replace(staging, path)
        faults.fsync_dir(self._directory)
        return path

    def load(self, stream: str) -> Optional[IngestCheckpoint]:
        """Load a stream's checkpoint, or ``None`` when it has none.

        Raises:
            ValueError: If the checkpoint was written by an incompatible
                version of this library.
        """
        path = self.path_for(stream)
        if not path.exists():
            return None
        return self._read(path)

    @staticmethod
    def _read(path: Path) -> IngestCheckpoint:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, IngestCheckpoint):
            raise ValueError(f"{path} does not hold an ingestion checkpoint")
        if checkpoint.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {path} has version {checkpoint.version}, "
                f"this build expects {CHECKPOINT_VERSION}"
            )
        return checkpoint

    def exists(self, stream: str) -> bool:
        """Whether a checkpoint exists for ``stream``."""
        return self.path_for(stream).exists()

    def delete(self, stream: str) -> None:
        """Remove a stream's checkpoint (no-op when absent)."""
        self.path_for(stream).unlink(missing_ok=True)

    def list(self) -> List[IngestCheckpoint]:
        """Load every checkpoint in the directory, sorted by stream name.

        Raises:
            ValueError: Like :meth:`load` — an entry :meth:`list` returns
                would otherwise fail the moment someone tries to resume it.
        """
        checkpoints = [self._read(path) for path in sorted(self._directory.glob("*.ckpt"))]
        return sorted(checkpoints, key=lambda c: c.stream)
