"""Multi-process, async, checkpointable ingestion runtime.

Built on the filter core's explicit state
(:class:`~repro.core.state.FilterState` + ``snapshot()``/``restore()``),
this subpackage turns single-process stream compression into an elastic,
fault-tolerant runtime:

* :class:`~repro.runtime.parallel.ParallelIngestor` — shard-aligned worker
  processes, each exclusively owning its shards' segment stores; recordings
  are bit-identical to a single-process run.
* :mod:`~repro.runtime.async_source` — async source adapters feeding
  coroutine producers into ``BatchIngestor.aingest_stream``.
* :mod:`~repro.runtime.checkpoint` + :func:`~repro.runtime.ingest.
  ingest_stream_checkpointed` — periodic atomic checkpoints of filter state
  and store offsets, so a killed ingest resumes from the last checkpoint
  without reprocessing or duplicating recordings.
"""

from repro.runtime.async_source import ArrayAsyncSource, AsyncSource, QueueAsyncSource
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    IngestCheckpoint,
)
from repro.runtime.ingest import (
    DEFAULT_CHECKPOINT_EVERY,
    ingest_stream_checkpointed,
    run_ingest,
)
from repro.runtime.parallel import (
    ParallelIngestReport,
    ParallelIngestor,
    StreamReport,
    StreamTask,
)

__all__ = [
    "AsyncSource",
    "ArrayAsyncSource",
    "QueueAsyncSource",
    "CheckpointManager",
    "IngestCheckpoint",
    "CHECKPOINT_VERSION",
    "DEFAULT_CHECKPOINT_EVERY",
    "ingest_stream_checkpointed",
    "run_ingest",
    "ParallelIngestor",
    "ParallelIngestReport",
    "StreamReport",
    "StreamTask",
]
