"""Shard-aligned multi-process ingestion.

:class:`ParallelIngestor` scales the write path across CPU cores: a
multi-stream workload is partitioned by the *store's own* shard function
(:func:`~repro.storage.sharded_store.shard_index`), every worker process
exclusively owns the :class:`~repro.storage.segment_store.SegmentStore` of
the shards it was assigned, and the parent merges the per-shard results when
the workers join.  Because shard ownership is exclusive there is no
cross-process locking anywhere — each shard's log files and catalog are
written by exactly one process, and reopening the
:class:`~repro.storage.sharded_store.ShardedStore` afterwards presents the
merged catalog exactly as if one process had written everything.

Per-stream filters are independent, so the recordings each worker produces
are bit-identical to a single-process run; parallelism changes wall-clock
time, never bytes.

Workers run through
:func:`~repro.runtime.ingest.ingest_stream_checkpointed`, so checkpointing
and resume compose with parallelism: pass ``checkpoint`` and each worker
checkpoints its streams into the shared directory.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.ingest import DEFAULT_CHECKPOINT_EVERY, ingest_stream_checkpointed
from repro.storage import open_store
from repro.storage.segment_store import SegmentStore
from repro.storage.sharded_store import shard_index

__all__ = ["StreamTask", "StreamReport", "ParallelIngestReport", "ParallelIngestor"]

Loader = Callable[[], Tuple[np.ndarray, np.ndarray]]


@dataclass
class StreamTask:
    """One stream of a parallel ingestion workload.

    The workload is either inline arrays (``times`` + ``values``, pickled to
    the worker) or a ``loader`` — a picklable zero-argument callable
    (module-level function, ``functools.partial``, …) the worker invokes to
    produce the arrays in-process, which avoids shipping large arrays
    through the process boundary.

    Attributes:
        name: Stream name in the store (also decides the owning shard).
        times / values: Inline workload arrays.
        loader: Deferred workload producer (mutually exclusive with arrays).
        epsilon: Optional per-stream precision override.
    """

    name: str
    times: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None
    loader: Optional[Loader] = None
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        has_arrays = self.times is not None and self.values is not None
        if has_arrays == (self.loader is not None):
            raise ValueError(
                f"stream task {self.name!r} needs either times+values or a loader"
            )

    def materialize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the workload arrays, invoking the loader when deferred."""
        if self.loader is not None:
            return self.loader()
        return self.times, self.values


@dataclass(frozen=True)
class StreamReport:
    """Per-stream outcome of a parallel ingestion run."""

    name: str
    shard: int
    points: int
    recordings: int
    elapsed_seconds: float


@dataclass(frozen=True)
class ParallelIngestReport:
    """Summary of one :meth:`ParallelIngestor.run` call.

    ``elapsed_seconds`` is the parent's wall-clock time for the whole fan-out
    (including process startup and joining), which is what a throughput
    comparison against a single process should use.
    """

    workers: int
    shards: int
    streams: int
    points: int
    recordings: int
    elapsed_seconds: float
    per_stream: Tuple[StreamReport, ...] = field(default_factory=tuple)

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.points / self.elapsed_seconds


def ingest_shard_job(
    shard_directory: str,
    shard: int,
    tasks: Sequence[StreamTask],
    config: Dict[str, object],
) -> List[StreamReport]:
    """Ingest every task of one shard (module-level: the pickled unit of work).

    The worker process opens the shard's :class:`SegmentStore` directly — it
    is the shard's exclusive owner for the duration of the job — ingests its
    streams through the checkpointed path, and flushes the shard catalog
    once on close.
    """
    manager = (
        CheckpointManager(config["checkpoint"]) if config["checkpoint"] is not None else None
    )
    reports: List[StreamReport] = []
    with SegmentStore(
        shard_directory,
        autoflush=False,
        backend=config.get("backend"),
        block_records=config.get("block_records"),
    ) as store:
        for task in tasks:
            times, values = task.materialize()
            epsilon = task.epsilon if task.epsilon is not None else config["epsilon"]
            report = ingest_stream_checkpointed(
                store,
                task.name,
                str(config["filter_name"]),
                epsilon,
                times,
                values,
                chunk_size=int(config["chunk_size"]),
                checkpoint=manager,
                checkpoint_every=int(config["checkpoint_every"]),
                resume=bool(config["resume"]),
                **config["filter_kwargs"],
            )
            reports.append(
                StreamReport(
                    name=task.name,
                    shard=shard,
                    points=report.points,
                    recordings=report.recordings,
                    elapsed_seconds=report.elapsed_seconds,
                )
            )
    return reports


class ParallelIngestor:
    """Partition a multi-stream workload across shard-owning worker processes.

    Args:
        store_directory: Root of the sharded store (created when missing).
        filter_name: Registered filter compressing every stream.
        epsilon: Default precision width (tasks may override per stream).
        workers: Worker processes; ``1`` runs everything inline in this
            process (the comparison baseline — same code path, no pool).
        shards: Shard count of the store; defaults to ``workers`` for a new
            store and must match an existing store's count.
        chunk_size: Points per ingestion chunk.
        checkpoint: Optional checkpoint directory shared by all workers.
        checkpoint_every: Chunks between checkpoints.
        resume: Resume every stream from its checkpoint when one exists.
        backend: Storage backend name forwarded to the store root and every
            worker's shard store (default: the block-log backend).
        **filter_kwargs: Extra filter options (e.g. ``max_lag``).
    """

    def __init__(
        self,
        store_directory: Union[str, Path],
        filter_name: str,
        epsilon,
        *,
        workers: int = 1,
        shards: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        checkpoint: Optional[Union[str, Path]] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        resume: bool = False,
        backend: Optional[str] = None,
        block_records: Optional[int] = None,
        **filter_kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be positive, got {checkpoint_every}")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint directory")
        self.store_directory = Path(store_directory)
        self.filter_name = filter_name
        self.epsilon = epsilon
        self.workers = workers
        self.shards = shards
        self.chunk_size = chunk_size
        self.checkpoint = None if checkpoint is None else str(checkpoint)
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.backend = backend
        self.block_records = block_records
        self.filter_kwargs = filter_kwargs

    def run(self, tasks: Sequence[StreamTask]) -> ParallelIngestReport:
        """Ingest every task, one worker process per group of shards.

        The parent creates the sharded store root (pinning ``shards.json``),
        groups the tasks by their streams' shard, and hands each involved
        shard to a worker as one job.  Joining merges the per-shard reports;
        the shard catalogs themselves were already flushed by their owning
        workers, so reopening the store afterwards sees every stream.
        """
        started = _time.perf_counter()
        shard_count = self.shards if self.shards is not None else max(self.workers, 1)
        # Create (or validate) the root — shards.json + shard directories —
        # through open_store so an existing *plain* store is rejected instead
        # of silently converted (which would orphan its streams), and take
        # the shard paths from the store itself so the layout has a single
        # source of truth.
        root = open_store(
            self.store_directory,
            shards=shard_count,
            autoflush=False,
            backend=self.backend,
            block_records=self.block_records,
        )
        shard_directories = [str(shard.directory) for shard in root.shards]
        root.close()

        by_shard: Dict[int, List[StreamTask]] = {}
        for task in tasks:
            by_shard.setdefault(shard_index(task.name, shard_count), []).append(task)
        seen: Dict[str, int] = {}
        for shard, group in by_shard.items():
            for task in group:
                if task.name in seen:
                    raise ValueError(f"duplicate stream task {task.name!r}")
                seen[task.name] = shard

        config = {
            "filter_name": self.filter_name,
            "epsilon": self.epsilon,
            "chunk_size": self.chunk_size,
            "checkpoint": self.checkpoint,
            "checkpoint_every": self.checkpoint_every,
            "resume": self.resume,
            "backend": self.backend,
            "block_records": self.block_records,
            "filter_kwargs": self.filter_kwargs,
        }
        jobs = [
            (shard_directories[shard], shard, group)
            for shard, group in sorted(by_shard.items())
        ]
        if self.workers == 1 or len(jobs) <= 1:
            # One shard (or one worker) means nothing can overlap: run
            # inline, and report the single effective worker honestly.
            used_workers = 1
            batches = [
                ingest_shard_job(directory, shard, group, config)
                for directory, shard, group in jobs
            ]
        else:
            used_workers = min(self.workers, len(jobs))
            with ProcessPoolExecutor(max_workers=used_workers) as pool:
                futures = [
                    pool.submit(ingest_shard_job, directory, shard, group, config)
                    for directory, shard, group in jobs
                ]
                batches = [future.result() for future in futures]
        per_stream = tuple(report for batch in batches for report in batch)
        elapsed = _time.perf_counter() - started
        return ParallelIngestReport(
            workers=used_workers,
            shards=shard_count,
            streams=len(per_stream),
            points=sum(report.points for report in per_stream),
            recordings=sum(report.recordings for report in per_stream),
            elapsed_seconds=elapsed,
            per_stream=per_stream,
        )
