"""Async source adapters bridging coroutine producers into the batch path.

Live deployments rarely hand the ingestor a finished array: samples arrive
from sockets, message queues or sensor callbacks inside an event loop.  An
:class:`AsyncSource` is an async iterable of ``(times, values)`` chunk pairs
— exactly what :meth:`BatchIngestor.aingest_stream
<repro.pipeline.ingest.BatchIngestor.aingest_stream>` consumes — so a
coroutine-producing source feeds the existing chunked, vectorized filter
path without any thread hand-off.

Two adapters cover the common cases:

* :class:`ArrayAsyncSource` — replays in-memory arrays as an async chunk
  stream, optionally pacing chunks with a sleep (a live-stream stand-in for
  tests and benchmarks).
* :class:`QueueAsyncSource` — the push side: producers ``await put(...)``
  chunk pairs from anywhere in the event loop, the ingestor drains them,
  and :meth:`QueueAsyncSource.close` ends the stream.
"""

from __future__ import annotations

import abc
import asyncio
from typing import AsyncIterator, Tuple

import numpy as np

from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks, normalize_chunk

__all__ = ["AsyncSource", "ArrayAsyncSource", "QueueAsyncSource"]

Chunk = Tuple[np.ndarray, np.ndarray]


class AsyncSource(abc.ABC):
    """Async iterable of ``(times, values)`` chunk pairs, in time order."""

    @abc.abstractmethod
    def __aiter__(self) -> AsyncIterator[Chunk]:
        """Return the async iterator over the source's chunks."""


class ArrayAsyncSource(AsyncSource):
    """Replay array data as an async chunk stream.

    Args:
        times: ``(n,)`` timestamps, strictly increasing.
        values: ``(n,)`` or ``(n, d)`` values.
        chunk_size: Points per yielded chunk.
        interval: Optional pause (seconds) before each chunk, emulating a
            live source's pacing.
    """

    def __init__(
        self,
        times,
        values,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        interval: float = 0.0,
    ) -> None:
        self._times, self._values = normalize_chunk(times, values)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if interval < 0.0:
            raise ValueError(f"interval must be non-negative, got {interval}")
        self._chunk_size = chunk_size
        self._interval = interval

    def __aiter__(self) -> AsyncIterator[Chunk]:
        return self._generate()

    async def _generate(self) -> AsyncIterator[Chunk]:
        for chunk in iter_chunks(self._times, self._values, self._chunk_size):
            if self._interval > 0.0:
                await asyncio.sleep(self._interval)
            yield chunk


class QueueAsyncSource(AsyncSource):
    """Queue-backed push source for coroutine producers.

    Producers ``await put(times, values)``; the consumer (typically
    ``BatchIngestor.aingest_stream``) iterates the source and blocks on the
    queue.  ``await close()`` ends the stream — iteration finishes once the
    queue drains past the close marker.

    Args:
        maxsize: Bound on buffered chunks (``0`` = unbounded); a full queue
            applies backpressure to producers.
    """

    _CLOSE = object()

    def __init__(self, maxsize: int = 0) -> None:
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=maxsize)
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (chunks may still be queued)."""
        return self._closed

    def qsize(self) -> int:
        """Number of queued items not yet taken by the consumer."""
        return self._queue.qsize()

    def full(self) -> bool:
        """Whether a :meth:`put_nowait` would raise ``asyncio.QueueFull``."""
        return self._queue.full()

    async def join(self) -> None:
        """Wait until every queued chunk has been *processed* by the consumer.

        The drain loop acknowledges each chunk only after the consumer's body
        finishes with it, so when ``join`` returns every chunk put so far has
        fully passed through the ingest path — the barrier a server needs to
        answer "are my points recorded?" without closing the stream.
        """
        await self._queue.join()

    def drain_nowait(self) -> int:
        """Discard everything still queued, unblocking :meth:`join`.

        The consumer-failure path: when the consuming coroutine dies
        mid-stream, nobody will ever take the queued chunks, so a producer
        awaiting :meth:`join` — or a ``maxsize``-blocked :meth:`put` — would
        hang forever.  Returns the number of *chunks* discarded (a queued
        close marker is consumed but not counted).
        """
        discarded = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return discarded
            self._queue.task_done()
            if item is not self._CLOSE:
                discarded += 1

    async def put(self, times, values) -> None:
        """Enqueue one chunk (validated and coerced like every batch chunk).

        Raises:
            RuntimeError: If the source has been closed.
        """
        if self._closed:
            raise RuntimeError("source is closed")
        await self._queue.put(normalize_chunk(times, values))

    def put_nowait(self, times, values) -> None:
        """Non-blocking :meth:`put` (raises ``asyncio.QueueFull`` when full)."""
        if self._closed:
            raise RuntimeError("source is closed")
        self._queue.put_nowait(normalize_chunk(times, values))

    async def close(self) -> None:
        """Mark the end of the stream; buffered chunks are still delivered.

        A coroutine because the close marker respects the queue bound like
        any chunk: on a full queue it waits for the consumer instead of
        failing (or dropping the marker and hanging the consumer forever).
        """
        if not self._closed:
            self._closed = True
            await self._queue.put(self._CLOSE)

    def close_nowait(self) -> None:
        """Non-blocking :meth:`close` for non-coroutine producers.

        Raises:
            asyncio.QueueFull: If the queue has no room for the marker —
                retry after the consumer drains, or use ``await close()``.
        """
        if not self._closed:
            self._queue.put_nowait(self._CLOSE)
            self._closed = True

    def __aiter__(self) -> AsyncIterator[Chunk]:
        return self._drain()

    async def _drain(self) -> AsyncIterator[Chunk]:
        while True:
            item = await self._queue.get()
            if item is self._CLOSE:
                self._queue.task_done()
                return
            try:
                # task_done fires after the consumer's loop body returns to
                # the generator (or abandons it), so join() is a true
                # processed-barrier, not merely a dequeued-barrier.
                yield item
            finally:
                self._queue.task_done()
