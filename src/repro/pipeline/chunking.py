"""Chunking helpers for the batch ingestion pipeline.

Streams arrive either as one pair of large arrays (offline replay of a
recorded signal) or as a sequence of already-chunked array pairs (live
ingestion).  :func:`iter_chunks` normalizes the first form into the second;
:func:`normalize_chunk` validates and coerces one chunk into the
``(times, values)`` float arrays the filters' batch fast path expects.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["DEFAULT_CHUNK_SIZE", "iter_chunks", "normalize_chunk"]

#: Default number of points per chunk.  Large enough to amortize the
#: per-chunk NumPy dispatch overhead, small enough to keep the temporary
#: candidate-slope arrays comfortably inside the CPU cache.
DEFAULT_CHUNK_SIZE = 4096


def normalize_chunk(times, values) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce one chunk into ``(times (n,), values (n, d))`` float64 arrays.

    Raises:
        ValueError: If the shapes are inconsistent.
    """
    times = np.asarray(times, dtype=float)
    if times.ndim != 1:
        raise ValueError(f"chunk times must be a 1-D array, got shape {times.shape}")
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    elif values.ndim != 2:
        raise ValueError(f"chunk values must have shape (n,) or (n, d), got {values.shape}")
    if values.shape[0] != times.shape[0]:
        raise ValueError(
            f"chunk times and values disagree on length: {times.shape[0]} vs {values.shape[0]}"
        )
    return times, values


def iter_chunks(times, values, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[
    Tuple[np.ndarray, np.ndarray]
]:
    """Yield ``(times, values)`` chunk views of at most ``chunk_size`` points.

    The yielded arrays are views into the input (no copies are made).

    Raises:
        ValueError: If ``chunk_size`` is not positive or shapes disagree.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    times, values = normalize_chunk(times, values)
    for start in range(0, times.shape[0], chunk_size):
        stop = start + chunk_size
        yield times[start:stop], values[start:stop]
