"""Vectorized batch ingestion pipeline.

This subpackage is the high-throughput write path of the reproduction: it
moves streams into filters chunk-by-chunk through the
:meth:`~repro.core.base.StreamFilter.process_batch` fast path and routes the
emitted recordings into pluggable sinks (in-memory, callback, or a durable
:class:`~repro.storage.segment_store.SegmentStore`).

Typical use::

    from repro.pipeline import BatchIngestor, StoreSink

    sink = StoreSink("./archive", name="sst", epsilon=[0.25])
    ingestor = BatchIngestor("slide", epsilon=0.25, chunk_size=4096, sink=sink)
    report = ingestor.run(times, values)
    print(report.points_per_second)
"""

from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks, normalize_chunk
from repro.pipeline.ingest import BatchIngestor, IngestReport
from repro.pipeline.sinks import (
    CallbackSink,
    ListSink,
    NullSink,
    RecordingSink,
    StoreSink,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "iter_chunks",
    "normalize_chunk",
    "BatchIngestor",
    "IngestReport",
    "RecordingSink",
    "ListSink",
    "NullSink",
    "CallbackSink",
    "StoreSink",
]
