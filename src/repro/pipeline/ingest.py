"""Vectorized batch ingestion driving any registered filter.

:class:`BatchIngestor` is the write side of the reproduction's scaling story:
it accepts a stream as chunked NumPy arrays (timestamps plus multi-dimensional
values), drives a :class:`~repro.core.base.StreamFilter` over each chunk
through the :meth:`~repro.core.base.StreamFilter.process_batch` fast path, and
forwards the emitted recordings to a pluggable
:class:`~repro.pipeline.sinks.RecordingSink`.  Filters with a vectorized
``_process_batch`` (swing, slide, linear, cache) process each chunk with
amortized NumPy scans; any other filter transparently falls back to its
per-point hook, so the ingestor works for every registry entry.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.core.base import StreamFilter
from repro.core.registry import create_filter
from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.pipeline.sinks import ListSink, RecordingSink

__all__ = ["IngestReport", "BatchIngestor"]


@dataclass(frozen=True)
class IngestReport:
    """Summary of one finished ingestion run.

    Attributes:
        filter_name: Name of the filter that compressed the stream.
        points: Data points ingested.
        recordings: Recordings emitted (including end-of-stream flushes).
        chunks: Chunks processed.
        compression_ratio: ``points / recordings`` (``inf`` when nothing was
            recorded, ``0`` for an empty stream).
        elapsed_seconds: Wall-clock time spent inside the ingestor.
        points_per_second: Ingestion throughput (``0`` for an empty run).
    """

    filter_name: str
    points: int
    recordings: int
    chunks: int
    compression_ratio: float
    elapsed_seconds: float

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.points / self.elapsed_seconds


class BatchIngestor:
    """Chunked, vectorized ingestion of one stream through one filter.

    Args:
        stream_filter: A filter instance or a registered filter name.
        epsilon: Precision width, required when ``stream_filter`` is a name.
        chunk_size: Points per chunk when splitting monolithic arrays.
        sink: Destination for emitted recordings; defaults to an in-memory
            :class:`ListSink`.
        **filter_kwargs: Extra options forwarded when building by name.

    The ingestor is single-use, mirroring the filter it wraps: after
    :meth:`close` (or :meth:`ingest`'s implicit close via :meth:`run`) no more
    chunks can be pushed.
    """

    def __init__(
        self,
        stream_filter: Union[StreamFilter, str],
        epsilon=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        sink: Optional[RecordingSink] = None,
        **filter_kwargs,
    ) -> None:
        if isinstance(stream_filter, str):
            if epsilon is None:
                raise ValueError("epsilon is required when the filter is given by name")
            stream_filter = create_filter(stream_filter, epsilon, **filter_kwargs)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.filter = stream_filter
        self.sink = sink if sink is not None else ListSink()
        self.chunk_size = chunk_size
        self._points = 0
        self._chunks = 0
        self._recordings = 0
        self._elapsed = 0.0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, times, values) -> None:
        """Ingest one array pair, splitting it into ``chunk_size`` chunks."""
        for chunk_times, chunk_values in iter_chunks(times, values, self.chunk_size):
            self.ingest_chunk(chunk_times, chunk_values)

    def ingest_chunk(self, times, values) -> None:
        """Ingest exactly one chunk (no further splitting).

        Raises:
            RuntimeError: If the ingestor has already been closed.
        """
        if self._closed:
            raise RuntimeError("ingestor has already been closed")
        started = _time.perf_counter()
        before = self.filter.points_processed
        recordings = self.filter.process_batch(times, values)
        self.sink.write(recordings)
        self._elapsed += _time.perf_counter() - started
        self._points += self.filter.points_processed - before
        self._chunks += 1
        self._recordings += len(recordings)

    def ingest_stream(self, chunks: Iterable[Tuple]) -> None:
        """Ingest an iterable of ``(times, values)`` chunk pairs."""
        for chunk_times, chunk_values in chunks:
            self.ingest_chunk(chunk_times, chunk_values)

    async def aingest_stream(self, chunks) -> None:
        """Ingest an *async* iterable of ``(times, values)`` chunk pairs.

        Bridges coroutine-producing sources (see
        :mod:`repro.runtime.async_source`) into the same chunked batch path
        as :meth:`ingest_stream`: each chunk is processed synchronously once
        it arrives — filters are cheap per chunk, so the event loop is only
        held for one vectorized scan at a time — while the source is awaited
        between chunks.
        """
        async for chunk_times, chunk_values in chunks:
            self.ingest_chunk(chunk_times, chunk_values)

    def close(self) -> IngestReport:
        """Finish the stream, flush final recordings, and return the report."""
        if not self._closed:
            started = _time.perf_counter()
            final = self.filter.finish()
            self.sink.write(final)
            self.sink.close()
            self._elapsed += _time.perf_counter() - started
            self._recordings += len(final)
            self._closed = True
        return self.report()

    def run(self, times, values) -> IngestReport:
        """One-call convenience: ingest the arrays, close, return the report."""
        self.ingest(times, values)
        return self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def report(self) -> IngestReport:
        """Return the summary of what *this ingestor* processed.

        A filter instance that saw points before being handed to the
        ingestor keeps them in its own ``points_processed``; they are not
        attributed to this report.
        """
        points = self._points
        if self._recordings:
            ratio = points / self._recordings
        else:
            ratio = float("inf") if points else 0.0
        return IngestReport(
            filter_name=self.filter.name,
            points=points,
            recordings=self._recordings,
            chunks=self._chunks,
            compression_ratio=ratio,
            elapsed_seconds=self._elapsed,
        )
