"""Pluggable recording sinks for the batch ingestion pipeline.

A sink receives the recordings a filter emits — one call per ingested chunk
plus one final call for the end-of-stream recordings — and forwards them to
wherever they should live: an in-memory list, a :class:`SegmentStore` stream,
a user callback, or nowhere (throughput measurements).  Sinks receive
recordings in emission order, which for every filter in this library is also
non-decreasing time order.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.types import Recording
from repro.storage.segment_store import SegmentStore

__all__ = [
    "RecordingSink",
    "ListSink",
    "NullSink",
    "CallbackSink",
    "StoreSink",
]


class RecordingSink(abc.ABC):
    """Destination for the recordings produced by a :class:`BatchIngestor`."""

    @abc.abstractmethod
    def write(self, recordings: Sequence[Recording]) -> None:
        """Accept one batch of recordings (possibly empty)."""

    def close(self) -> None:
        """Flush and release any resources (default: no-op)."""


class ListSink(RecordingSink):
    """Collect every recording in an in-memory list."""

    def __init__(self) -> None:
        self.recordings: List[Recording] = []

    def write(self, recordings: Sequence[Recording]) -> None:
        self.recordings.extend(recordings)


class NullSink(RecordingSink):
    """Discard recordings, keeping only a count (for throughput benchmarks)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, recordings: Sequence[Recording]) -> None:
        self.count += len(recordings)


class CallbackSink(RecordingSink):
    """Invoke ``callback(recordings)`` for every non-empty batch."""

    def __init__(self, callback: Callable[[Sequence[Recording]], None]) -> None:
        self._callback = callback

    def write(self, recordings: Sequence[Recording]) -> None:
        if recordings:
            self._callback(recordings)


class StoreSink(RecordingSink):
    """Append recordings to one stream of a :class:`SegmentStore`.

    Args:
        store: The backing store (or a directory path to open one at).
        name: Stream name to append to.
        epsilon: Optional precision width recorded in the stream's catalog
            entry.
    """

    def __init__(
        self,
        store,
        name: str,
        epsilon: Optional[Sequence[float]] = None,
    ) -> None:
        if not isinstance(store, SegmentStore):
            store = SegmentStore(store)
        self.store = store
        self.name = name
        self._epsilon = (
            [float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None
        )

    def write(self, recordings: Sequence[Recording]) -> None:
        if recordings:
            self.store.append(self.name, recordings, epsilon=self._epsilon)
