"""Pluggable recording sinks for the batch ingestion pipeline.

A sink receives the recordings a filter emits — one call per ingested chunk
plus one final call for the end-of-stream recordings — and forwards them to
wherever they should live: an in-memory list, a :class:`SegmentStore` stream,
a user callback, or nowhere (throughput measurements).  Sinks receive
recordings in emission order, which for every filter in this library is also
non-decreasing time order.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.types import Recording
from repro.storage import SegmentStore, ShardedStore, open_store

__all__ = [
    "RecordingSink",
    "ListSink",
    "NullSink",
    "CallbackSink",
    "StoreSink",
]


class RecordingSink(abc.ABC):
    """Destination for the recordings produced by a :class:`BatchIngestor`."""

    @abc.abstractmethod
    def write(self, recordings: Sequence[Recording]) -> None:
        """Accept one batch of recordings (possibly empty)."""

    def close(self) -> None:
        """Flush and release any resources (default: no-op)."""


class ListSink(RecordingSink):
    """Collect every recording in an in-memory list."""

    def __init__(self) -> None:
        self.recordings: List[Recording] = []

    def write(self, recordings: Sequence[Recording]) -> None:
        self.recordings.extend(recordings)


class NullSink(RecordingSink):
    """Discard recordings, keeping only a count (for throughput benchmarks)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, recordings: Sequence[Recording]) -> None:
        self.count += len(recordings)


class CallbackSink(RecordingSink):
    """Invoke ``callback(recordings)`` for every non-empty batch."""

    def __init__(self, callback: Callable[[Sequence[Recording]], None]) -> None:
        self._callback = callback

    def write(self, recordings: Sequence[Recording]) -> None:
        if recordings:
            self._callback(recordings)


class StoreSink(RecordingSink):
    """Append recordings to one stream of a segment store (plain or sharded).

    Args:
        store: The backing store, or a directory path to open one at.  A
            path is opened with deferred catalog persistence (the catalog is
            written once on :meth:`close` instead of per append); pass a
            store instance to control persistence yourself.
        name: Stream name to append to.
        epsilon: Optional precision width recorded in the stream's catalog
            entry.
        shards: When ``store`` is a path of a new store, create it sharded
            with this many shards (must match for an existing sharded store).

    Raises:
        ValueError: If ``shards`` is combined with a store instance.
    """

    def __init__(
        self,
        store,
        name: str,
        epsilon: Optional[Sequence[float]] = None,
        shards: Optional[int] = None,
    ) -> None:
        if not isinstance(store, (SegmentStore, ShardedStore)):
            store = open_store(store, shards=shards, autoflush=False)
        elif shards is not None:
            raise ValueError("shards applies only when the store is given as a path")
        self.store = store
        self.name = name
        self._epsilon = (
            [float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None
        )

    def write(self, recordings: Sequence[Recording]) -> None:
        if recordings:
            self.store.append(self.name, recordings, epsilon=self._epsilon)

    def close(self) -> None:
        self.store.flush()
