"""Pluggable recording sinks for the batch ingestion pipeline.

A sink receives the recordings a filter emits — one call per ingested chunk
plus one final call for the end-of-stream recordings — and forwards them to
wherever they should live: an in-memory list, a :class:`SegmentStore` stream,
a user callback, or nowhere (throughput measurements).  Sinks receive
recordings in emission order, which for every filter in this library is also
non-decreasing time order.
"""

from __future__ import annotations

import abc
import errno
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.errors import DegradedSinkError
from repro.core.types import Recording
from repro.storage import SegmentStore, ShardedStore, open_store

__all__ = [
    "RecordingSink",
    "ListSink",
    "NullSink",
    "CallbackSink",
    "StoreSink",
    "flush_buffered",
]


class RecordingSink(abc.ABC):
    """Destination for the recordings produced by a :class:`BatchIngestor`."""

    @abc.abstractmethod
    def write(self, recordings: Sequence[Recording]) -> None:
        """Accept one batch of recordings (possibly empty)."""

    def flush(self) -> None:
        """Persist anything buffered (default: no-op).  Idempotent."""

    def close(self) -> None:
        """Flush and release any resources (default: no-op).  Idempotent."""


class ListSink(RecordingSink):
    """Collect every recording in an in-memory list."""

    def __init__(self) -> None:
        self.recordings: List[Recording] = []

    def write(self, recordings: Sequence[Recording]) -> None:
        self.recordings.extend(recordings)


class NullSink(RecordingSink):
    """Discard recordings, keeping only a count (for throughput benchmarks)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, recordings: Sequence[Recording]) -> None:
        self.count += len(recordings)


class CallbackSink(RecordingSink):
    """Invoke ``callback(recordings)`` for every non-empty batch."""

    def __init__(self, callback: Callable[[Sequence[Recording]], None]) -> None:
        self._callback = callback

    def write(self, recordings: Sequence[Recording]) -> None:
        if recordings:
            self._callback(recordings)


class StoreSink(RecordingSink):
    """Append recordings to one stream of a segment store (plain or sharded).

    Args:
        store: The backing store, or a directory path to open one at.  A
            path is opened with deferred catalog persistence (the catalog is
            written once on :meth:`close` instead of per append); pass a
            store instance to control persistence yourself.
        name: Stream name to append to.
        epsilon: Optional precision width recorded in the stream's catalog
            entry.
        shards: When ``store`` is a path of a new store, create it sharded
            with this many shards (must match for an existing sharded store).
        archive_batch: Buffer this many recordings before appending to the
            store (the default ``1`` appends on every :meth:`write`, the
            historical behaviour).  Buffered recordings are visible through
            :attr:`pending` and persisted by :meth:`flush`/:meth:`close`.

    Raises:
        ValueError: If ``shards`` is combined with a store instance, or
            ``archive_batch`` is not positive.
    """

    def __init__(
        self,
        store,
        name: str,
        epsilon: Optional[Sequence[float]] = None,
        shards: Optional[int] = None,
        archive_batch: int = 1,
    ) -> None:
        if not isinstance(store, (SegmentStore, ShardedStore)):
            store = open_store(store, shards=shards, autoflush=False)
        elif shards is not None:
            raise ValueError("shards applies only when the store is given as a path")
        if archive_batch < 1:
            raise ValueError(f"archive_batch must be positive, got {archive_batch}")
        self.store = store
        self.name = name
        self._epsilon = (
            [float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None
        )
        self._archive_batch = archive_batch
        self._buffer: List[Recording] = []

    @property
    def pending(self) -> Sequence[Recording]:
        """Recordings buffered but not yet appended to the store."""
        return tuple(self._buffer)

    def write(self, recordings: Sequence[Recording]) -> None:
        if not recordings:
            return
        self._buffer.extend(recordings)
        if len(self._buffer) >= self._archive_batch:
            flush_buffered(self.store, self.name, self._buffer, self._epsilon)

    def flush_records(self) -> None:
        """Append any buffered recordings, leaving the catalog flush to the
        caller (for sessions flushing many sinks against one store)."""
        flush_buffered(self.store, self.name, self._buffer, self._epsilon)

    def flush(self) -> None:
        """Append any buffered recordings and persist the store catalog."""
        self.flush_records()
        self.store.flush()

    def close(self) -> None:
        self.flush()


#: ``errno`` values a store append may fail with transiently — the condition
#: can clear without the process doing anything (an interrupted syscall) or
#: after operator action moments later (disk briefly full).
_TRANSIENT_ERRNOS = frozenset({errno.ENOSPC, errno.EINTR, errno.EAGAIN})

#: Retry schedule for transient append failures: attempts after the first,
#: and the base delay (doubled per retry) between them.
_FLUSH_RETRIES = 3
_FLUSH_BACKOFF = 0.02


def flush_buffered(store, name: str, buffer: List[Recording], epsilon) -> None:
    """Append ``buffer``'s recordings to ``store`` exactly once, then empty it.

    The buffer is handed off *before* the append so a failure can never
    leave already-persisted recordings queued for a second append: if the
    append raises, the records are put back only when the store's catalog
    entry proves it did not take them (an append can fail *after* the log
    write — e.g. the catalog flush of an autoflushing store hits a full
    disk — and retrying it would double-archive, or wedge the stream on the
    time-order check).  Safe to call repeatedly; an empty buffer is a no-op.

    Transient failures (``ENOSPC``, ``EINTR``, ``EAGAIN``) whose append
    provably did not land are retried a few times with exponential backoff;
    when the condition persists the records go back in the buffer and a
    :class:`~repro.core.errors.DegradedSinkError` carrying them is raised,
    so the caller can keep the pipeline alive and re-flush later without
    losing data.

    Raises:
        DegradedSinkError: When every retry of a transient failure was
            exhausted; ``recordings`` holds the un-archived records (also
            still queued in ``buffer``).
    """
    if not buffer:
        return
    records = list(buffer)
    del buffer[:]
    last_error: Optional[OSError] = None
    for attempt in range(1 + _FLUSH_RETRIES):
        before = store.describe(name).recordings if name in store else 0
        try:
            store.append(name, records, epsilon=epsilon)
            return
        except BaseException as exc:
            after = store.describe(name).recordings if name in store else 0
            landed = after != before
            transient = (
                isinstance(exc, OSError) and exc.errno in _TRANSIENT_ERRNOS
            )
            if landed or not transient:
                if not landed:
                    buffer[:0] = records
                raise
            last_error = exc
        if attempt < _FLUSH_RETRIES:
            time.sleep(_FLUSH_BACKOFF * (2**attempt))
    buffer[:0] = records
    raise DegradedSinkError(
        f"could not archive {len(records)} recordings to stream {name!r} "
        f"after {1 + _FLUSH_RETRIES} attempts: {last_error}",
        recordings=records,
    ) from last_error
