"""Async and sync clients for the StreamDB network service.

Both clients speak the frame protocol of :mod:`repro.server.protocol` and
mirror the :class:`~repro.api.session.StreamDB` query surface — the values
that come back are the same types a local session returns
(:class:`~repro.core.types.Recording`,
:class:`~repro.queries.aggregates.RangeAggregate`,
:class:`~repro.queries.pyramid.ZoomCell`, numpy arrays), so code written
against a local session ports to the network by swapping ``repro.open`` for
:func:`repro.client.connect`.

* :class:`AsyncStreamClient` — one socket, one background reader task;
  requests are correlated by id, server pushes are routed to their tail
  subscriptions.  Safe for many concurrent coroutines.
* :class:`StreamClient` — a blocking wrapper over the same wire format for
  scripts and tests; no event loop required.

Backpressure is cooperative: a ``throttle`` (full ingest queue) or
``rate_limit`` response makes :meth:`ingest` sleep the server-suggested
``retry_after`` and retry, so a fast producer degrades to the server's pace
instead of failing — pass ``retry=False`` to surface the refusal instead.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import ReproError
from repro.core.types import Recording
from repro.queries.aggregates import RangeAggregate
from repro.queries.pyramid import ZoomCell
from repro.server.hub import TailEvent
from repro.server.protocol import (
    CODEC_JSON,
    MAX_FRAME,
    ProtocolError,
    aggregate_from_wire,
    decode_body,
    encode_frame,
    read_frame,
    recordings_from_wire,
    zoom_cell_from_wire,
)

__all__ = ["ServerError", "AsyncStreamClient", "StreamClient", "AsyncTailSubscription", "SyncTailSubscription"]

#: Codes :meth:`ingest` retries on (server-paced backpressure).
_RETRY_CODES = ("throttle", "rate_limit")
_DEFAULT_RETRY_AFTER = 0.05


class ServerError(ReproError):
    """A structured failure response from the server."""

    def __init__(self, code: str, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    @classmethod
    def from_body(cls, error: Dict) -> "ServerError":
        return cls(
            str(error.get("code", "internal")),
            str(error.get("message", "")),
            error.get("retry_after"),
        )


def _chunk_to_wire(times, values) -> Tuple[List[float], List]:
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    return times.tolist(), values.tolist()


def _aggregate_result(result: Dict) -> Union[RangeAggregate, List[RangeAggregate]]:
    if "windows" in result:
        return [aggregate_from_wire(raw) for raw in result["windows"]]
    return aggregate_from_wire(result["aggregate"])


# --------------------------------------------------------------------- #
# Async client
# --------------------------------------------------------------------- #
class AsyncTailSubscription:
    """Async iterator over one stream's tail pushes.

    Yields :class:`~repro.server.hub.TailEvent`; iteration ends when the
    server closes the subscription (:attr:`end_reason` says why —
    ``sealed`` / ``evicted`` / ``unsubscribed`` / ``shutdown``).
    """

    def __init__(self, client: "AsyncStreamClient", ident: int, stream: str) -> None:
        self._client = client
        self.ident = ident
        self.stream = stream
        self.end_reason: Optional[str] = None
        self._events: "asyncio.Queue" = asyncio.Queue()

    def _push(self, body: Dict) -> None:
        if body.get("push") == "tail_end":
            self.end_reason = body.get("reason")
            self._events.put_nowait(None)
            return
        self._events.put_nowait(
            TailEvent(
                stream=body["stream"],
                seq=int(body["seq"]),
                recordings=recordings_from_wire(body["recordings"]),
                sealed=bool(body["sealed"]),
            )
        )

    def __aiter__(self) -> "AsyncTailSubscription":
        return self

    async def __anext__(self) -> TailEvent:
        event = await self._events.get()
        if event is None:
            raise StopAsyncIteration
        return event

    async def unsubscribe(self) -> None:
        """Ask the server to stop this tail (iteration then ends)."""
        if self.end_reason is None:
            await self._client._request("unsubscribe", subscription=self.ident)


class AsyncStreamClient:
    """Asyncio client for a :class:`~repro.server.service.StreamDBServer`."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._codec = CODEC_JSON
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._subscriptions: Dict[int, AsyncTailSubscription] = {}
        self._next_id = 1
        self._closed = False
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())
        self.server_info: Dict = {}

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7450,
        *,
        token: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> "AsyncStreamClient":
        """Open a connection, negotiate the codec, authenticate."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client.server_info = await client._request("hello", codec=codec)
        negotiated = client.server_info.get("codec")
        if negotiated:
            client._codec = negotiated
        if token is not None:
            await client._request("auth", token=token)
        return client

    async def _read_loop(self) -> None:
        try:
            while True:
                body = await read_frame(self._reader)
                if body is None:
                    break
                if "push" in body:
                    subscription = self._subscriptions.get(body.get("subscription"))
                    if subscription is not None:
                        subscription._push(body)
                        if body.get("push") == "tail_end":
                            self._subscriptions.pop(subscription.ident, None)
                    continue
                future = self._pending.pop(body.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(body)
        except (ConnectionError, ProtocolError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._pending.clear()
            for subscription in list(self._subscriptions.values()):
                if subscription.end_reason is None:
                    subscription.end_reason = "disconnected"
                    subscription._events.put_nowait(None)
            self._subscriptions.clear()

    async def _request(self, op: str, **params) -> Dict:
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        body = {"id": request_id, "op": op}
        body.update({key: value for key, value in params.items() if value is not None})
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(encode_frame(body, self._codec))
            await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServerError.from_body(response.get("error", {}))
        return response

    # ------------------------------- ops ------------------------------- #
    async def ping(self) -> None:
        await self._request("ping")

    async def ingest(
        self, stream: str, times, values, *, retry: bool = True
    ) -> int:
        """Send one chunk; sleeps and retries on throttle / rate limit.

        Returns the number of points the server accepted (queued for its
        ingest pipeline; :meth:`sync` barriers on them being processed).
        """
        wire_times, wire_values = _chunk_to_wire(times, values)
        while True:
            try:
                result = await self._request(
                    "ingest", stream=stream, times=wire_times, values=wire_values
                )
                return int(result["accepted"])
            except ServerError as error:
                if not retry or error.code not in _RETRY_CODES:
                    raise
                await asyncio.sleep(error.retry_after or _DEFAULT_RETRY_AFTER)

    async def sync(self, stream: str) -> int:
        """Barrier: every accepted chunk has run through the filter."""
        return int((await self._request("sync", stream=stream))["points"])

    async def seal(self, stream: str) -> int:
        """Finish the stream's live filter; returns its recording count."""
        return int((await self._request("seal", stream=stream))["recordings"])

    async def streams(self) -> List[str]:
        return list((await self._request("streams"))["streams"])

    async def describe(self, stream: str) -> Dict:
        return await self._request("describe", stream=stream)

    async def read(
        self, stream: str, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[Recording]:
        result = await self._request("read", stream=stream, start=start, end=end)
        return recordings_from_wire(result["recordings"])

    async def aggregate(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        window: Optional[float] = None,
        step: Optional[float] = None,
        dimension: int = 0,
    ) -> Union[RangeAggregate, List[RangeAggregate]]:
        result = await self._request(
            "aggregate", stream=stream, start=start, end=end,
            window=window, step=step, dimension=dimension or None,
        )
        return _aggregate_result(result)

    async def resample(
        self,
        stream: str,
        step: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        result = await self._request(
            "resample", stream=stream, step=step, start=start, end=end
        )
        return (
            np.asarray(result["times"], dtype=float),
            np.asarray(result["values"], dtype=float),
        )

    async def zoom(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        max_points: Optional[int] = None,
        dimension: int = 0,
    ) -> List[ZoomCell]:
        result = await self._request(
            "zoom", stream=stream, start=start, end=end,
            max_points=max_points, dimension=dimension or None,
        )
        return [zoom_cell_from_wire(raw) for raw in result["cells"]]

    async def crossings(
        self,
        stream: str,
        threshold: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        dimension: int = 0,
    ) -> List[float]:
        result = await self._request(
            "crossings", stream=stream, threshold=threshold,
            start=start, end=end, dimension=dimension or None,
        )
        return [float(value) for value in result["times"]]

    async def subscribe(self, stream: str) -> AsyncTailSubscription:
        """Start a live tail; iterate the returned subscription."""
        result = await self._request("subscribe", stream=stream)
        ident = int(result["subscription"])
        subscription = AsyncTailSubscription(self, ident, stream)
        self._subscriptions[ident] = subscription
        return subscription

    async def stats(self) -> Dict:
        return await self._request("stats")

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._writer.close()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass

    async def __aenter__(self) -> "AsyncStreamClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


# --------------------------------------------------------------------- #
# Sync client
# --------------------------------------------------------------------- #
_HEADER = struct.Struct(">I")


class SyncTailSubscription:
    """Blocking iterator over one stream's tail pushes."""

    def __init__(self, client: "StreamClient", ident: int, stream: str) -> None:
        self._client = client
        self.ident = ident
        self.stream = stream
        self.end_reason: Optional[str] = None
        self._events: "deque" = deque()

    def _push(self, body: Dict) -> None:
        if body.get("push") == "tail_end":
            self.end_reason = body.get("reason")
            return
        self._events.append(
            TailEvent(
                stream=body["stream"],
                seq=int(body["seq"]),
                recordings=recordings_from_wire(body["recordings"]),
                sealed=bool(body["sealed"]),
            )
        )

    def __iter__(self) -> "SyncTailSubscription":
        return self

    def __next__(self) -> TailEvent:
        while True:
            if self._events:
                return self._events.popleft()
            if self.end_reason is not None:
                raise StopIteration
            self._client._pump_one()

    def unsubscribe(self) -> None:
        if self.end_reason is None:
            self._client._request("unsubscribe", subscription=self.ident)
            # Drain until the server's tail_end arrives (it may interleave
            # with already-queued pushes).
            while self.end_reason is None:
                self._client._pump_one()


class StreamClient:
    """Blocking client over the same wire protocol (no event loop needed)."""

    def __init__(self, sock: "socket.socket") -> None:
        self._socket = sock
        self._codec = CODEC_JSON
        self._next_id = 1
        self._subscriptions: Dict[int, SyncTailSubscription] = {}
        self._responses: Dict[int, Dict] = {}
        self._closed = False
        self.server_info: Dict = {}

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7450,
        *,
        token: Optional[str] = None,
        codec: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> "StreamClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        client = cls(sock)
        client.server_info = client._request("hello", codec=codec)
        negotiated = client.server_info.get("codec")
        if negotiated:
            client._codec = negotiated
        if token is not None:
            client._request("auth", token=token)
        return client

    # --------------------------- wire plumbing ------------------------- #
    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._socket.recv(count)
            if not chunk:
                raise ConnectionError("connection closed")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _pump_one(self) -> None:
        """Read one frame and route it (push → subscription, else response)."""
        (length,) = _HEADER.unpack(self._recv_exact(_HEADER.size))
        if length < 1 or length > MAX_FRAME:
            raise ProtocolError(f"invalid frame length {length}")
        blob = self._recv_exact(length)
        body = decode_body(blob[:1], blob[1:])
        if "push" in body:
            subscription = self._subscriptions.get(body.get("subscription"))
            if subscription is not None:
                subscription._push(body)
                if body.get("push") == "tail_end":
                    self._subscriptions.pop(subscription.ident, None)
            return
        self._responses[body.get("id")] = body

    def _request(self, op: str, **params) -> Dict:
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        body = {"id": request_id, "op": op}
        body.update({key: value for key, value in params.items() if value is not None})
        self._socket.sendall(encode_frame(body, self._codec))
        while request_id not in self._responses:
            self._pump_one()
        response = self._responses.pop(request_id)
        if not response.get("ok"):
            raise ServerError.from_body(response.get("error", {}))
        return response

    # ------------------------------- ops ------------------------------- #
    def ping(self) -> None:
        self._request("ping")

    def ingest(self, stream: str, times, values, *, retry: bool = True) -> int:
        wire_times, wire_values = _chunk_to_wire(times, values)
        while True:
            try:
                result = self._request(
                    "ingest", stream=stream, times=wire_times, values=wire_values
                )
                return int(result["accepted"])
            except ServerError as error:
                if not retry or error.code not in _RETRY_CODES:
                    raise
                time.sleep(error.retry_after or _DEFAULT_RETRY_AFTER)

    def sync(self, stream: str) -> int:
        return int(self._request("sync", stream=stream)["points"])

    def seal(self, stream: str) -> int:
        return int(self._request("seal", stream=stream)["recordings"])

    def streams(self) -> List[str]:
        return list(self._request("streams")["streams"])

    def describe(self, stream: str) -> Dict:
        return self._request("describe", stream=stream)

    def read(
        self, stream: str, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[Recording]:
        result = self._request("read", stream=stream, start=start, end=end)
        return recordings_from_wire(result["recordings"])

    def aggregate(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        window: Optional[float] = None,
        step: Optional[float] = None,
        dimension: int = 0,
    ) -> Union[RangeAggregate, List[RangeAggregate]]:
        result = self._request(
            "aggregate", stream=stream, start=start, end=end,
            window=window, step=step, dimension=dimension or None,
        )
        return _aggregate_result(result)

    def resample(
        self,
        stream: str,
        step: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        result = self._request(
            "resample", stream=stream, step=step, start=start, end=end
        )
        return (
            np.asarray(result["times"], dtype=float),
            np.asarray(result["values"], dtype=float),
        )

    def zoom(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        max_points: Optional[int] = None,
        dimension: int = 0,
    ) -> List[ZoomCell]:
        result = self._request(
            "zoom", stream=stream, start=start, end=end,
            max_points=max_points, dimension=dimension or None,
        )
        return [zoom_cell_from_wire(raw) for raw in result["cells"]]

    def crossings(
        self,
        stream: str,
        threshold: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        dimension: int = 0,
    ) -> List[float]:
        result = self._request(
            "crossings", stream=stream, threshold=threshold,
            start=start, end=end, dimension=dimension or None,
        )
        return [float(value) for value in result["times"]]

    def subscribe(self, stream: str) -> SyncTailSubscription:
        result = self._request("subscribe", stream=stream)
        ident = int(result["subscription"])
        subscription = SyncTailSubscription(self, ident, stream)
        self._subscriptions[ident] = subscription
        return subscription

    def stats(self) -> Dict:
        return self._request("stats")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - platform-specific teardown
                pass

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
