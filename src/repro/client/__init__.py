"""Clients for a served StreamDB (see :mod:`repro.server`).

:func:`connect` opens a blocking :class:`StreamClient`;
:func:`aconnect` awaits an :class:`AsyncStreamClient`.  Both mirror the
:class:`~repro.api.session.StreamDB` query surface and return the same
value types a local session does::

    import repro.client

    with repro.client.connect("db.example.com", 7450, token="s3cret") as db:
        db.ingest("sensor", times, values)
        db.sync("sensor")                      # barrier: points are filtered
        agg = db.aggregate("sensor", 0.0, 100.0)
        for event in db.subscribe("sensor"):   # live tail
            print(event.seq, len(event.recordings), event.sealed)
"""

from repro.client.client import (
    AsyncStreamClient,
    AsyncTailSubscription,
    ServerError,
    StreamClient,
    SyncTailSubscription,
)

__all__ = [
    "connect",
    "aconnect",
    "StreamClient",
    "AsyncStreamClient",
    "ServerError",
    "AsyncTailSubscription",
    "SyncTailSubscription",
]


def connect(host="127.0.0.1", port=7450, *, token=None, codec=None, timeout=None):
    """Open a blocking :class:`StreamClient` connection."""
    return StreamClient.connect(host, port, token=token, codec=codec, timeout=timeout)


async def aconnect(host="127.0.0.1", port=7450, *, token=None, codec=None):
    """Open an :class:`AsyncStreamClient` connection (await inside a loop)."""
    return await AsyncStreamClient.connect(host, port, token=token, codec=codec)
