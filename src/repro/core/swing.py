"""Swing filter — connected piece-wise linear approximation (paper §3).

The swing filter maintains, for every dimension ``i``, an upper line ``uᵢ``
and a lower line ``lᵢ`` that are both anchored at the previous recording.  Any
line between them can represent every data point of the current filtering
interval within εᵢ.  Each accepted point "swings" the bounds toward each other
(Algorithm 1 of the paper); when a point cannot be represented any more a new
recording is made at the previous point's time, choosing — among the still
admissible slopes — the one that minimizes the mean square error of the
interval (paper §3.2).  Consecutive segments share their endpoints, so every
segment after the first costs exactly one recording.

Complexity: O(1) time and space per data point, independent of the interval
length (the MSE sums are maintained incrementally).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import kernels
from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind

__all__ = ["SwingFilter"]

#: Initial lookahead (in points) of the batch scan; doubled while no
#: violation is found, reset after each recording.
_INITIAL_WINDOW = 64


class SwingFilter(StreamFilter):
    """Online swing filter with optional bounded transmitter lag.

    Args:
        epsilon: Precision width specification (see
            :class:`~repro.core.base.StreamFilter`).
        max_lag: Optional ``m_max_lag`` bound (paper §3.3).  When the current
            filtering interval reaches this many points, the filter commits to
            the MSE-optimal candidate segment, updates the receiver, and
            continues as a plain linear filter until the interval ends.
    """

    name = "swing"
    family = "linear"
    state_version = 1
    _STATE_FIELDS = (
        "_anchor_time",
        "_anchor_value",
        "_upper_slope",
        "_lower_slope",
        "_sum_xt",
        "_sum_tt",
        "_last_point",
        "_interval_points",
        "_locked_slope",
    )

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        # Anchor = previous recording (start point of the current segment).
        self._anchor_time: Optional[float] = None
        self._anchor_value: Optional[np.ndarray] = None
        # Per-dimension slopes of the upper / lower bounding lines.
        self._upper_slope: Optional[np.ndarray] = None
        self._lower_slope: Optional[np.ndarray] = None
        # Incremental sums for the MSE-optimal slope (paper equation 6).
        self._sum_xt: Optional[np.ndarray] = None
        self._sum_tt: float = 0.0
        self._last_point: Optional[DataPoint] = None
        self._interval_points = 0
        # Bounded-lag ("locked") mode: the segment slope is frozen and the
        # filter behaves like a connected linear filter until a violation.
        self._locked_slope: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._anchor_time is None:
            # Algorithm 1 line 2: the first point is recorded verbatim and
            # anchors the first segment.
            self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
            self._anchor_time = point.time
            self._anchor_value = point.value.copy()
            self._last_point = point
            return

        if self._locked_slope is not None:
            self._feed_locked(point)
            return

        if self._upper_slope is None:
            # Second point of the interval: it defines the initial bounds
            # (Algorithm 1 line 3 / line 9) and always lies within them.
            self._open_bounds(point)
            self._accumulate(point)
            self._after_accept(point)
            return

        # Acceptance and the swing update are both expressed on the slopes of
        # the candidate bounding lines through the anchor (dividing the
        # line-space inequalities of Algorithm 1 by dt > 0).  The batch path
        # (:meth:`_process_batch`) evaluates the very same expressions with
        # prefix min/max scans, so both paths produce identical recordings.
        epsilon = self._epsilon_array()
        dt = point.time - self._anchor_time
        upper_candidate = (point.value + epsilon - self._anchor_value) / dt
        lower_candidate = (point.value - epsilon - self._anchor_value) / dt
        if np.all(lower_candidate <= self._upper_slope) and np.all(
            upper_candidate >= self._lower_slope
        ):
            # Filtered out: swing the bounds so every remaining candidate line
            # still represents all points, including this one.
            self._upper_slope = np.minimum(self._upper_slope, upper_candidate)
            self._lower_slope = np.maximum(self._lower_slope, lower_candidate)
            self._accumulate(point)
            self._after_accept(point)
            return

        # Violation: close the current segment at the previous point's time
        # with the MSE-optimal admissible value, then start a new interval
        # whose bounds are defined by the violating point.
        self._close_segment(self._last_point.time)
        self._open_bounds(point)
        self._reset_sums(point)
        self._last_point = point
        self._interval_points = 1

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized chunk processing (identical recordings to the feed path).

        For every chunk position the candidate upper/lower slopes through the
        current anchor are computed in one shot; the bounds in effect at each
        position are prefix min/max scans over those candidates, so the first
        violating point of each filtering interval is found without a Python
        loop.  The Python loop below runs once per *recording*, not once per
        point.  The arithmetic lives in :mod:`repro.core.kernels` (shared
        with the slide filter); the MSE sums are accumulated with strict
        left folds matching the per-point addition order bit for bit.

        The scan advances through the chunk in a geometrically growing
        lookahead window (reset at every violation): candidate slopes are only
        computed for points that are likely to share the current anchor, so a
        chunk containing many short segments costs O(chunk), not
        O(chunk × segments).
        """
        if self.max_lag is not None or self._locked_slope is not None:
            # Bounded-lag bookkeeping is inherently sequential; keep the
            # per-point reference path.
            super()._process_batch(times, values)
            return
        epsilon = self._epsilon_array()
        total = times.shape[0]
        position = 0
        window = _INITIAL_WINDOW
        if self._anchor_time is None:
            self._emit(times[0], values[0], RecordingKind.SEGMENT_START)
            self._anchor_time = float(times[0])
            self._anchor_value = values[0].copy()
            self._last_point = DataPoint(float(times[0]), values[0])
            position = 1
        while position < total:
            stop = min(position + window, total)
            ts = times[position:stop]
            xs = values[position:stop]
            dt, upper_candidates, lower_candidates = kernels.swing_candidate_slopes(
                ts, xs, self._anchor_time, self._anchor_value, epsilon
            )
            dims = upper_candidates.shape[1]
            carried_upper = (
                self._upper_slope if self._upper_slope is not None else np.full(dims, np.inf)
            )
            carried_lower = (
                self._lower_slope if self._lower_slope is not None else np.full(dims, -np.inf)
            )
            # bound_*[k] = bounding slopes in effect when point k is checked
            # (carried bounds tightened by the first k candidates).  With no
            # open bounds the +/-inf seeds make the first point uncheckable —
            # exactly the always-accepted bounds-opening point of the
            # per-point path.
            bound_upper, bound_lower = kernels.swing_running_bounds(
                carried_upper, carried_lower, upper_candidates, lower_candidates
            )
            run = kernels.swing_first_rejection(
                upper_candidates, lower_candidates, bound_upper, bound_lower
            )
            if run > 0:
                self._upper_slope = np.minimum(bound_upper[run - 1], upper_candidates[run - 1])
                self._lower_slope = np.maximum(bound_lower[run - 1], lower_candidates[run - 1])
                contributions = (xs[:run] - self._anchor_value) * dt[:run, None]
                initial = self._sum_xt if self._sum_xt is not None else np.zeros(dims)
                self._sum_xt = kernels.fold_left_sum_rows(initial, contributions)
                self._sum_tt = kernels.fold_left_sum(self._sum_tt, dt[:run] * dt[:run])
                self._interval_points += run
                self._last_point = DataPoint(float(ts[run - 1]), xs[run - 1])
            if run == ts.shape[0]:
                # No violation inside the window: widen the lookahead.
                position = stop
                window *= 2
                continue
            violator = DataPoint(float(ts[run]), xs[run])
            self._close_segment(self._last_point.time)
            self._open_bounds(violator)
            self._reset_sums(violator)
            self._last_point = violator
            self._interval_points = 1
            position += run + 1
            window = _INITIAL_WINDOW

    def _finish_stream(self) -> None:
        if self._anchor_time is None or self._last_point is None:
            return
        if self._last_point.time <= self._anchor_time:
            # The stream contained a single point; the start recording already
            # represents it exactly.
            return
        if self._locked_slope is not None:
            end_value = self._anchor_value + self._locked_slope * (
                self._last_point.time - self._anchor_time
            )
            self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)
            return
        self._close_segment(self._last_point.time)

    # ------------------------------------------------------------------ #
    # Swing mechanics
    # ------------------------------------------------------------------ #
    def _open_bounds(self, point: DataPoint) -> None:
        """Define u/l through the anchor and ``point ± ε`` (new interval)."""
        epsilon = self._epsilon_array()
        dt = point.time - self._anchor_time
        self._upper_slope = (point.value + epsilon - self._anchor_value) / dt
        self._lower_slope = (point.value - epsilon - self._anchor_value) / dt

    def _accumulate(self, point: DataPoint) -> None:
        dt = point.time - self._anchor_time
        contribution = (point.value - self._anchor_value) * dt
        if self._sum_xt is None:
            self._sum_xt = contribution
        else:
            self._sum_xt = self._sum_xt + contribution
        self._sum_tt += dt * dt

    def _reset_sums(self, point: DataPoint) -> None:
        dt = point.time - self._anchor_time
        self._sum_xt = (point.value - self._anchor_value) * dt
        self._sum_tt = dt * dt

    def _optimal_slope(self) -> np.ndarray:
        """MSE-minimizing slope clamped into the admissible range (eq. 5/6)."""
        if self._sum_tt <= 0.0 or self._sum_xt is None:
            # No accumulated points beyond the anchor; fall back to the middle
            # of the admissible slope range.
            return (self._upper_slope + self._lower_slope) / 2.0
        unconstrained = self._sum_xt / self._sum_tt
        low = np.minimum(self._upper_slope, self._lower_slope)
        high = np.maximum(self._upper_slope, self._lower_slope)
        return np.clip(unconstrained, low, high)

    def _close_segment(self, end_time: float) -> None:
        slope = self._optimal_slope()
        end_value = self._anchor_value + slope * (end_time - self._anchor_time)
        self._emit(end_time, end_value, RecordingKind.SEGMENT_END)
        self._anchor_time = float(end_time)
        self._anchor_value = end_value
        self._upper_slope = None
        self._lower_slope = None
        self._sum_xt = None
        self._sum_tt = 0.0
        self._locked_slope = None

    def _after_accept(self, point: DataPoint) -> None:
        self._last_point = point
        self._interval_points += 1
        if (
            self.max_lag is not None
            and self._locked_slope is None
            and self._interval_points >= self.max_lag
        ):
            self._lock_segment(point)

    # ------------------------------------------------------------------ #
    # Bounded-lag (locked) mode
    # ------------------------------------------------------------------ #
    def _lock_segment(self, point: DataPoint) -> None:
        """Commit to the MSE-optimal candidate and update the receiver now."""
        slope = self._optimal_slope()
        lock_value = self._anchor_value + slope * (point.time - self._anchor_time)
        self._emit(point.time, lock_value, RecordingKind.SEGMENT_END)
        self._anchor_time = point.time
        self._anchor_value = lock_value
        self._locked_slope = slope
        self._upper_slope = None
        self._lower_slope = None
        self._sum_xt = None
        self._sum_tt = 0.0
        self._interval_points = 0

    def _feed_locked(self, point: DataPoint) -> None:
        prediction = self._anchor_value + self._locked_slope * (point.time - self._anchor_time)
        if np.all(np.abs(point.value - prediction) <= self._epsilon_array()):
            self._last_point = point
            self._interval_points += 1
            if self._interval_points >= self.max_lag:
                # Keep the promise that the receiver is updated at least every
                # max_lag points even while the segment keeps extending.
                self._emit(point.time, prediction, RecordingKind.SEGMENT_END)
                self._anchor_time = point.time
                self._anchor_value = prediction
                self._interval_points = 0
            return
        # Violation while locked: terminate the frozen segment at the last
        # point's prediction and resume normal swing operation.  If no point
        # was accepted since the lock recording, the lock recording itself is
        # the segment end and nothing new needs to be transmitted.
        if self._last_point.time > self._anchor_time:
            end_value = self._anchor_value + self._locked_slope * (
                self._last_point.time - self._anchor_time
            )
            self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)
            self._anchor_time = self._last_point.time
            self._anchor_value = end_value
        self._locked_slope = None
        self._open_bounds(point)
        self._reset_sums(point)
        self._last_point = point
        self._interval_points = 1
