"""Explicit, versioned, picklable filter state.

Every :class:`~repro.core.base.StreamFilter` is a long-lived online state
machine: the current filtering interval's bounds, moment sums and buffered
points fully determine every *future* recording.  :class:`FilterState`
captures exactly that state — plus the constructor configuration needed to
rebuild an equivalent filter — as a plain, picklable value object, so the
layers above the filters (checkpointing, worker migration, parallel
ingestion) can pause a stream, move it to another process, and resume it
with recordings bit-identical to an uninterrupted run.

A snapshot deliberately does *not* carry the recordings already emitted:
they belong to whatever sink consumed them (an in-memory list, a segment
store), and carrying them would make snapshots grow without bound.  A
restored filter therefore starts with an empty recording list; the
concatenation of the recordings emitted before the snapshot and after the
restore equals the uninterrupted run's recordings exactly.

Versioning: every filter class declares a ``state_version``; snapshots embed
it and :meth:`~repro.core.base.StreamFilter.restore` rejects a snapshot
whose version (or filter name) does not match, so stale checkpoints fail
loudly instead of resuming with silently reinterpreted state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["FilterState"]


@dataclass(frozen=True)
class FilterState:
    """Complete resumable state of one :class:`StreamFilter` instance.

    Attributes:
        filter_name: The filter class's registry ``name`` (``"swing"``, …).
        state_version: The filter class's ``state_version`` at snapshot time.
        config: Constructor configuration (``epsilon``, ``max_lag`` and any
            filter-specific options) sufficient to rebuild an equivalent
            filter via :func:`repro.core.registry.restore_filter`.
        base: The shared :class:`StreamFilter` bookkeeping (resolved ε,
            dimensionality, last timestamp, points processed, finished flag).
        payload: The filter-specific interval state (bounds, moment sums,
            buffered points, hulls, …) as named fields.
    """

    filter_name: str
    state_version: int
    config: Dict[str, Any] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
