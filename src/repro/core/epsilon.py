"""Precision-width (ε) specifications.

The paper's error constraint is the L∞ metric: every original data point must
be within ``εᵢ`` of the approximation in every dimension ``i``.  The precision
width can be given either as an absolute quantity or — as in all of the
paper's experiments — as a percentage of the signal's value range.  This
module provides a small helper class encapsulating both forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.core.errors import InvalidPrecisionError

__all__ = ["ErrorBound", "epsilon_from_percent"]

Number = Union[int, float]


@dataclass(frozen=True)
class ErrorBound:
    """Per-dimension precision widths ``(ε₁, …, ε_d)``.

    Instances are validated at construction: every width must be finite and
    non-negative (a width of zero forces exact reproduction, which is legal
    but records almost every point).
    """

    epsilons: np.ndarray

    def __post_init__(self) -> None:
        array = np.atleast_1d(np.asarray(self.epsilons, dtype=float))
        if array.ndim != 1:
            raise InvalidPrecisionError(
                f"precision widths must form a 1-D vector, got shape {array.shape}"
            )
        if array.size == 0:
            raise InvalidPrecisionError("at least one precision width is required")
        if not np.all(np.isfinite(array)):
            raise InvalidPrecisionError("precision widths must be finite")
        if np.any(array < 0.0):
            raise InvalidPrecisionError("precision widths must be non-negative")
        object.__setattr__(self, "epsilons", array)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, epsilon: Number, dimensions: int = 1) -> "ErrorBound":
        """Build a bound with the same width in every dimension."""
        if dimensions < 1:
            raise InvalidPrecisionError("dimensions must be at least 1")
        return cls(np.full(dimensions, float(epsilon)))

    @classmethod
    def of(cls, epsilon: Union["ErrorBound", Number, Sequence[Number]], dimensions: int) -> "ErrorBound":
        """Coerce a user-supplied specification to a bound of ``dimensions`` widths.

        Scalars are broadcast; vectors must already have the right length.
        """
        if isinstance(epsilon, ErrorBound):
            bound = epsilon
        elif np.isscalar(epsilon):
            bound = cls.uniform(float(epsilon), dimensions)
        else:
            bound = cls(np.asarray(epsilon, dtype=float))
        if bound.dimensions != dimensions:
            raise InvalidPrecisionError(
                f"precision bound has {bound.dimensions} dimensions, "
                f"but the signal has {dimensions}"
            )
        return bound

    @classmethod
    def from_percent_of_range(
        cls, percent: Number, values: Union[np.ndarray, Iterable], per_dimension: bool = True
    ) -> "ErrorBound":
        """Build a bound as ``percent``% of the observed value range.

        Args:
            percent: Precision width as a percentage (e.g. ``1`` for 1 %).
            values: Signal values, shape ``(n,)`` or ``(n, d)``.
            per_dimension: When ``True`` the range is computed separately per
                dimension; otherwise the global range is used for all
                dimensions.
        """
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if array.ndim == 1:
            array = array[:, np.newaxis]
        if array.size == 0:
            raise InvalidPrecisionError("cannot derive a range from an empty signal")
        if per_dimension:
            ranges = array.max(axis=0) - array.min(axis=0)
        else:
            global_range = float(array.max() - array.min())
            ranges = np.full(array.shape[1], global_range)
        return cls(ranges * (float(percent) / 100.0))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Number of dimensions covered by this bound."""
        return int(self.epsilons.shape[0])

    def component(self, i: int) -> float:
        """Return εᵢ."""
        return float(self.epsilons[i])

    def as_array(self) -> np.ndarray:
        """Return a copy of the widths as a numpy array."""
        return self.epsilons.copy()

    def satisfied_by(self, deviation: np.ndarray, slack: float = 0.0) -> bool:
        """Return ``True`` when ``|deviation| ≤ ε`` holds component-wise."""
        return bool(np.all(np.abs(deviation) <= self.epsilons + slack))

    def __iter__(self):
        return iter(float(value) for value in self.epsilons)

    def __len__(self) -> int:
        return self.dimensions


def epsilon_from_percent(percent: Number, values) -> float:
    """Return a scalar ε equal to ``percent``% of the global range of ``values``.

    Convenience helper for single-dimensional experiments (paper §5.1 defines
    the precision width as a percentage of the signal's range).
    """
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if array.size == 0:
        raise InvalidPrecisionError("cannot derive a range from an empty signal")
    return float((array.max() - array.min()) * (float(percent) / 100.0))
