"""Audited array kernels shared by the filters' vectorized batch paths.

The swing and slide filters promise that :meth:`StreamFilter.process_batch`
emits recordings *bit-identical* to the per-point :meth:`feed` path.  Keeping
that promise while running at numpy speed means every piece of floating-point
arithmetic the batch paths share with the per-point paths has to live in one
place, written once and audited once.  This module is that place:

* **Line evaluation** — :func:`evaluate_lines` is ``Line.value_at`` broadcast
  over a window of timestamps and a family of per-dimension bounding lines.
* **Violation scans** — :func:`slide_event_masks` classifies every point of a
  probe window against the slide filter's bounding lines (hard violation vs
  bound-update event); :func:`first_true` / :func:`swing_first_rejection`
  locate the first event without a Python loop.
* **Moment accumulation** — :func:`fold_left_sum` / :func:`fold_left_sum_rows`
  are strict left folds: they add elements in exactly the per-point order
  (``((init + a0) + a1) + ...``), so the MSE moments match the per-point
  path bit for bit.  Unlike the previous ``concatenate`` + ``cumsum`` +
  take-last idiom they never materialize O(run) temporaries — the scan is
  blocked through a bounded scratch buffer.

Every kernel documents the exact expression it computes; the per-point code
in :mod:`repro.core.swing` / :mod:`repro.core.slide` computes the same
expressions with scalar arithmetic, and ``tests/test_kernels.py`` pins the
bitwise agreement with property/fuzz suites.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "evaluate_lines",
    "slide_event_masks",
    "first_true",
    "fold_left_sum",
    "fold_left_sum_rows",
    "fold_left_moment_sums",
    "slide_event_masks_1d",
    "swing_candidate_slopes",
    "swing_running_bounds",
    "swing_first_rejection",
    "within_epsilon_mask",
]

#: Block length of the fold-left reductions: large enough to amortize numpy
#: dispatch, small enough that the scratch buffer stays cache-resident and the
#: reduction never materializes O(run) temporaries.
FOLD_BLOCK = 4096


# --------------------------------------------------------------------------- #
# Line evaluation and violation scans
# --------------------------------------------------------------------------- #
def evaluate_lines(
    times: np.ndarray, slopes: np.ndarray, intercepts: np.ndarray
) -> np.ndarray:
    """Evaluate a family of lines at every timestamp of a window.

    Computes ``out[k, i] = times[k] * slopes[i] + intercepts[i]`` — the same
    expression as ``Line.value_at`` (multiplication is commutative bitwise),
    broadcast over an ``(n,)`` window and ``(d,)`` per-dimension lines.
    """
    return times[:, None] * slopes + intercepts


def slide_event_masks(
    values: np.ndarray,
    upper_values: np.ndarray,
    lower_values: np.ndarray,
    epsilon: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classify a probe window against the slide filter's bounding lines.

    Args:
        values: ``(n, d)`` window values.
        upper_values: ``(n, d)`` upper bounding lines evaluated at the window
            times (from :func:`evaluate_lines`).
        lower_values: ``(n, d)`` lower bounding lines evaluated likewise.
        epsilon: ``(d,)`` precision widths.

    Returns:
        ``(violates, needs_update)`` boolean ``(n,)`` masks: *violates* marks
        points no admissible segment can represent (the interval must close),
        *needs_update* marks points that force a bounding line to slide onto a
        new support point.  Exactly the acceptance arithmetic of
        ``SlideFilter._accepts`` / ``SlideFilter._update_bounds``.
    """
    violates = np.any(values > upper_values + epsilon, axis=1) | np.any(
        values < lower_values - epsilon, axis=1
    )
    needs_update = np.any(values > lower_values + epsilon, axis=1) | np.any(
        values < upper_values - epsilon, axis=1
    )
    return violates, needs_update


def slide_event_masks_1d(
    values: np.ndarray,
    upper_values: np.ndarray,
    lower_values: np.ndarray,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-dimensional :func:`slide_event_masks` on flat ``(n,)`` arrays.

    Same elementwise IEEE arithmetic, about 4x fewer numpy dispatches (no
    axis reductions, no broadcasting against a ``(d,)`` epsilon).
    """
    violates = (values > upper_values + epsilon) | (values < lower_values - epsilon)
    needs_update = (values > lower_values + epsilon) | (values < upper_values - epsilon)
    return violates, needs_update


def first_true(mask: np.ndarray) -> int:
    """Index of the first ``True`` in a boolean mask (``len(mask)`` if none)."""
    return int(np.argmax(mask)) if bool(mask.any()) else int(mask.shape[0])


# --------------------------------------------------------------------------- #
# Order-preserving moment accumulation
# --------------------------------------------------------------------------- #
def fold_left_sum(initial: float, values: np.ndarray) -> float:
    """Strict left fold ``((initial + v0) + v1) + ...`` over a 1-D array.

    Bit-identical to the per-point ``acc += v`` loop (``np.cumsum`` is a
    sequential scan, and splitting a left fold at block boundaries does not
    change the addition order).  Temporary memory is O(:data:`FOLD_BLOCK`),
    not O(len(values)).
    """
    total = float(initial)
    scratch = np.empty(min(values.shape[0], FOLD_BLOCK) + 1)
    for start in range(0, values.shape[0], FOLD_BLOCK):
        block = values[start : start + FOLD_BLOCK]
        view = scratch[: block.shape[0] + 1]
        view[0] = total
        view[1:] = block
        np.cumsum(view, out=view)
        total = float(view[-1])
    return total


def fold_left_sum_rows(initial: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Row-wise strict left fold over an ``(n, d)`` array.

    Returns a fresh ``(d,)`` array equal to feeding every row through
    ``acc = acc + row`` in order (the per-point moment update); ``initial``
    is never mutated.  Temporaries are bounded by :data:`FOLD_BLOCK` rows.
    """
    dims = initial.shape[0]
    if rows.shape[0] == 0:
        return initial.copy()
    scratch = np.empty((min(rows.shape[0], FOLD_BLOCK) + 1, dims))
    total = initial
    for start in range(0, rows.shape[0], FOLD_BLOCK):
        block = rows[start : start + FOLD_BLOCK]
        view = scratch[: block.shape[0] + 1]
        view[0] = total
        view[1:] = block
        np.cumsum(view, axis=0, out=view)
        total = view[-1]
    return total.copy()


def fold_left_moment_sums(
    sum_t: float,
    sum_tt: float,
    sum_x: np.ndarray,
    sum_xt: np.ndarray,
    times: np.ndarray,
    values: np.ndarray,
) -> Tuple[float, float, np.ndarray, np.ndarray]:
    """Advance the slide filter's four MSE moment accumulators over a run.

    Equivalent to the per-point updates ``sum_t += t``, ``sum_tt += t*t``,
    ``sum_x = sum_x + x`` and ``sum_xt = sum_xt + x*t`` applied in order: all
    four accumulators are packed as columns of one scratch matrix and
    advanced with a single column-wise ``cumsum`` (sequential per column, so
    every accumulator keeps the per-point addition order bit for bit).  The
    scratch is blocked at :data:`FOLD_BLOCK` rows — one numpy dispatch per
    block instead of four per call, and no O(run) temporaries.
    """
    dims = sum_x.shape[0]
    scratch = np.empty((min(times.shape[0], FOLD_BLOCK) + 1, 2 + 2 * dims))
    total = scratch[0]
    total[0] = sum_t
    total[1] = sum_tt
    total[2 : 2 + dims] = sum_x
    total[2 + dims :] = sum_xt
    for start in range(0, times.shape[0], FOLD_BLOCK):
        ts = times[start : start + FOLD_BLOCK]
        xs = values[start : start + FOLD_BLOCK]
        view = scratch[: ts.shape[0] + 1]
        view[0] = total
        view[1:, 0] = ts
        view[1:, 1] = ts * ts
        view[1:, 2 : 2 + dims] = xs
        view[1:, 2 + dims :] = xs * ts[:, None]
        np.cumsum(view, axis=0, out=view)
        total = view[-1]
    return (
        float(total[0]),
        float(total[1]),
        total[2 : 2 + dims].copy(),
        total[2 + dims :].copy(),
    )


# --------------------------------------------------------------------------- #
# Swing acceptance arithmetic
# --------------------------------------------------------------------------- #
def swing_candidate_slopes(
    times: np.ndarray,
    values: np.ndarray,
    anchor_time: float,
    anchor_value: np.ndarray,
    epsilon: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point candidate bounding slopes through the swing anchor.

    Computes ``dt = times - anchor_time`` and the slopes of the lines through
    the anchor and each point shifted by ±ε — exactly the expressions of
    ``SwingFilter._feed_point`` / ``_open_bounds``:
    ``(values + epsilon - anchor_value) / dt`` and
    ``(values - epsilon - anchor_value) / dt``.

    Returns:
        ``(dt, upper_candidates, lower_candidates)`` with shapes
        ``(n,)``, ``(n, d)``, ``(n, d)``.
    """
    dt = times - anchor_time
    upper = (values + epsilon - anchor_value) / dt[:, None]
    lower = (values - epsilon - anchor_value) / dt[:, None]
    return dt, upper, lower


def swing_running_bounds(
    carried_upper: np.ndarray,
    carried_lower: np.ndarray,
    upper_candidates: np.ndarray,
    lower_candidates: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bounding slopes in effect when each point of a window is checked.

    ``bounds[k]`` are the carried bounds tightened by the first ``k``
    candidates (prefix min/max scans) — the state the per-point path would
    hold just before examining point ``k``.
    """
    bound_upper = np.minimum.accumulate(
        np.vstack([carried_upper[None, :], upper_candidates]), axis=0
    )[:-1]
    bound_lower = np.maximum.accumulate(
        np.vstack([carried_lower[None, :], lower_candidates]), axis=0
    )[:-1]
    return bound_upper, bound_lower


def swing_first_rejection(
    upper_candidates: np.ndarray,
    lower_candidates: np.ndarray,
    bound_upper: np.ndarray,
    bound_lower: np.ndarray,
) -> int:
    """First window index the swing acceptance test rejects (or window length).

    The acceptance predicate is the per-point one verbatim:
    ``all(lower_candidate <= bound_upper) and all(upper_candidate >= bound_lower)``.
    """
    accepted = np.all(lower_candidates <= bound_upper, axis=1) & np.all(
        upper_candidates >= bound_lower, axis=1
    )
    return int(accepted.shape[0]) if bool(accepted.all()) else int(np.argmin(accepted))


# --------------------------------------------------------------------------- #
# Connection validation
# --------------------------------------------------------------------------- #
def within_epsilon_mask(
    times: np.ndarray,
    values: np.ndarray,
    slopes: np.ndarray,
    intercepts: np.ndarray,
    epsilon: np.ndarray,
    slack_scale: float,
) -> np.ndarray:
    """Check buffered points against candidate segment lines, with slack.

    Computes, per point and dimension, the slide connection-validation
    predicate ``|line_i(t) - x_i| <= epsilon_i + slack`` where
    ``slack = slack_scale * (1 + |x_i| + epsilon_i)`` — the same expressions
    (and association order) as the scalar loop it replaces.
    """
    predicted = evaluate_lines(times, slopes, intercepts)
    slack = slack_scale * ((1.0 + np.abs(values)) + epsilon)
    return np.abs(predicted - values) <= epsilon + slack
