"""Common machinery shared by every online filter.

A *filter* (in the paper's terminology) consumes an online stream of data
points and emits *recordings* — the endpoints of the line segments making up
the error-bounded approximation.  :class:`StreamFilter` implements everything
that is common to the cache, linear, swing and slide filters:

* validation of the incoming stream (strictly increasing times, constant
  dimensionality),
* lazy resolution of the ε specification against the first data point,
* bookkeeping of emitted recordings and processed points,
* the public :meth:`feed` / :meth:`finish` / :meth:`process` API.

Concrete filters implement :meth:`_feed_point` and :meth:`_finish_stream`.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.epsilon import ErrorBound
from repro.core.errors import (
    DimensionMismatchError,
    FilterStateError,
    StreamOrderError,
)
from repro.core.state import FilterState
from repro.core.types import DataPoint, FilterResult, Recording, RecordingKind

__all__ = ["StreamFilter"]

EpsilonSpec = Union[ErrorBound, float, Sequence[float]]

#: Shared bookkeeping captured in every snapshot's ``base`` dict.
_BASE_STATE_FIELDS = (
    "_epsilon",
    "_dimensions",
    "_last_time",
    "_points_processed",
    "_finished",
)


class StreamFilter(abc.ABC):
    """Abstract base class for online error-bounded stream filters.

    Args:
        epsilon: Precision width specification — a scalar (applied to every
            dimension), a per-dimension sequence, or an :class:`ErrorBound`.
        max_lag: Optional bound ``m_max_lag`` on the number of data points the
            transmitter may process before updating the receiver (paper §3.3).
            ``None`` disables the bound.

    Subclasses must set the class attributes :attr:`name` (short identifier
    used by the registry and reports) and may override :attr:`family`.
    """

    #: Short identifier, e.g. ``"swing"``; overridden by subclasses.
    name: str = "abstract"
    #: ``"constant"`` for piece-wise constant output, ``"linear"`` otherwise.
    family: str = "linear"
    #: Version of the filter-specific snapshot payload.  Bump whenever the
    #: meaning of :attr:`_STATE_FIELDS` changes so old checkpoints are
    #: rejected instead of silently misread.
    state_version: int = 1
    #: Names of the filter-specific attributes that fully determine every
    #: future recording; subclasses with interval state override this.
    _STATE_FIELDS: Tuple[str, ...] = ()

    def __init__(self, epsilon: EpsilonSpec, max_lag: Optional[int] = None) -> None:
        if max_lag is not None and max_lag < 2:
            raise ValueError("max_lag must be at least 2 data points")
        self._epsilon_spec = epsilon
        self._epsilon: Optional[ErrorBound] = None
        self.max_lag = max_lag
        self._dimensions: Optional[int] = None
        self._last_time: Optional[float] = None
        self._points_processed = 0
        self._finished = False
        self._recordings: List[Recording] = []
        self._pending: List[Recording] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> Optional[ErrorBound]:
        """Resolved per-dimension precision widths (``None`` before any point)."""
        return self._epsilon

    @property
    def dimensions(self) -> Optional[int]:
        """Signal dimensionality (``None`` before the first point)."""
        return self._dimensions

    @property
    def points_processed(self) -> int:
        """Number of data points consumed so far."""
        return self._points_processed

    @property
    def recordings(self) -> Sequence[Recording]:
        """All recordings emitted so far, in order."""
        return tuple(self._recordings)

    @property
    def recording_count(self) -> int:
        """Number of recordings emitted so far."""
        return len(self._recordings)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    def feed(self, time: float, value) -> List[Recording]:
        """Process one data point and return any recordings it triggered.

        Args:
            time: Timestamp of the point; must strictly exceed the previous
                point's timestamp.
            value: Scalar or d-dimensional value vector.

        Returns:
            Recordings emitted while processing this point (possibly empty).
        """
        if self._finished:
            raise FilterStateError("filter has already been finished")
        point = DataPoint(float(time), value)
        self._validate(point)
        self._pending = []
        self._points_processed += 1
        self._feed_point(point)
        return self._pending

    def feed_point(self, point: DataPoint) -> List[Recording]:
        """Like :meth:`feed` but accepting a :class:`DataPoint` directly."""
        return self.feed(point.time, point.value)

    def process_batch(self, times, values) -> List[Recording]:
        """Process a chunk of points at once and return the emitted recordings.

        This is the vectorized fast path used by
        :class:`repro.pipeline.BatchIngestor`.  It is behaviourally equivalent
        to feeding every point through :meth:`feed` in order — filters that
        override :meth:`_process_batch` guarantee *identical* recordings — but
        amortizes validation, ε resolution and (for the filters that vectorize
        their inner loop) the per-point work over the whole chunk.

        Args:
            times: 1-D array of timestamps, strictly increasing and strictly
                after every previously processed point.
            values: Array of shape ``(n,)`` (scalar signal) or ``(n, d)``.

        Returns:
            Recordings emitted while processing this chunk (possibly empty).

        Raises:
            FilterStateError: If the filter has already been finished.
            StreamOrderError: If the timestamps are not strictly increasing.
            DimensionMismatchError: If ``d`` differs from earlier points.
        """
        if self._finished:
            raise FilterStateError("filter has already been finished")
        times_in, values_in = times, values
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise ValueError(f"times must be a 1-D array, got shape {times.shape}")
        values = np.asarray(values, dtype=float)
        if values.ndim not in (1, 2):
            raise ValueError(
                f"values must have shape (n,) or (n, d), got shape {values.shape}"
            )
        # Defensive copies when the coerced arrays alias caller memory: the
        # filter's interval state (anchors, buffered points) can outlive this
        # call, and callers may legitimately refill their input buffers
        # between chunks.
        if times is times_in or times.base is not None:
            times = times.copy()
        if values is values_in or values.base is not None:
            values = values.copy()
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        if values.shape[0] != times.shape[0]:
            raise ValueError(
                f"times and values disagree on length: {times.shape[0]} vs {values.shape[0]}"
            )
        if times.size == 0:
            return []
        if self._dimensions is None:
            self._dimensions = int(values.shape[1])
            self._epsilon = ErrorBound.of(self._epsilon_spec, self._dimensions)
        elif values.shape[1] != self._dimensions:
            raise DimensionMismatchError(
                f"expected {self._dimensions}-dimensional values, got {values.shape[1]}"
            )
        if self._last_time is not None and times[0] <= self._last_time:
            raise StreamOrderError(
                f"timestamps must be strictly increasing; got {float(times[0])!r} "
                f"after {self._last_time!r}"
            )
        steps = np.diff(times)
        if steps.size and not np.all(steps > 0.0):
            bad = int(np.argmax(steps <= 0.0))
            raise StreamOrderError(
                f"timestamps must be strictly increasing; got {float(times[bad + 1])!r} "
                f"after {float(times[bad])!r}"
            )
        self._pending = []
        self._process_batch(times, values)
        self._points_processed += int(times.size)
        self._last_time = float(times[-1])
        return self._pending

    def finish(self) -> List[Recording]:
        """Signal end-of-stream and return the final recordings."""
        if self._finished:
            return []
        self._pending = []
        if self._points_processed > 0:
            self._finish_stream()
        self._finished = True
        return self._pending

    def process(self, stream: Iterable) -> FilterResult:
        """Run the filter over a finite ``stream`` and return a summary.

        ``stream`` may yield :class:`DataPoint` instances or ``(t, value)``
        pairs.  The filter instance is single-use: it is finished afterwards.
        """
        for element in stream:
            if isinstance(element, DataPoint):
                self.feed_point(element)
            else:
                t, value = element
                self.feed(t, value)
        self.finish()
        return self.result()

    def result(self) -> FilterResult:
        """Return the accumulated :class:`FilterResult`."""
        return FilterResult(
            recordings=list(self._recordings),
            points_processed=self._points_processed,
            dimensions=self._dimensions or 0,
        )

    @classmethod
    def run(cls, stream: Iterable, epsilon: EpsilonSpec, **kwargs) -> FilterResult:
        """Construct a filter, process ``stream`` and return the result."""
        return cls(epsilon, **kwargs).process(stream)

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> FilterState:
        """Capture the filter's complete resumable state.

        The snapshot is a deep copy: the filter may keep processing points
        afterwards without invalidating it, and it is picklable, so it can be
        checkpointed to disk or shipped to another process.  It contains the
        constructor configuration plus everything that determines future
        recordings — but *not* the recordings already emitted (those belong
        to the sink that consumed them); a restored filter starts with an
        empty recording list.

        Call between :meth:`feed` / :meth:`process_batch` calls, never from
        inside a subclass hook.
        """
        return FilterState(
            filter_name=self.name,
            state_version=self.state_version,
            config=copy.deepcopy(self._config_payload()),
            base={name: copy.deepcopy(getattr(self, name)) for name in _BASE_STATE_FIELDS},
            payload={name: copy.deepcopy(getattr(self, name)) for name in self._STATE_FIELDS},
        )

    def restore(self, state: FilterState) -> "StreamFilter":
        """Replace this filter's state with a snapshot's, returning ``self``.

        After restoring, feeding the points that followed the snapshot yields
        recordings bit-identical to an uninterrupted run.  The snapshot's
        configuration (ε, ``max_lag``, filter-specific options) is applied
        too, so the instance behaves exactly like the snapshotted one even if
        it was constructed with different settings.  The recording list is
        cleared (see :meth:`snapshot`).

        Raises:
            FilterStateError: If the snapshot belongs to a different filter
                or was written with a different ``state_version``.
        """
        if state.filter_name != self.name:
            raise FilterStateError(
                f"cannot restore a {state.filter_name!r} snapshot into a {self.name!r} filter"
            )
        if state.state_version != self.state_version:
            raise FilterStateError(
                f"{self.name!r} snapshot has state version {state.state_version}, "
                f"this build expects {self.state_version}"
            )
        missing = [name for name in self._STATE_FIELDS if name not in state.payload]
        if missing:
            raise FilterStateError(
                f"{self.name!r} snapshot is missing state fields: {', '.join(missing)}"
            )
        self._apply_config(state.config)
        for name in _BASE_STATE_FIELDS:
            setattr(self, name, copy.deepcopy(state.base[name]))
        for name in self._STATE_FIELDS:
            setattr(self, name, copy.deepcopy(state.payload[name]))
        self._recordings = []
        self._pending = []
        self._state_restored()
        return self

    def _config_payload(self) -> Dict[str, Any]:
        """Constructor configuration embedded in snapshots.

        Subclasses with extra constructor options extend the returned dict;
        every key must be a keyword their ``__init__`` accepts (so
        :func:`repro.core.registry.restore_filter` can rebuild the filter).
        """
        return {"epsilon": self._epsilon_spec, "max_lag": self.max_lag}

    def _apply_config(self, config: Dict[str, Any]) -> None:
        """Adopt a snapshot's constructor configuration."""
        self._epsilon_spec = copy.deepcopy(config["epsilon"])
        self.max_lag = config["max_lag"]

    def _state_restored(self) -> None:
        """Hook invoked after :meth:`restore` has replaced every state field.

        Subclasses that maintain derived caches outside ``_STATE_FIELDS``
        (e.g. the slide filter's bound-coefficient arrays) drop or rebuild
        them here; the default does nothing.
        """

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _feed_point(self, point: DataPoint) -> None:
        """Process one validated data point."""

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Process one validated chunk (``times`` 1-D, ``values`` 2-D).

        The default implementation falls back to the per-point hook.  Filters
        with a vectorized inner loop override this; overrides MUST produce
        exactly the recordings the per-point path would produce, so callers
        may mix :meth:`feed` and :meth:`process_batch` freely.
        """
        for index in range(times.shape[0]):
            self._feed_point(DataPoint(float(times[index]), values[index]))

    @abc.abstractmethod
    def _finish_stream(self) -> None:
        """Flush state at end-of-stream (only called if at least one point arrived)."""

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def _emit(self, time: float, value, kind: RecordingKind) -> Recording:
        """Record a transmitted point and return it.

        The value is copied: recordings outlive the call, and ``value`` is
        often a row view of a caller-owned chunk array (or the caller's own
        array in the per-point path).
        """
        recording = Recording(float(time), np.array(value, dtype=float), kind)
        self._recordings.append(recording)
        self._pending.append(recording)
        return recording

    def _epsilon_array(self) -> np.ndarray:
        """Return the resolved ε vector (only valid after the first point)."""
        if self._epsilon is None:
            raise FilterStateError("epsilon is not resolved before the first data point")
        return self._epsilon.epsilons

    # ------------------------------------------------------------------ #
    # Internal validation
    # ------------------------------------------------------------------ #
    def _validate(self, point: DataPoint) -> None:
        if self._dimensions is None:
            self._dimensions = point.dimensions
            self._epsilon = ErrorBound.of(self._epsilon_spec, point.dimensions)
        elif point.dimensions != self._dimensions:
            raise DimensionMismatchError(
                f"expected {self._dimensions}-dimensional values, got {point.dimensions}"
            )
        if self._last_time is not None and point.time <= self._last_time:
            raise StreamOrderError(
                f"timestamps must be strictly increasing; got {point.time!r} "
                f"after {self._last_time!r}"
            )
        self._last_time = point.time
