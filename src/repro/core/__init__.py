"""Core online filters and their shared machinery.

This subpackage contains the paper's primary contribution — the swing and
slide filters — together with the cache and linear baselines, the abstract
:class:`~repro.core.base.StreamFilter` machinery, the value types and the
precision-width (ε) specification helpers.
"""

from repro.core.base import StreamFilter
from repro.core.cache import CacheFilter, MeanCacheFilter, MidrangeCacheFilter
from repro.core.epsilon import ErrorBound, epsilon_from_percent
from repro.core.errors import (
    DegradedSinkError,
    DimensionMismatchError,
    FilterStateError,
    InvalidPrecisionError,
    ReproError,
    StoreLockedError,
    StreamOrderError,
)
from repro.core.linear import DisconnectedLinearFilter, LinearFilter
from repro.core.registry import (
    FILTER_REGISTRY,
    PAPER_FILTERS,
    available_filters,
    create_filter,
    paper_filters,
    register_filter,
    restore_filter,
)
from repro.core.slide import SlideFilter
from repro.core.state import FilterState
from repro.core.swing import SwingFilter
from repro.core.types import (
    DataPoint,
    FilterResult,
    Recording,
    RecordingKind,
    Segment,
)

__all__ = [
    "StreamFilter",
    "CacheFilter",
    "MidrangeCacheFilter",
    "MeanCacheFilter",
    "LinearFilter",
    "DisconnectedLinearFilter",
    "SwingFilter",
    "SlideFilter",
    "ErrorBound",
    "epsilon_from_percent",
    "DataPoint",
    "Recording",
    "RecordingKind",
    "Segment",
    "FilterResult",
    "ReproError",
    "StreamOrderError",
    "DimensionMismatchError",
    "FilterStateError",
    "InvalidPrecisionError",
    "DegradedSinkError",
    "StoreLockedError",
    "FILTER_REGISTRY",
    "PAPER_FILTERS",
    "available_filters",
    "create_filter",
    "register_filter",
    "restore_filter",
    "paper_filters",
    "FilterState",
]
