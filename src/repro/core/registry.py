"""Filter registry and factory.

The experiment harness, benchmarks and examples refer to filters by short
string names (``"cache"``, ``"linear"``, ``"swing"``, ``"slide"``, …).  The
registry maps those names to filter classes and provides a factory to build
configured instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Type

from repro.core.base import StreamFilter
from repro.core.cache import CacheFilter, MeanCacheFilter, MidrangeCacheFilter
from repro.core.linear import DisconnectedLinearFilter, LinearFilter
from repro.core.slide import SlideFilter
from repro.core.state import FilterState
from repro.core.swing import SwingFilter

__all__ = [
    "FILTER_REGISTRY",
    "PAPER_FILTERS",
    "available_filters",
    "create_filter",
    "register_filter",
    "restore_filter",
]

#: Filters compared in the paper's evaluation (§5.1), in presentation order.
PAPER_FILTERS = ("cache", "linear", "swing", "slide")

FILTER_REGISTRY: Dict[str, Callable[..., StreamFilter]] = {
    "cache": CacheFilter,
    "cache-midrange": MidrangeCacheFilter,
    "cache-mean": MeanCacheFilter,
    "linear": LinearFilter,
    "linear-disconnected": DisconnectedLinearFilter,
    "swing": SwingFilter,
    "slide": SlideFilter,
    "slide-unoptimized": lambda epsilon, **kwargs: SlideFilter(
        epsilon, use_convex_hull=False, **kwargs
    ),
    "slide-disconnected": lambda epsilon, **kwargs: SlideFilter(
        epsilon, connect_segments=False, **kwargs
    ),
}


def register_filter(name: str, factory: Callable[..., StreamFilter], overwrite: bool = False) -> None:
    """Register a custom filter factory under ``name``.

    Raises:
        ValueError: If the name is already taken and ``overwrite`` is false.
    """
    if name in FILTER_REGISTRY and not overwrite:
        raise ValueError(f"filter name {name!r} is already registered")
    FILTER_REGISTRY[name] = factory


def available_filters() -> List[str]:
    """Return the sorted list of registered filter names."""
    return sorted(FILTER_REGISTRY)


def create_filter(name: str, epsilon, **kwargs) -> StreamFilter:
    """Instantiate the filter registered under ``name``.

    Args:
        name: Registered filter name (see :func:`available_filters`).
        epsilon: Precision width specification passed to the filter.
        **kwargs: Additional keyword arguments forwarded to the constructor
            (e.g. ``max_lag``).

    Raises:
        KeyError: If no filter is registered under ``name``.
    """
    try:
        factory = FILTER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown filter {name!r}; available: {', '.join(available_filters())}"
        ) from None
    return factory(epsilon, **kwargs)


def filter_classes() -> Dict[str, Type[StreamFilter]]:
    """Return the registry entries that are plain classes (no lambdas)."""
    return {
        name: factory
        for name, factory in FILTER_REGISTRY.items()
        if isinstance(factory, type)
    }


def restore_filter(state: FilterState) -> StreamFilter:
    """Rebuild a filter from a :class:`~repro.core.state.FilterState` snapshot.

    The snapshot's ``filter_name`` is the filter *class's* registry name (a
    variant like ``"slide-unoptimized"`` snapshots as ``"slide"`` with its
    options in the config), so lookup goes through :func:`filter_classes`.

    Raises:
        KeyError: If no filter class of that name is registered.
        FilterStateError: If the snapshot's state version does not match.
    """
    classes = filter_classes()
    try:
        cls = classes[state.filter_name]
    except KeyError:
        raise KeyError(
            f"no filter class registered under {state.filter_name!r}; "
            f"available: {', '.join(sorted(classes))}"
        ) from None
    config = dict(state.config)
    epsilon = config.pop("epsilon")
    instance = cls(epsilon, **config)
    instance.restore(state)
    return instance


def paper_filters(epsilon, names: Iterable[str] = PAPER_FILTERS, **kwargs) -> Dict[str, StreamFilter]:
    """Instantiate the paper's four filters (or any subset) with shared settings."""
    return {name: create_filter(name, epsilon, **kwargs) for name in names}
