"""Slide filter — mostly disconnected piece-wise linear approximation (paper §4).

For every dimension ``i`` the slide filter maintains two extremal bounding
lines: the minimum-slope upper line ``uᵢ`` and the maximum-slope lower line
``lᵢ`` that stay within εᵢ of every point of the current filtering interval
(Lemma 4.1).  Unlike the swing filter these lines are not anchored at the
previous recording — they "slide" onto new support points, which lets the
filter absorb more future points before a recording becomes necessary.

When a point cannot be represented, the filter closes the interval:

* the candidate segment ``gᵏ`` passes through the intersection ``zᵢ`` of
  ``uᵢ`` and ``lᵢ`` with the MSE-optimal admissible slope (paper §4.2), and
* if the conditions of Lemma 4.4 hold, ``gᵏ`` is re-anchored so that it meets
  the previous segment ``gᵏ⁻¹`` at a shared point, producing *connected*
  segments that cost a single recording; otherwise two recordings are made.

Updating the bounds only requires the vertices of the convex hull of the
interval's points (Lemma 4.3); both the optimized (hull-based) and the
non-optimized (all-points) variants are provided, matching the two "slide"
curves of the paper's Figure 13.

Complexity: O(m_H) time per point with the hull optimization, where ``m_H`` is
the number of hull vertices, and O(n_interval) without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind
from repro.geometry.hull import IncrementalConvexHull
from repro.geometry.lines import Line
from repro.geometry.tangents import (
    max_slope_lower_line,
    max_slope_lower_tangent_search,
    min_slope_upper_line,
    min_slope_upper_tangent_search,
)

__all__ = ["SlideFilter"]

#: Relative slack used when verifying a connection against buffered points.
_VALIDATION_SLACK = 1e-9

#: Initial lookahead (in points) of the batch scan; doubled while no event is
#: found, reset after each event.
_INITIAL_WINDOW = 64

#: Consecutive zero-lookahead events before the batch scan drops to scalar
#: stepping, and consecutive silent points before it resumes probing (the
#: generic multi-dimensional path).
_SCALAR_ENTER_EVENTS = 2
_SCALAR_EXIT_STREAK = 8

#: 1-D fast path: a probe that finds its event within this many points drops
#: to the float-native scalar core, and the core returns to vectorized
#: probing after this many consecutive silent points.  A probe costs ~10
#: numpy dispatches regardless of the run length, so short runs are cheaper
#: to walk in scalar code; silent stretches beyond the break-even length
#: amortize the probe and are bulk-absorbed.
_SCALAR_ENTER_RUN = 16
_PROBE_ENTER_STREAK = 16


def _safe_line(t1: float, x1: float, t2: float, x2: float) -> Optional[Line]:
    """Build a line through two points, returning ``None`` when degenerate."""
    try:
        return Line.from_points(t1, x1, t2, x2)
    except ValueError:
        return None


def _intersect_interval_sets(
    first: List[Tuple[float, float]], second: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Intersect two unions of closed intervals (each given as (lo, hi) pairs)."""
    result: List[Tuple[float, float]] = []
    for a_lo, a_hi in first:
        for b_lo, b_hi in second:
            lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
            if lo <= hi:
                result.append((lo, hi))
    return result


def _closest_in_intervals(target: float, intervals: List[Tuple[float, float]]) -> float:
    """Return the point of a non-empty union of intervals closest to ``target``."""
    best: Optional[float] = None
    best_distance = float("inf")
    for lo, hi in intervals:
        candidate = min(max(target, lo), hi)
        distance = abs(candidate - target)
        if distance < best_distance:
            best, best_distance = candidate, distance
    return float(best)


@dataclass
class _PreviousSegment:
    """Everything needed to (maybe) connect the next segment to ``gᵏ⁻¹``."""

    lines: List[Line]
    upper: List[Line]
    lower: List[Line]
    start_time: float
    end_time: float
    min_connection_time: float
    #: Buffered interval points as a ``(times (n,), values (n, d))`` pair.
    points: Optional[Tuple[np.ndarray, np.ndarray]]


class SlideFilter(StreamFilter):
    """Online slide filter (paper §4) with optional bounded transmitter lag.

    Args:
        epsilon: Precision width specification (see
            :class:`~repro.core.base.StreamFilter`).
        max_lag: Optional ``m_max_lag`` bound.  When the current interval
            reaches this many points the filter commits to the MSE-optimal
            candidate segment, updates the receiver, and continues as a plain
            linear filter until the interval ends (paper §4.3).
        use_convex_hull: When ``True`` (default) bound updates scan only the
            convex-hull vertices of the interval (the paper's optimization,
            Lemma 4.3); when ``False`` every point of the interval is scanned
            (the "non-optimized slide" curve of Figure 13).
        connect_segments: When ``True`` (default) adjacent segments are joined
            whenever Lemma 4.4 allows it; ``False`` always produces
            disconnected segments (used by the ablation benchmarks).
        validate_connections: When ``True`` (default) the filter buffers the
            previous interval's points and verifies each attempted connection
            against them, falling back to disconnected segments if the joined
            segment would violate the bound.  Disabling it reproduces the
            paper's O(m_H)-space behaviour and relies solely on Lemma 4.4.
    """

    name = "slide"
    family = "linear"
    #: v2: array-backed hull chains and split ``_raw_times`` / ``_raw_values``
    #: interval buffers (v1 snapshots stored tuple-list hulls and a single
    #: ``_raw_points`` pair list).
    state_version = 2
    _STATE_FIELDS = (
        "_first_point",
        "_last_point",
        "_interval_points",
        "_upper",
        "_lower",
        "_hulls",
        "_raw_times",
        "_raw_values",
        "_n",
        "_sum_t",
        "_sum_tt",
        "_sum_x",
        "_sum_xt",
        "_prev",
        "_previous_interval_end",
        "_connection_time",
        "_locked_lines",
        "_locked_last_time",
        "_locked_emitted_time",
        "_locked_points_since_emit",
    )

    def __init__(
        self,
        epsilon,
        max_lag: Optional[int] = None,
        use_convex_hull: bool = True,
        connect_segments: bool = True,
        validate_connections: bool = True,
    ) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        self.use_convex_hull = use_convex_hull
        self.connect_segments = connect_segments
        self.validate_connections = validate_connections
        # --- current interval state ------------------------------------ #
        self._first_point: Optional[DataPoint] = None
        self._last_point: Optional[DataPoint] = None
        self._interval_points = 0
        self._upper: Optional[List[Line]] = None
        self._lower: Optional[List[Line]] = None
        self._hulls: Optional[List[IncrementalConvexHull]] = None
        #: Per-dimension warm-start hints for the tangent binary searches —
        #: the support index that won the previous bound update.  Pure
        #: accelerator state: a stale (or missing) hint only changes how the
        #: search narrows, never its result, so the hints are not part of
        #: the serialized filter state.
        self._upper_hints: Optional[List[int]] = None
        self._lower_hints: Optional[List[int]] = None
        #: Buffered interval points as parallel time / value-vector lists
        #: (only kept when connection validation or the non-hull variant
        #: needs them).
        self._raw_times: Optional[List[float]] = None
        self._raw_values: Optional[List[np.ndarray]] = None
        #: Per-interval cache of the bounding lines' slope/intercept arrays
        #: (derived from ``_upper``/``_lower``; dropped on any bound change).
        self._bound_cache: Optional[Tuple[np.ndarray, ...]] = None
        # Raw moments for the MSE-optimal slope through an arbitrary pivot.
        self._n = 0
        self._sum_t = 0.0
        self._sum_tt = 0.0
        self._sum_x: Optional[np.ndarray] = None
        self._sum_xt: Optional[np.ndarray] = None
        # --- cross-interval state --------------------------------------- #
        self._prev: Optional[_PreviousSegment] = None
        self._previous_interval_end: float = float("-inf")
        self._connection_time: Optional[float] = None
        # --- bounded-lag (locked) state ---------------------------------- #
        self._locked_lines: Optional[List[Line]] = None
        self._locked_last_time: Optional[float] = None
        self._locked_emitted_time: float = float("-inf")
        self._locked_points_since_emit = 0

    # ------------------------------------------------------------------ #
    # Snapshot configuration
    # ------------------------------------------------------------------ #
    def _config_payload(self):
        config = super()._config_payload()
        config["use_convex_hull"] = self.use_convex_hull
        config["connect_segments"] = self.connect_segments
        config["validate_connections"] = self.validate_connections
        return config

    def _apply_config(self, config) -> None:
        super()._apply_config(config)
        self.use_convex_hull = config["use_convex_hull"]
        self.connect_segments = config["connect_segments"]
        self.validate_connections = config["validate_connections"]

    def _state_restored(self) -> None:
        # The slope/intercept cache is derived from ``_upper``/``_lower``,
        # which a restore just replaced wholesale.
        self._bound_cache = None

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._locked_lines is not None:
            self._feed_locked(point)
            return
        if self._first_point is None:
            self._begin_interval(point)
            return
        if self._upper is None:
            # Second point of the interval defines the initial bounds
            # (Algorithm 2 lines 2 / 29); it is always representable.
            self._open_bounds(self._first_point, point)
            self._absorb(point)
            return
        if self._accepts(point):
            self._update_bounds(point)
            self._absorb(point)
            return
        # Violation (Algorithm 2 line 6): close the interval, then start a new
        # one whose bounds will be defined by this point and the next.
        self._finalize_interval(connect=self.connect_segments)
        self._begin_interval(point)

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Event-driven chunk processing (identical recordings to feed()).

        Per-point Python work only happens at *events*: points that violate a
        bound or force a bound to slide onto a new support point.  All points
        in between ("silent" points) are detected with one vectorized scan of
        the remaining chunk against the current bounding lines (coefficients
        cached per interval, kernels shared with the swing filter) and
        absorbed in bulk: their hull insertions run as one vectorized
        :meth:`IncrementalConvexHull.add_many` per dimension (the hull state
        only depends on the insertion order, which is preserved) and the MSE
        moments are accumulated with strict left folds matching the per-point
        addition order bit for bit.

        Bound updates are sequential by nature (each one moves the lines the
        next acceptance test uses), so stretches where almost every point is
        an event would pay for a vectorized probe and then discard it.  The
        loop therefore runs in two modes: *probing* mode scans a
        geometrically growing lookahead window for the next event and absorbs
        the silent points in bulk; when probes keep finding their event after
        only a few points it drops into *scalar* mode.  For 1-D hull-mode
        streams scalar mode is the float-native :meth:`_scalar_run_1d` core
        (per-point semantics at a fraction of the per-point cost); other
        configurations step through :meth:`_feed_point`'s logic directly.
        Scalar mode returns to probing once a long silent streak suggests
        bulk absorption will win again.
        """
        if self.max_lag is not None or self._locked_lines is not None:
            # Bounded-lag bookkeeping is inherently sequential.
            super()._process_batch(times, values)
            return
        epsilon = self._epsilon_array()
        total = times.shape[0]
        position = 0
        window = _INITIAL_WINDOW
        fast_1d = values.shape[1] == 1 and self.use_convex_hull
        scalar_mode = fast_1d
        immediate_events = 0
        silent_streak = 0
        time_list = value_list = None
        while position < total:
            if self._first_point is None:
                self._begin_interval(DataPoint(float(times[position]), values[position]))
                position += 1
                continue
            if self._upper is None:
                point = DataPoint(float(times[position]), values[position])
                self._open_bounds(self._first_point, point)
                self._absorb(point)
                position += 1
                continue
            if scalar_mode:
                if fast_1d:
                    if time_list is None:
                        time_list = times.tolist()
                        value_list = values[:, 0].tolist()
                    position, probe = self._scalar_run_1d(
                        values, time_list, value_list, position
                    )
                    if probe:
                        scalar_mode = False
                        window = _INITIAL_WINDOW
                    continue
                point = DataPoint(float(times[position]), values[position])
                if self._accepts(point):
                    changed = self._update_bounds(point)
                    self._absorb(point)
                    if changed:
                        silent_streak = 0
                    else:
                        silent_streak += 1
                        if silent_streak >= _SCALAR_EXIT_STREAK:
                            scalar_mode = False
                            window = _INITIAL_WINDOW
                else:
                    self._finalize_interval(connect=self.connect_segments)
                    self._begin_interval(point)
                    silent_streak = 0
                position += 1
                continue
            stop = min(position + window, total)
            ts = times[position:stop]
            xs = values[position:stop]
            upper_slopes, upper_intercepts, lower_slopes, lower_intercepts = (
                self._bound_coefficients()
            )
            if fast_1d:
                # 1-D slices and scalar coefficients: same elementwise IEEE
                # arithmetic as the generic kernels, ~4x fewer dispatches.
                xs1 = xs[:, 0]
                upper_values = ts * upper_slopes[0] + upper_intercepts[0]
                lower_values = ts * lower_slopes[0] + lower_intercepts[0]
                violates, needs_update = kernels.slide_event_masks_1d(
                    xs1, upper_values, lower_values, epsilon[0]
                )
            else:
                upper_values = kernels.evaluate_lines(ts, upper_slopes, upper_intercepts)
                lower_values = kernels.evaluate_lines(ts, lower_slopes, lower_intercepts)
                violates, needs_update = kernels.slide_event_masks(
                    xs, upper_values, lower_values, epsilon
                )
            event = violates | needs_update
            run = kernels.first_true(event)
            if run > 0:
                self._absorb_run(ts[:run], xs[:run])
            if run == len(ts):
                # No event inside the window: widen the lookahead.
                position = stop
                window *= 2
                immediate_events = 0
                continue
            point = DataPoint(float(ts[run]), xs[run])
            if violates[run]:
                self._finalize_interval(connect=self.connect_segments)
                self._begin_interval(point)
            else:
                self._update_bounds(point)
                self._absorb(point)
            position += run + 1
            window = _INITIAL_WINDOW
            if fast_1d:
                if run < _SCALAR_ENTER_RUN:
                    scalar_mode = True
            elif run == 0:
                immediate_events += 1
                if immediate_events >= _SCALAR_ENTER_EVENTS:
                    scalar_mode = True
                    silent_streak = 0
                    immediate_events = 0
            else:
                immediate_events = 0

    def _scalar_run_1d(
        self,
        values: np.ndarray,
        time_list: List[float],
        value_list: List[float],
        start: int,
    ) -> Tuple[int, bool]:
        """Float-native event loop for 1-D hull-mode streams.

        Mirrors the per-point path expression for expression — the acceptance
        test of :meth:`_accepts`, the hull insertion and tangent updates of
        :meth:`_update_bounds`, the moment accumulation of :meth:`_absorb` —
        but on plain Python floats with the bounding lines unpacked into
        slope/intercept scalars, so an event-dense stretch costs interpreter
        arithmetic instead of the full ``DataPoint``/numpy-scalar machinery.
        Python floats and numpy float64 are the same IEEE-754 doubles and
        every expression keeps the reference operand order, so the recordings
        stay bit-identical.

        Requires open bounds, hull mode, one dimension and no bounded-lag
        state.  Violations finalize and restart the interval inline (the
        caller's bootstrap branch then re-opens the bounds).  Returns
        ``(next_position, switch_to_probing)``.
        """
        eps = float(self._epsilon_array()[0])
        upper_line = self._upper[0]
        lower_line = self._lower[0]
        upper_slope = float(upper_line.slope)
        upper_intercept = float(upper_line.intercept)
        lower_slope = float(lower_line.slope)
        lower_intercept = float(lower_line.intercept)
        hull = self._hulls[0]
        hull_add = hull.add
        upper_hint = self._upper_hints[0] if self._upper_hints is not None else 0
        lower_hint = self._lower_hints[0] if self._lower_hints is not None else 0
        raw_times = self._raw_times
        time_append = raw_times.append if raw_times is not None else None
        value_append = self._raw_values.append if raw_times is not None else None
        sum_t = self._sum_t
        sum_tt = self._sum_tt
        sum_x = float(self._sum_x[0])
        sum_xt = float(self._sum_xt[0])
        n = self._n
        interval_points = self._interval_points
        total = len(time_list)
        position = start
        last_index = -1
        silent_streak = 0
        switch = False
        violation_at = -1
        while position < total:
            t = time_list[position]
            x = value_list[position]
            upper_value = upper_slope * t + upper_intercept
            lower_value = lower_slope * t + lower_intercept
            if x > upper_value + eps or x < lower_value - eps:
                violation_at = position
                break
            hull_add(t, x)
            updated = False
            if x > lower_value + eps:
                chain_t, chain_x = hull.lower_chain()
                lower_line, lower_hint = max_slope_lower_tangent_search(
                    chain_t, chain_x, t, x, eps, current=lower_line, hint=lower_hint
                )
                lower_slope = float(lower_line.slope)
                lower_intercept = float(lower_line.intercept)
                updated = True
            if x < upper_value - eps:
                chain_t, chain_x = hull.upper_chain()
                upper_line, upper_hint = min_slope_upper_tangent_search(
                    chain_t, chain_x, t, x, eps, current=upper_line, hint=upper_hint
                )
                upper_slope = float(upper_line.slope)
                upper_intercept = float(upper_line.intercept)
                updated = True
            n += 1
            interval_points += 1
            sum_t += t
            sum_tt += t * t
            sum_x += x
            sum_xt += x * t
            if time_append is not None:
                time_append(t)
                value_append(x)
            last_index = position
            position += 1
            if updated:
                silent_streak = 0
            else:
                silent_streak += 1
                if silent_streak >= _PROBE_ENTER_STREAK and position < total:
                    switch = True
                    break
        # Write the scalars back into the filter state before anything that
        # reads it (finalize below, or the caller's next action).
        self._upper[0] = upper_line
        self._lower[0] = lower_line
        self._upper_hints = [upper_hint]
        self._lower_hints = [lower_hint]
        self._bound_cache = None
        self._sum_t = sum_t
        self._sum_tt = sum_tt
        self._sum_x = np.array([sum_x])
        self._sum_xt = np.array([sum_xt])
        self._n = n
        self._interval_points = interval_points
        if last_index >= 0:
            self._last_point = DataPoint(time_list[last_index], values[last_index])
        if violation_at >= 0:
            point = DataPoint(time_list[violation_at], values[violation_at])
            self._finalize_interval(connect=self.connect_segments)
            self._begin_interval(point)
            return violation_at + 1, False
        return position, switch

    def _absorb_run(self, ts: np.ndarray, xs: np.ndarray) -> None:
        """Bulk equivalent of :meth:`_absorb` for a run of silent points.

        Moments are folded left in per-point order (bit-identical, bounded
        temporaries) and the hull insertions run as one vectorized
        :meth:`IncrementalConvexHull.add_many` per dimension.
        """
        count = ts.shape[0]
        self._last_point = DataPoint(float(ts[-1]), xs[-1])
        self._interval_points += count
        self._n += count
        self._sum_t, self._sum_tt, self._sum_x, self._sum_xt = (
            kernels.fold_left_moment_sums(
                self._sum_t, self._sum_tt, self._sum_x, self._sum_xt, ts, xs
            )
        )
        if self._raw_times is not None:
            self._raw_times.extend(ts.tolist())
            if xs.shape[1] == 1:
                self._raw_values.extend(xs[:, 0].tolist())
            else:
                self._raw_values.extend(xs)
        if self._hulls is not None:
            for dimension, hull in enumerate(self._hulls):
                hull.add_many(ts, xs[:, dimension])

    def _finish_stream(self) -> None:
        if self._locked_lines is not None:
            self._close_locked_segment()
            return
        if self._first_point is None:
            self._flush_previous_segment()
            return
        if self._upper is None:
            # A lone trailing point: flush the pending segment, then record
            # the point verbatim as a degenerate segment.
            self._flush_previous_segment()
            self._emit(self._first_point.time, self._first_point.value, RecordingKind.SEGMENT_START)
            return
        lines, _ = self._finalize_interval(connect=self.connect_segments)
        end_time = self._last_point.time
        end_value = np.array([line.value_at(end_time) for line in lines])
        self._emit(end_time, end_value, RecordingKind.SEGMENT_END)

    # ------------------------------------------------------------------ #
    # Interval lifecycle
    # ------------------------------------------------------------------ #
    def _begin_interval(self, point: DataPoint) -> None:
        self._first_point = point
        self._last_point = point
        self._interval_points = 1
        self._upper = None
        self._lower = None
        self._hulls = None
        self._upper_hints = None
        self._lower_hints = None
        self._bound_cache = None
        if self.validate_connections or not self.use_convex_hull:
            # 1-D streams buffer plain floats (cheap appends in the batch hot
            # path); multi-dimensional streams buffer the value vectors.
            self._raw_times = [point.time]
            self._raw_values = [
                point.value[0] if point.value.shape[0] == 1 else point.value
            ]
        else:
            self._raw_times = None
            self._raw_values = None
        self._n = 1
        self._sum_t = point.time
        self._sum_tt = point.time * point.time
        self._sum_x = point.value.copy()
        self._sum_xt = point.value * point.time

    def _open_bounds(self, first: DataPoint, second: DataPoint) -> None:
        epsilon = self._epsilon_array()
        dimensions = first.dimensions
        self._upper = [
            Line.from_points(
                first.time, first.component(i) - epsilon[i],
                second.time, second.component(i) + epsilon[i],
            )
            for i in range(dimensions)
        ]
        self._lower = [
            Line.from_points(
                first.time, first.component(i) + epsilon[i],
                second.time, second.component(i) - epsilon[i],
            )
            for i in range(dimensions)
        ]
        if self.use_convex_hull:
            self._hulls = [IncrementalConvexHull() for _ in range(dimensions)]
            for i in range(dimensions):
                self._hulls[i].add(first.time, first.component(i))
                self._hulls[i].add(second.time, second.component(i))
            self._upper_hints = [0] * dimensions
            self._lower_hints = [0] * dimensions
        else:
            self._hulls = None
            self._upper_hints = None
            self._lower_hints = None
        self._bound_cache = None

    def _absorb(self, point: DataPoint) -> None:
        """Account for an accepted point (moments, buffers, lag bookkeeping)."""
        self._last_point = point
        self._interval_points += 1
        self._n += 1
        self._sum_t += point.time
        self._sum_tt += point.time * point.time
        self._sum_x = self._sum_x + point.value
        self._sum_xt = self._sum_xt + point.value * point.time
        if self._raw_times is not None:
            self._raw_times.append(point.time)
            self._raw_values.append(
                point.value[0] if point.value.shape[0] == 1 else point.value
            )
        if self.max_lag is not None and self._interval_points >= self.max_lag:
            self._lock_segment()

    def _accepts(self, point: DataPoint) -> bool:
        epsilon = self._epsilon_array()
        for i in range(point.dimensions):
            value = point.component(i)
            if value > self._upper[i].value_at(point.time) + epsilon[i]:
                return False
            if value < self._lower[i].value_at(point.time) - epsilon[i]:
                return False
        return True

    def _update_bounds(self, point: DataPoint) -> bool:
        """Slide the bounds so they stay extremal after accepting ``point``.

        With the hull optimization the replacement bound is found by an
        O(log m_H) tangent binary search over the relevant hull chain; the
        non-optimized variant scans every buffered interval point.

        Returns whether any bounding line actually moved (used by the batch
        path to decide when a dense stretch of update events has ended).
        """
        epsilon = self._epsilon_array()
        changed = False
        if self.use_convex_hull and self._upper_hints is None:
            # Restored snapshots predate the hint lists; rebuild them cold.
            self._upper_hints = [0] * point.dimensions
            self._lower_hints = [0] * point.dimensions
        for i in range(point.dimensions):
            value = point.component(i)
            if self.use_convex_hull:
                hull = self._hulls[i]
                hull.add(point.time, value)
                if value > self._lower[i].value_at(point.time) + epsilon[i]:
                    chain_t, chain_x = hull.lower_chain()
                    self._lower[i], self._lower_hints[i] = max_slope_lower_tangent_search(
                        chain_t, chain_x, point.time, value, epsilon[i],
                        current=self._lower[i], hint=self._lower_hints[i],
                    )
                    changed = True
                if value < self._upper[i].value_at(point.time) - epsilon[i]:
                    chain_t, chain_x = hull.upper_chain()
                    self._upper[i], self._upper_hints[i] = min_slope_upper_tangent_search(
                        chain_t, chain_x, point.time, value, epsilon[i],
                        current=self._upper[i], hint=self._upper_hints[i],
                    )
                    changed = True
                continue
            support = self._support_points(i)
            if value > self._lower[i].value_at(point.time) + epsilon[i]:
                self._lower[i] = max_slope_lower_line(
                    support, point.time, value, epsilon[i], current=self._lower[i]
                )
                changed = True
            if value < self._upper[i].value_at(point.time) - epsilon[i]:
                self._upper[i] = min_slope_upper_line(
                    support, point.time, value, epsilon[i], current=self._upper[i]
                )
                changed = True
        if changed:
            self._bound_cache = None
        return changed

    def _bound_coefficients(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Slope/intercept arrays of the current bounds, cached per interval."""
        if self._bound_cache is None:
            self._bound_cache = (
                np.array([line.slope for line in self._upper]),
                np.array([line.intercept for line in self._upper]),
                np.array([line.slope for line in self._lower]),
                np.array([line.intercept for line in self._lower]),
            )
        return self._bound_cache

    def _raw_value_matrix(self) -> np.ndarray:
        """Buffered interval values as an ``(n, d)`` array."""
        values = np.asarray(self._raw_values)
        if values.ndim == 1:
            return values.reshape(-1, 1)
        return values

    def _support_points(self, dimension: int) -> Sequence[Tuple[float, float]]:
        if self.use_convex_hull:
            return self._hulls[dimension].vertices()
        if self._dimensions == 1:
            return list(zip(self._raw_times, self._raw_values))
        return [
            (t, float(v[dimension]))
            for t, v in zip(self._raw_times, self._raw_values)
        ]

    # ------------------------------------------------------------------ #
    # Recording mechanism
    # ------------------------------------------------------------------ #
    def _finalize_interval(self, connect: bool) -> Tuple[List[Line], bool]:
        """Close the current interval: decide ``gᵏ`` and emit its start.

        Returns the per-dimension segment lines and whether the segment was
        connected to the previous one.
        """
        apexes = self._apex_points()
        connected = False
        lines: Optional[List[Line]] = None
        if connect and self._prev is not None:
            lines = self._attempt_connection(apexes)
            connected = lines is not None
        if lines is None:
            lines = self._standalone_segment(apexes)
            self._flush_previous_segment()
            start_time = self._first_point.time
            start_value = np.array([line.value_at(start_time) for line in lines])
            self._emit(start_time, start_value, RecordingKind.SEGMENT_START)
            segment_start = start_time
        else:
            # _attempt_connection already emitted the shared recording.
            segment_start = self._connection_time
        self._prev = _PreviousSegment(
            lines=lines,
            upper=list(self._upper),
            lower=list(self._lower),
            start_time=segment_start,
            end_time=self._last_point.time,
            min_connection_time=max(segment_start, self._previous_interval_end),
            points=(
                (np.asarray(self._raw_times), self._raw_value_matrix())
                if self._raw_times is not None
                else None
            ),
        )
        self._previous_interval_end = self._last_point.time
        return lines, connected

    def _apex_points(self) -> List[Tuple[float, float]]:
        """Per-dimension intersection ``zᵢ`` of the final bounds."""
        apexes = []
        for i in range(self._dimensions):
            point = self._upper[i].intersection_point(self._lower[i])
            if point is None:
                # Degenerate (ε = 0): the bounds coincide; anchor at the
                # interval's first point, which lies on both lines.
                t = self._first_point.time
                point = (t, self._upper[i].value_at(t))
            apexes.append(point)
        return apexes

    def _standalone_segment(self, apexes: List[Tuple[float, float]]) -> List[Line]:
        """Build ``gᵏ`` through each ``zᵢ`` with the clamped MSE-optimal slope."""
        lines = []
        for i in range(self._dimensions):
            t_z, x_z = apexes[i]
            slope = self._clamped_mse_slope(i, t_z, x_z, self._upper[i].slope, self._lower[i].slope)
            lines.append(Line.from_point_slope(t_z, x_z, slope))
        return lines

    def _clamped_mse_slope(
        self, dimension: int, pivot_time: float, pivot_value: float, slope_a: float, slope_b: float
    ) -> float:
        """MSE-optimal slope of a line through the pivot, clamped to [a, b]."""
        low, high = (slope_a, slope_b) if slope_a <= slope_b else (slope_b, slope_a)
        denominator = self._sum_tt - 2.0 * pivot_time * self._sum_t + self._n * pivot_time * pivot_time
        if denominator <= 0.0:
            return (low + high) / 2.0
        numerator = (
            float(self._sum_xt[dimension])
            - pivot_value * self._sum_t
            - pivot_time * float(self._sum_x[dimension])
            + self._n * pivot_value * pivot_time
        )
        return float(np.clip(numerator / denominator, low, high))

    # ------------------------------------------------------------------ #
    # Connection
    # ------------------------------------------------------------------ #
    def _attempt_connection(self, apexes: List[Tuple[float, float]]) -> Optional[List[Line]]:
        """Try to join ``gᵏ`` to ``gᵏ⁻¹``; emit the shared recording on success.

        Two joining opportunities are considered:

        1. a *gap* connection — the two segments meet between the last point
           of interval k-1 and the first point of interval k, so neither
           segment has to take over points it was not built for (this is the
           ``t⁽ᵏ⁻¹⁾ > t_{jᵏ⁻¹}`` case acknowledged in the proof of Lemma 4.4);
        2. a *tail* connection inside interval k-1 following Lemma 4.4, where
           ``gᵏ`` absorbs the tail of the previous interval.
        """
        lines = self._attempt_gap_connection(apexes)
        if lines is not None:
            return lines
        return self._attempt_tail_connection(apexes)

    def _attempt_gap_connection(self, apexes: List[Tuple[float, float]]) -> Optional[List[Line]]:
        """Join the segments between the two intervals when geometry allows it."""
        prev = self._prev
        window_low = max(prev.end_time, prev.min_connection_time)
        window_high = self._first_point.time
        if window_high < window_low:
            return None
        feasible = [(window_low, window_high)]
        preferred_times = []
        for i in range(self._dimensions):
            admissible = self._admissible_connection_times(i, apexes[i], prev.lines[i])
            feasible = _intersect_interval_sets(feasible, admissible)
            if not feasible:
                return None
            preferred_times.append(self._preferred_connection_time(i, apexes[i], prev.lines[i]))
        preferences = [t for t in preferred_times if t is not None]
        target = float(np.mean(preferences)) if preferences else (window_low + window_high) / 2.0
        connection_time = _closest_in_intervals(target, feasible)
        lines = []
        for i in range(self._dimensions):
            t_z, x_z = apexes[i]
            g_prev = prev.lines[i]
            joined = _safe_line(t_z, x_z, connection_time, g_prev.value_at(connection_time))
            if joined is None:
                # The connection time coincides with the apex: the previous
                # segment already passes through it, so reuse its slope
                # clamped into the admissible range.
                low, high = sorted((self._upper[i].slope, self._lower[i].slope))
                joined = Line.from_point_slope(t_z, x_z, float(np.clip(g_prev.slope, low, high)))
            lines.append(joined)
        value = np.array([prev.lines[i].value_at(connection_time) for i in range(self._dimensions)])
        self._emit(connection_time, value, RecordingKind.SEGMENT_END)
        self._connection_time = connection_time
        return lines

    def _admissible_connection_times(
        self, dimension: int, apex: Tuple[float, float], g_prev: Line
    ) -> List[Tuple[float, float]]:
        """Times where ``gᵏ`` through the apex can meet ``gᵏ⁻¹`` admissibly.

        A connection at time ``t`` forces ``gᵏ`` to be the line through the
        apex ``z`` and ``(t, gᵏ⁻¹(t))``; its slope must lie within the
        interval spanned by the current bounds' slopes for ``gᵏ`` to stay
        within ε of the interval's points.  The returned list contains at most
        two closed intervals (``±inf`` ends allowed).
        """
        t_z, x_z = apex
        low, high = sorted((self._upper[dimension].slope, self._lower[dimension].slope))
        slope_prev = g_prev.slope
        gap = g_prev.value_at(t_z) - x_z
        infinity = float("inf")
        if gap == 0.0:
            # The previous segment passes through the apex: connecting at any
            # time keeps g^k on g^{k-1} only if that slope is admissible;
            # otherwise the only meeting point is the apex itself.
            if low <= slope_prev <= high:
                return [(-infinity, infinity)]
            return [(t_z, t_z)]

        def meet(slope: float) -> Optional[float]:
            if slope == slope_prev:
                return None
            return t_z + gap / (slope - slope_prev)

        at_low, at_high = meet(low), meet(high)
        if slope_prev < low or slope_prev > high:
            lo, hi = sorted((at_low, at_high))
            return [(lo, hi)]
        if slope_prev == low:
            return [(at_high, infinity)] if gap > 0 else [(-infinity, at_high)]
        if slope_prev == high:
            return [(at_low, infinity)] if gap < 0 else [(-infinity, at_low)]
        if gap > 0:
            return [(-infinity, at_low), (at_high, infinity)]
        return [(-infinity, at_high), (at_low, infinity)]

    def _preferred_connection_time(
        self, dimension: int, apex: Tuple[float, float], g_prev: Line
    ) -> Optional[float]:
        """Where the MSE-optimal admissible segment would meet ``gᵏ⁻¹``."""
        t_z, x_z = apex
        slope = self._clamped_mse_slope(
            dimension, t_z, x_z, self._upper[dimension].slope, self._lower[dimension].slope
        )
        candidate = Line.from_point_slope(t_z, x_z, slope)
        return candidate.intersection_time(g_prev)

    def _attempt_tail_connection(self, apexes: List[Tuple[float, float]]) -> Optional[List[Line]]:
        """Join ``gᵏ`` to ``gᵏ⁻¹`` inside interval k-1 (Lemma 4.4)."""
        prev = self._prev
        alpha, beta = float("-inf"), float("inf")
        for i in range(self._dimensions):
            per_dim = self._connection_window(i, apexes[i], prev)
            if per_dim is None:
                return None
            lo, hi = per_dim
            alpha, beta = max(alpha, lo), min(beta, hi)
        alpha = max(alpha, prev.min_connection_time)
        beta = min(beta, prev.end_time)
        if not np.isfinite(alpha) or not np.isfinite(beta) or alpha > beta:
            return None
        if beta <= prev.start_time:
            return None
        alpha = max(alpha, np.nextafter(prev.start_time, np.inf))
        if alpha > beta:
            return None

        # Adjust the bounds so every admissible slope meets g^{k-1} within
        # [alpha, beta] (Algorithm 2 lines 11-16), then pick the connection
        # time preferred by the per-dimension MSE optima.
        preferred_times = []
        for i in range(self._dimensions):
            t_z, x_z = apexes[i]
            g_prev = prev.lines[i]
            bound_at_alpha = _safe_line(t_z, x_z, alpha, g_prev.value_at(alpha))
            bound_at_beta = _safe_line(t_z, x_z, beta, g_prev.value_at(beta))
            if bound_at_alpha is None or bound_at_beta is None:
                preferred_times.append((alpha + beta) / 2.0)
                continue
            slope = self._clamped_mse_slope(
                i, t_z, x_z, bound_at_alpha.slope, bound_at_beta.slope
            )
            candidate = Line.from_point_slope(t_z, x_z, slope)
            crossing = candidate.intersection_time(g_prev)
            if crossing is None or not (alpha <= crossing <= beta):
                crossing = (alpha + beta) / 2.0
            preferred_times.append(crossing)

        connection_time = float(np.clip(np.mean(preferred_times), alpha, beta))
        lines = []
        for i in range(self._dimensions):
            t_z, x_z = apexes[i]
            g_prev = prev.lines[i]
            joined = _safe_line(t_z, x_z, connection_time, g_prev.value_at(connection_time))
            if joined is None:
                joined = Line.from_point_slope(t_z, x_z, g_prev.slope)
            lines.append(joined)

        if not self._connection_is_safe(lines, connection_time, prev):
            return None

        value = np.array([prev.lines[i].value_at(connection_time) for i in range(self._dimensions)])
        self._emit(connection_time, value, RecordingKind.SEGMENT_END)
        self._connection_time = connection_time
        return lines

    def _connection_window(
        self, dimension: int, apex: Tuple[float, float], prev: _PreviousSegment
    ) -> Optional[Tuple[float, float]]:
        """Per-dimension admissible connection window [αᵢ, βᵢ] (Lemma 4.4)."""
        t_z, x_z = apex
        g_prev = prev.lines[dimension]
        upper = self._upper[dimension]
        lower = self._lower[dimension]
        prev_upper = prev.upper[dimension]
        prev_lower = prev.lower[dimension]
        end = prev.end_time
        gap = g_prev.value_at(t_z) - x_z

        if gap >= 0.0:
            # Apex below (or on) g^{k-1}: the connection window's upper end is
            # where g^{k-1} meets lᵢᵏ; its lower end is where g^{k-1} meets
            # uᵢᵏ and the guard line sᵢᵏ⁻¹ (Lemma 4.4).
            if lower.value_at(end) <= prev_lower.value_at(end):
                return None
            f = g_prev.intersection_time(lower)
            if f is None or f >= end:
                return None
            c = g_prev.intersection_time(upper)
            if c is None and g_prev.value_at(end) < upper.value_at(end):
                # Parallel and strictly below the upper bound: g^{k-1} never
                # enters the admissible cone from that side.
                return None
            guard = _safe_line(t_z, x_z, end, prev_lower.value_at(end))
            d = g_prev.intersection_time(guard) if guard is not None else None
            if guard is not None and d is None and g_prev.value_at(end) < guard.value_at(end):
                return None
            lo_candidates = [value for value in (c, d) if value is not None]
            lo = max(lo_candidates) if lo_candidates else float("-inf")
            return (lo, f)

        # Apex above g^{k-1}: mirror image.
        if upper.value_at(end) >= prev_upper.value_at(end):
            return None
        f = g_prev.intersection_time(upper)
        if f is None or f >= end:
            return None
        c = g_prev.intersection_time(lower)
        if c is None and g_prev.value_at(end) > lower.value_at(end):
            return None
        guard = _safe_line(t_z, x_z, end, prev_upper.value_at(end))
        d = g_prev.intersection_time(guard) if guard is not None else None
        if guard is not None and d is None and g_prev.value_at(end) > guard.value_at(end):
            return None
        lo_candidates = [value for value in (c, d) if value is not None]
        lo = max(lo_candidates) if lo_candidates else float("-inf")
        return (lo, f)

    def _connection_is_safe(
        self, lines: List[Line], connection_time: float, prev: _PreviousSegment
    ) -> bool:
        """Verify the joined segment against the buffered interval points.

        Only active when ``validate_connections`` is set.  The joined segment
        ``gᵏ`` takes over the tail of interval k-1 (points later than the
        connection time) and all of interval k, so both sets are re-checked —
        in one vectorized kernel sweep instead of a per-point loop.
        """
        if not self.validate_connections or prev.points is None or self._raw_times is None:
            return True
        epsilon = self._epsilon_array()
        prev_times, prev_values = prev.points
        tail = prev_times > connection_time
        times = np.concatenate([prev_times[tail], np.asarray(self._raw_times)])
        if times.size == 0:
            return True
        values = np.concatenate(
            [prev_values[tail], self._raw_value_matrix()], axis=0
        )
        slopes = np.array([line.slope for line in lines])
        intercepts = np.array([line.intercept for line in lines])
        within = kernels.within_epsilon_mask(
            times, values, slopes, intercepts, epsilon, _VALIDATION_SLACK
        )
        return bool(within.all())

    def _flush_previous_segment(self) -> None:
        """Emit the pending end recording of ``gᵏ⁻¹`` (disconnected case)."""
        if self._prev is None:
            return
        end_time = self._prev.end_time
        value = np.array([line.value_at(end_time) for line in self._prev.lines])
        self._emit(end_time, value, RecordingKind.SEGMENT_END)
        self._prev = None

    # ------------------------------------------------------------------ #
    # Bounded-lag (locked) mode
    # ------------------------------------------------------------------ #
    def _lock_segment(self) -> None:
        """Commit to the MSE-optimal candidate segment (paper §4.3 / §3.3)."""
        lines, _ = self._finalize_interval(connect=self.connect_segments)
        self._locked_lines = lines
        self._locked_last_time = self._last_point.time
        self._locked_emitted_time = self._last_point.time
        # Update the receiver immediately: it now knows the committed segment
        # up to the lock point and can extrapolate it.
        value = np.array([line.value_at(self._last_point.time) for line in lines])
        self._emit(self._last_point.time, value, RecordingKind.SEGMENT_END)
        self._locked_points_since_emit = 0
        # The locked segment can no longer be moved, so the next interval must
        # not try to connect to it at an earlier time than its eventual end.
        self._prev = None
        self._first_point = None
        self._upper = None
        self._lower = None
        self._bound_cache = None

    def _feed_locked(self, point: DataPoint) -> None:
        epsilon = self._epsilon_array()
        within = all(
            abs(self._locked_lines[i].value_at(point.time) - point.component(i)) <= epsilon[i]
            for i in range(point.dimensions)
        )
        if within:
            self._locked_last_time = point.time
            self._locked_points_since_emit += 1
            if self.max_lag is not None and self._locked_points_since_emit >= self.max_lag:
                value = np.array([line.value_at(point.time) for line in self._locked_lines])
                self._emit(point.time, value, RecordingKind.SEGMENT_END)
                self._locked_emitted_time = point.time
                self._locked_points_since_emit = 0
            return
        self._close_locked_segment()
        self._begin_interval(point)

    def _close_locked_segment(self) -> None:
        end_time = self._locked_last_time
        if end_time > self._locked_emitted_time:
            value = np.array([line.value_at(end_time) for line in self._locked_lines])
            self._emit(end_time, value, RecordingKind.SEGMENT_END)
        self._locked_lines = None
        self._locked_last_time = None
        self._previous_interval_end = end_time
