"""Core value types shared by every filter.

The paper models a stream as a sequence of points ``(t_j, X_j)`` where ``X_j``
is a d-dimensional vector, the filter output as a sequence of *recordings*
(the endpoints of the generated line segments), and the approximation itself
as a sequence of *segments*.  This module defines small immutable containers
for each of those concepts plus the :class:`FilterResult` summary returned by
the convenience entry points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "DataPoint",
    "Recording",
    "RecordingKind",
    "Segment",
    "FilterResult",
    "as_value_vector",
]


def as_value_vector(value) -> np.ndarray:
    """Coerce a scalar or sequence into a 1-D float vector.

    Scalars become vectors of length one so that single-dimensional streams
    and multi-dimensional streams share one code path.

    Raises:
        ValueError: If the value is not a scalar or 1-D sequence of numbers.
    """
    array = np.atleast_1d(np.asarray(value, dtype=float))
    if array.ndim != 1:
        raise ValueError(f"signal values must be scalars or 1-D vectors, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class DataPoint:
    """A single observation ``(t, X)`` of the monitored signal."""

    time: float
    value: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", as_value_vector(self.value))

    @property
    def dimensions(self) -> int:
        """Number of signal dimensions."""
        return int(self.value.shape[0])

    def component(self, i: int) -> float:
        """Return the value of dimension ``i``."""
        return float(self.value[i])

    def as_tuple(self) -> Tuple[float, Tuple[float, ...]]:
        """Return ``(t, (x1, ..., xd))`` as plain Python values."""
        return self.time, tuple(float(v) for v in self.value)


class RecordingKind(enum.Enum):
    """Role a recording plays in the transmitted approximation.

    ``SEGMENT_START`` opens a new (disconnected) segment, ``SEGMENT_END``
    closes the current segment — and, for connected approximations, also opens
    the next one.  ``HOLD`` is used by piece-wise constant filters: the value
    is held from the recording's time until the next recording.
    """

    SEGMENT_START = "segment_start"
    SEGMENT_END = "segment_end"
    HOLD = "hold"


@dataclass(frozen=True)
class Recording:
    """A transmitted point ``(t, X)`` plus its role in the approximation."""

    time: float
    value: np.ndarray
    kind: RecordingKind

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", as_value_vector(self.value))

    @property
    def dimensions(self) -> int:
        """Number of signal dimensions."""
        return int(self.value.shape[0])

    def component(self, i: int) -> float:
        """Return the value of dimension ``i``."""
        return float(self.value[i])


@dataclass(frozen=True)
class Segment:
    """One line segment of the piece-wise linear approximation.

    The segment covers the closed time interval ``[start_time, end_time]`` and
    linearly interpolates between ``start_value`` and ``end_value`` in every
    dimension.  ``connected_to_previous`` indicates that ``start_time`` /
    ``start_value`` coincide with the previous segment's endpoint and hence
    cost no extra recording.
    """

    start_time: float
    start_value: np.ndarray
    end_time: float
    end_value: np.ndarray
    connected_to_previous: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_value", as_value_vector(self.start_value))
        object.__setattr__(self, "end_value", as_value_vector(self.end_value))
        if self.end_time < self.start_time:
            raise ValueError(
                f"segment end time {self.end_time!r} precedes start time {self.start_time!r}"
            )

    @property
    def dimensions(self) -> int:
        """Number of signal dimensions."""
        return int(self.start_value.shape[0])

    @property
    def duration(self) -> float:
        """Length of the covered time interval."""
        return self.end_time - self.start_time

    def slope(self) -> np.ndarray:
        """Per-dimension slope ``dX/dt`` (zero for zero-duration segments)."""
        if self.duration == 0.0:
            return np.zeros_like(self.start_value)
        return (self.end_value - self.start_value) / self.duration

    def value_at(self, t: float) -> np.ndarray:
        """Evaluate the segment (extrapolating linearly outside its span)."""
        if self.duration == 0.0:
            return self.start_value.copy()
        fraction = (t - self.start_time) / self.duration
        return self.start_value + fraction * (self.end_value - self.start_value)

    def covers(self, t: float) -> bool:
        """Return ``True`` when ``t`` lies within the segment's time span."""
        return self.start_time <= t <= self.end_time


@dataclass
class FilterResult:
    """Summary of a full filtering run over a finite stream.

    Attributes:
        recordings: The transmitted recordings, in emission order.
        points_processed: Number of data points consumed from the stream.
        dimensions: Dimensionality of the signal (0 for an empty stream).
    """

    recordings: List[Recording] = field(default_factory=list)
    points_processed: int = 0
    dimensions: int = 0

    @property
    def recording_count(self) -> int:
        """Number of recordings made (the paper's compression denominator)."""
        return len(self.recordings)

    @property
    def compression_ratio(self) -> float:
        """``points_processed / recording_count`` (∞ when nothing was recorded)."""
        if not self.recordings:
            return float("inf") if self.points_processed else 0.0
        return self.points_processed / len(self.recordings)

    def recording_times(self) -> List[float]:
        """Return the times of all recordings, in order."""
        return [record.time for record in self.recordings]

    def recording_matrix(self) -> np.ndarray:
        """Return recordings as an ``(n, 1 + d)`` array of ``[t, x1..xd]`` rows."""
        if not self.recordings:
            return np.empty((0, 1 + max(self.dimensions, 1)))
        rows = [np.concatenate(([record.time], record.value)) for record in self.recordings]
        return np.vstack(rows)


def points_from_arrays(times: Iterable[float], values: Iterable) -> List[DataPoint]:
    """Build a list of :class:`DataPoint` from parallel time/value sequences."""
    return [DataPoint(float(t), v) for t, v in zip(times, values)]


def ensure_points(stream: Iterable) -> List[DataPoint]:
    """Coerce an iterable of points into :class:`DataPoint` instances.

    Accepted element forms: :class:`DataPoint`, ``(t, value)`` tuples where
    ``value`` is a scalar or vector.
    """
    points: List[DataPoint] = []
    for element in stream:
        if isinstance(element, DataPoint):
            points.append(element)
        else:
            t, value = element
            points.append(DataPoint(float(t), value))
    return points


def split_connected_runs(segments: Sequence[Segment]) -> List[List[Segment]]:
    """Group segments into maximal runs of connected segments."""
    runs: List[List[Segment]] = []
    for segment in segments:
        if segment.connected_to_previous and runs:
            runs[-1].append(segment)
        else:
            runs.append([segment])
    return runs
