"""Cache filters — piece-wise constant approximation baselines (paper §2.2).

A cache filter predicts that the next data point has (approximately) the same
value as the representative of the current filtering interval.  Three
representative policies are provided, matching the variants discussed in the
paper:

* ``"first"`` — the representative is the first point of the interval
  (Olston et al. [21]); a point is filtered out while it stays within ε of
  that first value.
* ``"midrange"`` — the representative is the midrange (mean of running min and
  max) of the points in the interval (Lazaridis & Mehrotra [18]); a point is
  accepted while the interval's value spread stays within ``2·ε``.  This is
  the optimal online piece-wise constant approximation.
* ``"mean"`` — the representative is the running mean; a point is accepted
  only if every point of the extended interval stays within ε of the new mean.

All variants emit one :class:`~repro.core.types.Recording` per interval with
``kind=HOLD``: the receiver holds the value from the recording's time until
the next recording.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind

__all__ = ["CacheFilter", "MidrangeCacheFilter", "MeanCacheFilter"]

_VALID_MODES = ("first", "midrange", "mean")

#: Initial lookahead (in points) of the batch scan; doubled while no
#: rejection is found, reset after each interval.
_INITIAL_WINDOW = 64


class CacheFilter(StreamFilter):
    """Piece-wise constant filter with a configurable representative policy.

    Args:
        epsilon: Precision width specification (see :class:`StreamFilter`).
        mode: Representative policy — ``"first"`` (default), ``"midrange"`` or
            ``"mean"``.
        max_lag: Optional bound on the number of points per filtering interval;
            reaching it forces the current interval to be closed so the
            receiver is updated.
    """

    name = "cache"
    family = "constant"
    state_version = 1
    _STATE_FIELDS = (
        "_interval_start_time",
        "_interval_min",
        "_interval_max",
        "_interval_sum",
        "_interval_first",
        "_interval_count",
    )

    def __init__(self, epsilon, mode: str = "first", max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        if mode not in _VALID_MODES:
            raise ValueError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
        self.mode = mode
        # State of the current filtering interval.
        self._interval_start_time: Optional[float] = None
        self._interval_min: Optional[np.ndarray] = None
        self._interval_max: Optional[np.ndarray] = None
        self._interval_sum: Optional[np.ndarray] = None
        self._interval_first: Optional[np.ndarray] = None
        self._interval_count = 0

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._interval_count == 0:
            self._open_interval(point)
            return
        if self._accepts(point) and not self._lag_exceeded():
            self._extend_interval(point)
        else:
            self._close_interval()
            self._open_interval(point)

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized chunk processing (identical recordings to feed()).

        All three acceptance policies only depend on running prefix state
        (first value, running min/max, running sum), so the would-be state
        after each candidate point is computed with inclusive prefix scans
        (``np.minimum.accumulate`` / ``np.cumsum`` — sequential, matching the
        per-point update order bit for bit) and the first rejected point is
        found without a Python loop.  The loop below runs once per interval
        (plus once per growth of the geometric lookahead window).
        """
        if self.max_lag is not None:
            super()._process_batch(times, values)
            return
        epsilon = self._epsilon_array()
        total = times.shape[0]
        position = 0
        window = _INITIAL_WINDOW
        while position < total:
            if self._interval_count == 0:
                self._open_interval(DataPoint(float(times[position]), values[position]))
                position += 1
                continue
            stop = min(position + window, total)
            xs = values[position:stop]
            # Inclusive prefixes: row k is the interval state *after* also
            # accepting candidate point k (what _accepts inspects).
            running_min = np.minimum.accumulate(
                np.vstack([self._interval_min[None, :], xs]), axis=0
            )[1:]
            running_max = np.maximum.accumulate(
                np.vstack([self._interval_max[None, :], xs]), axis=0
            )[1:]
            running_sum = np.cumsum(np.vstack([self._interval_sum[None, :], xs]), axis=0)[1:]
            if self.mode == "first":
                accepted = np.all(np.abs(xs - self._interval_first) <= epsilon, axis=1)
            elif self.mode == "midrange":
                accepted = np.all(running_max - running_min <= 2.0 * epsilon, axis=1)
            else:
                counts = self._interval_count + 1 + np.arange(xs.shape[0])
                running_mean = running_sum / counts[:, None]
                accepted = np.all(running_max - running_mean <= epsilon, axis=1) & np.all(
                    running_mean - running_min <= epsilon, axis=1
                )
            run = len(accepted) if bool(accepted.all()) else int(np.argmin(accepted))
            if run > 0:
                self._interval_min = running_min[run - 1].copy()
                self._interval_max = running_max[run - 1].copy()
                self._interval_sum = running_sum[run - 1].copy()
                self._interval_count += run
            if run == len(accepted):
                position = stop
                window *= 2
                continue
            self._close_interval()
            self._open_interval(DataPoint(float(times[position + run]), values[position + run]))
            position += run + 1
            window = _INITIAL_WINDOW

    def _finish_stream(self) -> None:
        if self._interval_count > 0:
            self._close_interval()

    # ------------------------------------------------------------------ #
    # Interval management
    # ------------------------------------------------------------------ #
    def _open_interval(self, point: DataPoint) -> None:
        self._interval_start_time = point.time
        self._interval_first = point.value.copy()
        self._interval_min = point.value.copy()
        self._interval_max = point.value.copy()
        self._interval_sum = point.value.copy()
        self._interval_count = 1

    def _extend_interval(self, point: DataPoint) -> None:
        np.minimum(self._interval_min, point.value, out=self._interval_min)
        np.maximum(self._interval_max, point.value, out=self._interval_max)
        self._interval_sum = self._interval_sum + point.value
        self._interval_count += 1

    def _close_interval(self) -> None:
        self._emit(self._interval_start_time, self._representative(), RecordingKind.HOLD)
        self._interval_count = 0

    def _lag_exceeded(self) -> bool:
        return self.max_lag is not None and self._interval_count >= self.max_lag

    # ------------------------------------------------------------------ #
    # Snapshot configuration
    # ------------------------------------------------------------------ #
    def _config_payload(self):
        config = super()._config_payload()
        if type(self) is CacheFilter:
            # The named subclasses pin their mode in __init__ and do not
            # accept it as a keyword, so only the base class records it.
            config["mode"] = self.mode
        return config

    def _apply_config(self, config) -> None:
        super()._apply_config({k: config[k] for k in ("epsilon", "max_lag")})
        self.mode = config.get("mode", self.mode)

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def _representative(self) -> np.ndarray:
        if self.mode == "first":
            return self._interval_first
        if self.mode == "midrange":
            return (self._interval_min + self._interval_max) / 2.0
        return self._interval_sum / self._interval_count

    def _accepts(self, point: DataPoint) -> bool:
        epsilon = self._epsilon_array()
        if self.mode == "first":
            return bool(np.all(np.abs(point.value - self._interval_first) <= epsilon))
        new_min = np.minimum(self._interval_min, point.value)
        new_max = np.maximum(self._interval_max, point.value)
        if self.mode == "midrange":
            return bool(np.all(new_max - new_min <= 2.0 * epsilon))
        # Mean mode: every point (captured by the running min/max envelope)
        # must stay within ε of the would-be new mean.
        new_mean = (self._interval_sum + point.value) / (self._interval_count + 1)
        return bool(
            np.all(new_max - new_mean <= epsilon) and np.all(new_mean - new_min <= epsilon)
        )


class MidrangeCacheFilter(CacheFilter):
    """Cache filter using the midrange representative (optimal PCA of [18])."""

    name = "cache-midrange"

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, mode="midrange", max_lag=max_lag)


class MeanCacheFilter(CacheFilter):
    """Cache filter using the running-mean representative ([18] variant)."""

    name = "cache-mean"

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, mode="mean", max_lag=max_lag)
