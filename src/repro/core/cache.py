"""Cache filters — piece-wise constant approximation baselines (paper §2.2).

A cache filter predicts that the next data point has (approximately) the same
value as the representative of the current filtering interval.  Three
representative policies are provided, matching the variants discussed in the
paper:

* ``"first"`` — the representative is the first point of the interval
  (Olston et al. [21]); a point is filtered out while it stays within ε of
  that first value.
* ``"midrange"`` — the representative is the midrange (mean of running min and
  max) of the points in the interval (Lazaridis & Mehrotra [18]); a point is
  accepted while the interval's value spread stays within ``2·ε``.  This is
  the optimal online piece-wise constant approximation.
* ``"mean"`` — the representative is the running mean; a point is accepted
  only if every point of the extended interval stays within ε of the new mean.

All variants emit one :class:`~repro.core.types.Recording` per interval with
``kind=HOLD``: the receiver holds the value from the recording's time until
the next recording.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind

__all__ = ["CacheFilter", "MidrangeCacheFilter", "MeanCacheFilter"]

_VALID_MODES = ("first", "midrange", "mean")


class CacheFilter(StreamFilter):
    """Piece-wise constant filter with a configurable representative policy.

    Args:
        epsilon: Precision width specification (see :class:`StreamFilter`).
        mode: Representative policy — ``"first"`` (default), ``"midrange"`` or
            ``"mean"``.
        max_lag: Optional bound on the number of points per filtering interval;
            reaching it forces the current interval to be closed so the
            receiver is updated.
    """

    name = "cache"
    family = "constant"

    def __init__(self, epsilon, mode: str = "first", max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        if mode not in _VALID_MODES:
            raise ValueError(f"mode must be one of {_VALID_MODES}, got {mode!r}")
        self.mode = mode
        # State of the current filtering interval.
        self._interval_start_time: Optional[float] = None
        self._interval_min: Optional[np.ndarray] = None
        self._interval_max: Optional[np.ndarray] = None
        self._interval_sum: Optional[np.ndarray] = None
        self._interval_first: Optional[np.ndarray] = None
        self._interval_count = 0

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._interval_count == 0:
            self._open_interval(point)
            return
        if self._accepts(point) and not self._lag_exceeded():
            self._extend_interval(point)
        else:
            self._close_interval()
            self._open_interval(point)

    def _finish_stream(self) -> None:
        if self._interval_count > 0:
            self._close_interval()

    # ------------------------------------------------------------------ #
    # Interval management
    # ------------------------------------------------------------------ #
    def _open_interval(self, point: DataPoint) -> None:
        self._interval_start_time = point.time
        self._interval_first = point.value.copy()
        self._interval_min = point.value.copy()
        self._interval_max = point.value.copy()
        self._interval_sum = point.value.copy()
        self._interval_count = 1

    def _extend_interval(self, point: DataPoint) -> None:
        np.minimum(self._interval_min, point.value, out=self._interval_min)
        np.maximum(self._interval_max, point.value, out=self._interval_max)
        self._interval_sum = self._interval_sum + point.value
        self._interval_count += 1

    def _close_interval(self) -> None:
        self._emit(self._interval_start_time, self._representative(), RecordingKind.HOLD)
        self._interval_count = 0

    def _lag_exceeded(self) -> bool:
        return self.max_lag is not None and self._interval_count >= self.max_lag

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def _representative(self) -> np.ndarray:
        if self.mode == "first":
            return self._interval_first
        if self.mode == "midrange":
            return (self._interval_min + self._interval_max) / 2.0
        return self._interval_sum / self._interval_count

    def _accepts(self, point: DataPoint) -> bool:
        epsilon = self._epsilon_array()
        if self.mode == "first":
            return bool(np.all(np.abs(point.value - self._interval_first) <= epsilon))
        new_min = np.minimum(self._interval_min, point.value)
        new_max = np.maximum(self._interval_max, point.value)
        if self.mode == "midrange":
            return bool(np.all(new_max - new_min <= 2.0 * epsilon))
        # Mean mode: every point (captured by the running min/max envelope)
        # must stay within ε of the would-be new mean.
        new_mean = (self._interval_sum + point.value) / (self._interval_count + 1)
        return bool(
            np.all(new_max - new_mean <= epsilon) and np.all(new_mean - new_min <= epsilon)
        )


class MidrangeCacheFilter(CacheFilter):
    """Cache filter using the midrange representative (optimal PCA of [18])."""

    name = "cache-midrange"

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, mode="midrange", max_lag=max_lag)


class MeanCacheFilter(CacheFilter):
    """Cache filter using the running-mean representative ([18] variant)."""

    name = "cache-mean"

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, mode="mean", max_lag=max_lag)
