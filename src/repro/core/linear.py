"""Linear filters — piece-wise linear baselines (paper §2.2).

A linear filter predicts that incoming points stay within ε of a straight
line whose slope is fixed by the *first two* data points of the current
filtering interval.  Two variants exist:

* **Connected** (:class:`LinearFilter`): when a point violates the bound, the
  current segment is terminated at the line's prediction for the last
  approximated point, and that endpoint together with the violating point
  defines the next segment — so consecutive segments share an endpoint and
  each costs a single recording.
* **Disconnected** (:class:`DisconnectedLinearFilter`): the violating point
  itself starts the next segment (whose slope is fixed by the following
  point), so each segment costs two recordings.

The connected variant is the one used as the "linear" baseline throughout the
paper's evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind

__all__ = ["LinearFilter", "DisconnectedLinearFilter"]

#: Initial lookahead (in points) of the batch scan; doubled while no
#: violation is found, reset after each segment.
_INITIAL_WINDOW = 64


class LinearFilter(StreamFilter):
    """Connected-segment linear filter (slope fixed by the first two points)."""

    name = "linear"
    family = "linear"
    state_version = 1
    _STATE_FIELDS = (
        "_anchor_time",
        "_anchor_value",
        "_slope",
        "_last_point",
        "_interval_points",
    )

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        self._anchor_time: Optional[float] = None
        self._anchor_value: Optional[np.ndarray] = None
        self._slope: Optional[np.ndarray] = None
        self._last_point: Optional[DataPoint] = None
        self._interval_points = 0

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._anchor_time is None:
            # Very first point of the stream: it is both the first recording
            # and the anchor of the first segment.
            self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
            self._set_anchor(point.time, point.value)
            self._last_point = point
            self._interval_points = 1
            return

        if self._slope is None:
            # Second point of the interval fixes the slope; it is represented
            # exactly, so no violation is possible.
            self._define_slope(point)
            self._after_accept(point)
            return

        prediction = self._predict(point.time)
        if np.all(np.abs(point.value - prediction) <= self._epsilon_array()):
            self._after_accept(point)
            return

        # Violation: close the current segment at the prediction for the last
        # approximated point, then start a new segment from that endpoint
        # through the violating point.
        end_value = self._predict(self._last_point.time)
        self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)
        self._set_anchor(self._last_point.time, end_value)
        self._define_slope(point)
        self._last_point = point
        self._interval_points = 1

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized chunk processing (identical recordings to feed()).

        Within a filtering interval the approximating line is fixed, so chunk
        points are checked against its prediction in vectorized comparisons
        over a geometrically growing lookahead window; the Python loop runs
        once per segment (plus once per window growth), not once per point.
        """
        if self.max_lag is not None:
            super()._process_batch(times, values)
            return
        epsilon = self._epsilon_array()
        total = times.shape[0]
        position = 0
        window = _INITIAL_WINDOW
        if self._anchor_time is None:
            point = DataPoint(float(times[0]), values[0])
            self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
            self._set_anchor(point.time, point.value)
            self._last_point = point
            self._interval_points = 1
            position = 1
        while position < total:
            if self._slope is None:
                point = DataPoint(float(times[position]), values[position])
                self._define_slope(point)
                self._after_accept(point)
                position += 1
                continue
            stop = min(position + window, total)
            ts = times[position:stop]
            xs = values[position:stop]
            # Same arithmetic as _predict().
            predictions = self._anchor_value + self._slope * (ts[:, None] - self._anchor_time)
            accepted = np.all(np.abs(xs - predictions) <= epsilon, axis=1)
            run = len(accepted) if bool(accepted.all()) else int(np.argmin(accepted))
            if run > 0:
                self._last_point = DataPoint(float(ts[run - 1]), xs[run - 1])
                self._interval_points += run
            if run == len(accepted):
                position = stop
                window *= 2
                continue
            violator = DataPoint(float(ts[run]), xs[run])
            end_value = self._predict(self._last_point.time)
            self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)
            self._set_anchor(self._last_point.time, end_value)
            self._define_slope(violator)
            self._last_point = violator
            self._interval_points = 1
            position += run + 1
            window = _INITIAL_WINDOW

    def _finish_stream(self) -> None:
        if self._last_point is None:
            return
        if self._last_point.time > self._anchor_time:
            end_value = (
                self._predict(self._last_point.time)
                if self._slope is not None
                else self._last_point.value
            )
            self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _set_anchor(self, time: float, value: np.ndarray) -> None:
        self._anchor_time = float(time)
        self._anchor_value = np.asarray(value, dtype=float).copy()
        self._slope = None

    def _define_slope(self, point: DataPoint) -> None:
        self._slope = (point.value - self._anchor_value) / (point.time - self._anchor_time)

    def _predict(self, time: float) -> np.ndarray:
        return self._anchor_value + self._slope * (time - self._anchor_time)

    def _after_accept(self, point: DataPoint) -> None:
        self._last_point = point
        self._interval_points += 1
        if self.max_lag is not None and self._interval_points >= self.max_lag:
            # Update the receiver now so its lag never exceeds max_lag points.
            end_value = self._predict(point.time)
            self._emit(point.time, end_value, RecordingKind.SEGMENT_END)
            self._set_anchor(point.time, end_value)
            self._interval_points = 0


class DisconnectedLinearFilter(StreamFilter):
    """Disconnected-segment linear filter (two recordings per segment)."""

    name = "linear-disconnected"
    family = "linear"
    state_version = 1
    _STATE_FIELDS = (
        "_anchor_time",
        "_anchor_value",
        "_slope",
        "_last_point",
        "_interval_points",
    )

    def __init__(self, epsilon, max_lag: Optional[int] = None) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        self._anchor_time: Optional[float] = None
        self._anchor_value: Optional[np.ndarray] = None
        self._slope: Optional[np.ndarray] = None
        self._last_point: Optional[DataPoint] = None
        self._interval_points = 0

    def _feed_point(self, point: DataPoint) -> None:
        if self._anchor_time is None:
            self._start_segment(point)
            return

        if self._slope is None:
            self._slope = (point.value - self._anchor_value) / (point.time - self._anchor_time)
            self._after_accept(point)
            return

        prediction = self._anchor_value + self._slope * (point.time - self._anchor_time)
        if np.all(np.abs(point.value - prediction) <= self._epsilon_array()):
            self._after_accept(point)
            return

        self._close_segment()
        self._start_segment(point)

    def _process_batch(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized chunk processing (identical recordings to feed())."""
        if self.max_lag is not None:
            super()._process_batch(times, values)
            return
        epsilon = self._epsilon_array()
        total = times.shape[0]
        position = 0
        window = _INITIAL_WINDOW
        while position < total:
            if self._anchor_time is None:
                self._start_segment(DataPoint(float(times[position]), values[position]))
                position += 1
                continue
            if self._slope is None:
                point = DataPoint(float(times[position]), values[position])
                self._slope = (point.value - self._anchor_value) / (
                    point.time - self._anchor_time
                )
                self._after_accept(point)
                position += 1
                continue
            stop = min(position + window, total)
            ts = times[position:stop]
            xs = values[position:stop]
            predictions = self._anchor_value + self._slope * (ts[:, None] - self._anchor_time)
            accepted = np.all(np.abs(xs - predictions) <= epsilon, axis=1)
            run = len(accepted) if bool(accepted.all()) else int(np.argmin(accepted))
            if run > 0:
                self._last_point = DataPoint(float(ts[run - 1]), xs[run - 1])
                self._interval_points += run
            if run == len(accepted):
                position = stop
                window *= 2
                continue
            self._close_segment()
            self._start_segment(DataPoint(float(ts[run]), xs[run]))
            position += run + 1
            window = _INITIAL_WINDOW

    def _finish_stream(self) -> None:
        if self._last_point is not None and self._last_point.time > self._anchor_time:
            self._close_segment()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _start_segment(self, point: DataPoint) -> None:
        self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
        self._anchor_time = point.time
        self._anchor_value = point.value.copy()
        self._slope = None
        self._last_point = point
        self._interval_points = 1

    def _close_segment(self) -> None:
        if self._slope is not None:
            end_value = self._anchor_value + self._slope * (
                self._last_point.time - self._anchor_time
            )
        else:
            end_value = self._last_point.value
        self._emit(self._last_point.time, end_value, RecordingKind.SEGMENT_END)

    def _after_accept(self, point: DataPoint) -> None:
        self._last_point = point
        self._interval_points += 1
        if self.max_lag is not None and self._interval_points >= self.max_lag:
            self._close_segment()
            self._start_segment(point)
