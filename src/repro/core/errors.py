"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StreamOrderError",
    "DimensionMismatchError",
    "FilterStateError",
    "InvalidPrecisionError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StreamOrderError(ReproError):
    """Raised when data points do not arrive in strictly increasing time order."""


class DimensionMismatchError(ReproError):
    """Raised when a data point's dimensionality differs from the filter's."""


class FilterStateError(ReproError):
    """Raised when a filter is used after :meth:`finish` or before setup."""


class InvalidPrecisionError(ReproError):
    """Raised when a precision width (ε) specification is not usable."""
