"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StreamOrderError",
    "DimensionMismatchError",
    "FilterStateError",
    "InvalidPrecisionError",
    "DegradedSinkError",
    "StoreLockedError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class StreamOrderError(ReproError):
    """Raised when data points do not arrive in strictly increasing time order."""


class DimensionMismatchError(ReproError):
    """Raised when a data point's dimensionality differs from the filter's."""


class FilterStateError(ReproError):
    """Raised when a filter is used after :meth:`finish` or before setup."""


class InvalidPrecisionError(ReproError):
    """Raised when a precision width (ε) specification is not usable."""


class DegradedSinkError(ReproError):
    """Raised when a store sink exhausts its retries on a transient I/O error.

    The recordings that could not be archived ride along as ``recordings``;
    they also remain queued in the sink's buffer, so a later flush — after
    the operator clears the underlying condition (e.g. frees disk space) —
    retries them without data loss.
    """

    def __init__(self, message: str, recordings=()):
        super().__init__(message)
        self.recordings = tuple(recordings)


class StoreLockedError(ReproError):
    """Raised when a store directory's writer lock is held by another process.

    One process owns a store's writer lock at a time (``store.lock`` inside
    the store directory, pid-stamped).  The holder's pid and host ride along
    so operators can find — or clean up after — the other writer; a lock
    left behind by a dead process is reclaimed automatically.
    """

    def __init__(self, message: str, pid=None, host=None):
        super().__init__(message)
        self.pid = pid
        self.host = host
