"""SWAB-style time-series segmentation (related work [16]).

Keogh, Chu, Hart and Pazzani (ICDM 2001) combine an offline *bottom-up*
segmentation with an online sliding window (SWAB = Sliding Window And
Bottom-up).  The paper notes (§6) that its online half can be replaced by a
swing or slide filter; this module provides both halves in their original
form so that combination can be evaluated:

* :func:`bottom_up_segments` — offline bottom-up merging until every segment's
  maximum deviation from its least-squares line would exceed the bound;
* :func:`swab_segments` — the windowed online variant: the buffer is
  segmented bottom-up, the leftmost segment is emitted, and the buffer slides
  forward.

Unlike the paper's filters these functions work on a finite array (they are
references / comparators, not online transmitters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["LinearSegment", "bottom_up_segments", "swab_segments"]


@dataclass(frozen=True)
class LinearSegment:
    """A least-squares line fitted to a contiguous run of points."""

    start_index: int
    end_index: int
    start_value: float
    end_value: float

    @property
    def length(self) -> int:
        """Number of points covered."""
        return self.end_index - self.start_index + 1


def _fit_segment(times: np.ndarray, values: np.ndarray, start: int, end: int) -> Tuple[float, float, float]:
    """Least-squares line over ``[start, end]``; returns (v_start, v_end, max_error)."""
    t = times[start : end + 1]
    x = values[start : end + 1]
    if len(t) == 1:
        return float(x[0]), float(x[0]), 0.0
    slope, intercept = np.polyfit(t, x, 1)
    fitted = slope * t + intercept
    max_error = float(np.max(np.abs(fitted - x)))
    return float(fitted[0]), float(fitted[-1]), max_error


def bottom_up_segments(times: Sequence[float], values: Sequence[float], epsilon: float) -> List[LinearSegment]:
    """Offline bottom-up segmentation under a maximum-deviation bound.

    Adjacent segments are merged greedily (cheapest merge first) while the
    merged segment's maximum deviation from its least-squares line stays
    within ``epsilon``.

    Raises:
        ValueError: If the signal is empty or ``epsilon`` is negative.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        raise ValueError("cannot segment an empty signal")
    if epsilon < 0.0:
        raise ValueError("epsilon must be non-negative")

    # Start from pairs of points (the finest piece-wise linear description).
    boundaries: List[Tuple[int, int]] = []
    index = 0
    n = len(times)
    while index < n - 1:
        boundaries.append((index, index + 1))
        index += 2
    if index == n - 1:
        boundaries.append((n - 1, n - 1))
    if not boundaries:
        boundaries = [(0, 0)]

    def merge_cost(left: Tuple[int, int], right: Tuple[int, int]) -> float:
        return _fit_segment(times, values, left[0], right[1])[2]

    costs = [
        merge_cost(boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)
    ]
    while costs:
        best = int(np.argmin(costs))
        if costs[best] > epsilon:
            break
        merged = (boundaries[best][0], boundaries[best + 1][1])
        boundaries[best : best + 2] = [merged]
        del costs[best]
        if best > 0:
            costs[best - 1] = merge_cost(boundaries[best - 1], boundaries[best])
        if best < len(boundaries) - 1:
            costs[best] = merge_cost(boundaries[best], boundaries[best + 1])

    segments = []
    for start, end in boundaries:
        v_start, v_end, _ = _fit_segment(times, values, start, end)
        segments.append(LinearSegment(start, end, v_start, v_end))
    return segments


def swab_segments(
    times: Sequence[float],
    values: Sequence[float],
    epsilon: float,
    buffer_size: int = 100,
) -> List[LinearSegment]:
    """Sliding-window-and-bottom-up segmentation (the online SWAB variant).

    Args:
        times: Timestamps of the signal.
        values: Values of the signal.
        epsilon: Maximum allowed deviation of a segment from its points.
        buffer_size: Number of points kept in the working buffer.

    Raises:
        ValueError: If the buffer size is smaller than 2.
    """
    if buffer_size < 2:
        raise ValueError("buffer_size must be at least 2")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        raise ValueError("cannot segment an empty signal")

    segments: List[LinearSegment] = []
    window_start = 0
    n = len(times)
    while window_start < n:
        window_end = min(window_start + buffer_size, n)
        local = bottom_up_segments(
            times[window_start:window_end], values[window_start:window_end], epsilon
        )
        first = local[0]
        shifted = LinearSegment(
            first.start_index + window_start,
            first.end_index + window_start,
            first.start_value,
            first.end_value,
        )
        segments.append(shifted)
        if shifted.end_index + 1 >= n:
            # Emit any remaining local segments and stop.
            for extra in local[1:]:
                segments.append(
                    LinearSegment(
                        extra.start_index + window_start,
                        extra.end_index + window_start,
                        extra.start_value,
                        extra.end_value,
                    )
                )
            break
        window_start = shifted.end_index + 1
    return segments
