"""Related-work baselines used for ablations and context.

These algorithms are discussed in the paper's related-work section (§6) and
are provided so the benchmarks can put the swing/slide results in a wider
context:

* :mod:`~repro.extensions.kalman` — a Kalman-filter-based predictor with a
  dead-band, in the spirit of Jain et al. [15];
* :mod:`~repro.extensions.swab` — the SWAB sliding-window-and-bottom-up
  segmentation of Keogh et al. [16], whose online half can be swapped for a
  swing or slide filter;
* :mod:`~repro.extensions.optimal_pca` — the optimal offline piece-wise
  constant approximation (dynamic programming), the quality ceiling for the
  cache-filter family of Lazaridis & Mehrotra [18];
* :mod:`~repro.extensions.adaptive` — adaptive per-stream precision
  allocation for aggregate monitoring, in the spirit of Olston et al. [21].
"""

from repro.extensions.adaptive import AdaptiveAggregateMonitor
from repro.extensions.kalman import KalmanFilterPredictor
from repro.extensions.optimal_pca import optimal_piecewise_constant
from repro.extensions.swab import bottom_up_segments, swab_segments

__all__ = [
    "KalmanFilterPredictor",
    "optimal_piecewise_constant",
    "bottom_up_segments",
    "swab_segments",
    "AdaptiveAggregateMonitor",
]
