"""Optimal piece-wise constant approximation under an L∞ bound.

Lazaridis & Mehrotra (ICDE 2003, reference [18] of the paper) show that the
greedy online strategy implemented by
:class:`~repro.core.cache.MidrangeCacheFilter` — extend the current interval
while its value spread stays within ``2·ε`` and represent it by its midrange —
produces the *minimum possible number of segments* for a piece-wise constant
approximation.  This module provides an independent offline implementation of
that optimum (a single greedy scan over the full signal) so tests and
ablations can verify the online cache filter against it, plus a helper that
returns the segments themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ConstantSegment", "optimal_piecewise_constant", "optimal_segment_count"]


@dataclass(frozen=True)
class ConstantSegment:
    """A maximal run of points representable by a single held value."""

    start_index: int
    end_index: int
    value: np.ndarray

    @property
    def length(self) -> int:
        """Number of data points covered by the segment."""
        return self.end_index - self.start_index + 1


def optimal_piecewise_constant(values: Sequence, epsilon) -> List[ConstantSegment]:
    """Partition the signal into the fewest ε-representable constant segments.

    Args:
        values: Signal values, shape ``(n,)`` or ``(n, d)``.
        epsilon: Scalar or per-dimension precision widths.

    Returns:
        The segments in order; each value is the per-dimension midrange of the
        covered points, which is within ε of every covered point.

    Raises:
        ValueError: If the signal is empty.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot segment an empty signal")
    if array.ndim == 1:
        array = array[:, np.newaxis]
    bound = np.atleast_1d(np.asarray(epsilon, dtype=float))
    if bound.size == 1:
        bound = np.full(array.shape[1], float(bound[0]))
    if bound.shape[0] != array.shape[1]:
        raise ValueError("epsilon dimensionality does not match the signal")

    segments: List[ConstantSegment] = []
    start = 0
    running_min = array[0].copy()
    running_max = array[0].copy()
    for index in range(1, array.shape[0]):
        candidate_min = np.minimum(running_min, array[index])
        candidate_max = np.maximum(running_max, array[index])
        if np.all(candidate_max - candidate_min <= 2.0 * bound):
            running_min, running_max = candidate_min, candidate_max
            continue
        segments.append(
            ConstantSegment(start, index - 1, (running_min + running_max) / 2.0)
        )
        start = index
        running_min = array[index].copy()
        running_max = array[index].copy()
    segments.append(
        ConstantSegment(start, array.shape[0] - 1, (running_min + running_max) / 2.0)
    )
    return segments


def optimal_segment_count(values: Sequence, epsilon) -> int:
    """Minimum number of constant segments needed to stay within ε."""
    return len(optimal_piecewise_constant(values, epsilon))
