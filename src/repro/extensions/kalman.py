"""Kalman-filter-based stream predictor with a dead-band (related work [15]).

Jain, Chang and Wang (SIGMOD 2004) reduce stream traffic by running identical
Kalman filters at the transmitter and the receiver: the transmitter only sends
a correction when the prediction error exceeds the precision width.  Between
corrections no measurement updates happen (the receiver has no measurements),
so with the constant-velocity model used here the shared prediction evolves
*linearly* in time — which means the receiver-side signal is a piece-wise
linear function and the scheme plugs directly into this library's recording /
reconstruction model: a ``SEGMENT_START`` is emitted at every correction and a
``SEGMENT_END`` closes the segment at the last point covered by it.

Two deliberate deviations from a textbook Kalman filter keep the paper's L∞
guarantee intact:

* at a correction the transmitted value is the *measurement* itself (not the
  Kalman-blended estimate), so the recorded point is exact;
* the velocity estimate is still refined with the standard Kalman update, so
  the predictor keeps adapting to the signal's trend.

The paper (§6) notes that a Kalman filter can mimic cache- or linear-style
prediction but cannot maintain the *set* of candidate segments that swing and
slide filters do; the ablation benchmarks make that comparison concrete.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import StreamFilter
from repro.core.types import DataPoint, RecordingKind

__all__ = ["KalmanFilterPredictor"]


class KalmanFilterPredictor(StreamFilter):
    """Dead-band Kalman predictor (constant-velocity model per dimension).

    Args:
        epsilon: Precision width specification.
        process_noise: Variance of the random acceleration driving the model.
        measurement_noise: Variance of the measurement noise.
        max_lag: Optional bound on points between transmissions.
    """

    name = "kalman"
    family = "linear"

    def __init__(
        self,
        epsilon,
        process_noise: float = 1e-3,
        measurement_noise: float = 1e-2,
        max_lag: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, max_lag=max_lag)
        if process_noise <= 0.0 or measurement_noise <= 0.0:
            raise ValueError("noise variances must be positive")
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self._state: Optional[np.ndarray] = None  # shape (d, 2): [value, velocity]
        self._covariance: Optional[np.ndarray] = None  # shape (d, 2, 2)
        self._previous_time: Optional[float] = None
        self._previous_prediction: Optional[np.ndarray] = None
        self._segment_start_time: Optional[float] = None
        self._since_update = 0

    # ------------------------------------------------------------------ #
    # StreamFilter hooks
    # ------------------------------------------------------------------ #
    def _feed_point(self, point: DataPoint) -> None:
        if self._state is None:
            self._reset_state(point)
            self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
            self._segment_start_time = point.time
            return
        dt = point.time - self._previous_time
        self._predict(dt)
        prediction = self._state[:, 0].copy()
        within = np.all(np.abs(point.value - prediction) <= self._epsilon_array())
        lag_ok = self.max_lag is None or self._since_update + 1 < self.max_lag
        if within and lag_ok:
            self._previous_time = point.time
            self._previous_prediction = prediction
            self._since_update += 1
            return
        # Correction: close the running segment at its last covered point,
        # then transmit the measurement and start a new segment from it.
        if self._previous_time > self._segment_start_time:
            self._emit(self._previous_time, self._previous_prediction, RecordingKind.SEGMENT_END)
        self._update(point.value)
        self._state[:, 0] = point.value
        self._emit(point.time, point.value, RecordingKind.SEGMENT_START)
        self._segment_start_time = point.time
        self._previous_time = point.time
        self._previous_prediction = point.value.copy()
        self._since_update = 0

    def _finish_stream(self) -> None:
        if self._state is None:
            return
        if self._previous_time > self._segment_start_time:
            self._emit(self._previous_time, self._previous_prediction, RecordingKind.SEGMENT_END)

    # ------------------------------------------------------------------ #
    # Kalman mechanics (independent 2-state filter per dimension)
    # ------------------------------------------------------------------ #
    def _reset_state(self, point: DataPoint) -> None:
        dimensions = point.dimensions
        self._state = np.zeros((dimensions, 2))
        self._state[:, 0] = point.value
        self._covariance = np.tile(np.eye(2), (dimensions, 1, 1))
        self._previous_time = point.time
        self._previous_prediction = point.value.copy()
        self._since_update = 0

    def _predict(self, dt: float) -> None:
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        noise = self.process_noise * np.array(
            [[dt**4 / 4.0, dt**3 / 2.0], [dt**3 / 2.0, dt**2]]
        )
        for i in range(self._state.shape[0]):
            self._state[i] = transition @ self._state[i]
            self._covariance[i] = transition @ self._covariance[i] @ transition.T + noise

    def _update(self, measurement: np.ndarray) -> None:
        observation = np.array([[1.0, 0.0]])
        for i in range(self._state.shape[0]):
            innovation = measurement[i] - self._state[i, 0]
            innovation_var = self._covariance[i, 0, 0] + self.measurement_noise
            gain = (self._covariance[i] @ observation.T / innovation_var).ravel()
            self._state[i] = self._state[i] + gain * innovation
            self._covariance[i] = (np.eye(2) - np.outer(gain, observation)) @ self._covariance[i]

    @property
    def predicted_value(self) -> Optional[np.ndarray]:
        """Current predicted value per dimension (``None`` before any point)."""
        if self._state is None:
            return None
        return self._state[:, 0].copy()
