"""Adaptive precision allocation across streams (related work [21]).

Olston, Jiang and Widom (SIGMOD 2003) consider continuous queries over an
*aggregate* of many input streams: the user prescribes a precision width for
the aggregate, the system divides that budget into per-stream widths, and
each source only transmits when its value drifts outside its band.  Streams
that change rapidly are adaptively given a wider band (so they transmit
less), stable streams a narrower one; the sum of the per-stream widths never
exceeds the aggregate budget, so the receiver's running SUM estimate is
always within the prescribed precision of the true SUM.

The paper under reproduction cites [21] as the canonical use of cache-style
filtering (§2.2, §6).  :class:`AdaptiveAggregateMonitor` implements the
scheme in its original *immediate-transmission* form — each stream transmits
its new value the moment it leaves the band, which is what gives the online
aggregate guarantee — and reports how much traffic adaptation saves compared
with a uniform split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["AdaptiveAggregateMonitor", "AggregateReport", "StreamAllocation"]


@dataclass
class StreamAllocation:
    """Bookkeeping for one monitored stream.

    Attributes:
        name: Stream identifier.
        epsilon: Current precision width allocated to the stream.
        messages: Total values transmitted by the stream so far.
        messages_in_window: Values transmitted since the last re-allocation
            (the burden signal used for adaptation).
        last_transmitted: The value currently known to the receiver.
        epsilon_history: Every width the stream has been assigned, in order.
    """

    name: str
    epsilon: float
    messages: int = 0
    messages_in_window: int = 0
    last_transmitted: Optional[float] = None
    epsilon_history: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class AggregateReport:
    """Summary of an adaptive-aggregate monitoring run.

    Attributes:
        points: Total observations across all streams.
        messages: Total values transmitted.
        compression_ratio: ``points / messages``.
        total_epsilon: The aggregate precision budget.
        allocations: Final per-stream precision widths.
        reallocations: Number of budget re-allocations performed.
        max_aggregate_error: Largest observed deviation between the true SUM
            and the receiver-side SUM estimate (guaranteed ≤ ``total_epsilon``).
    """

    points: int
    messages: int
    compression_ratio: float
    total_epsilon: float
    allocations: Dict[str, float]
    reallocations: int
    max_aggregate_error: float


class AdaptiveAggregateMonitor:
    """Monitor a SUM aggregate over several streams within a total ε budget.

    Args:
        streams: Names of the participating streams (fixed up front so the
            budget can be divided).
        total_epsilon: Precision width guaranteed for the SUM of the streams.
        adjustment_interval: Number of observations *per stream* between
            budget re-allocations; ``None`` disables adaptation (uniform
            split, the static baseline of [21]).
        adaptation_rate: Fraction of the budget redistributed according to the
            observed burden at each re-allocation; the remainder stays
            uniformly distributed so every stream keeps a strictly positive
            width.

    Raises:
        ValueError: If no streams are given, the budget is not positive, or
            the adaptation parameters are out of range.
    """

    def __init__(
        self,
        streams: Sequence[str],
        total_epsilon: float,
        adjustment_interval: Optional[int] = 200,
        adaptation_rate: float = 0.8,
    ) -> None:
        if not streams:
            raise ValueError("at least one stream is required")
        if len(set(streams)) != len(streams):
            raise ValueError("stream names must be unique")
        if total_epsilon <= 0.0:
            raise ValueError("total_epsilon must be positive")
        if not 0.0 <= adaptation_rate <= 1.0:
            raise ValueError("adaptation_rate must be within [0, 1]")
        if adjustment_interval is not None and adjustment_interval < 1:
            raise ValueError("adjustment_interval must be positive")
        self.total_epsilon = float(total_epsilon)
        self.adjustment_interval = adjustment_interval
        self.adaptation_rate = adaptation_rate
        uniform = self.total_epsilon / len(streams)
        self._allocations: Dict[str, StreamAllocation] = {
            name: StreamAllocation(name=name, epsilon=uniform, epsilon_history=[uniform])
            for name in streams
        }
        self._true_values: Dict[str, float] = {}
        self._points = 0
        self._points_since_adjustment = 0
        self._reallocations = 0
        self._max_aggregate_error = 0.0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, stream: str, value: float) -> bool:
        """Feed one observation; returns ``True`` when a value was transmitted.

        Raises:
            KeyError: If the stream was not declared at construction time.
            RuntimeError: If the monitor has been closed.
        """
        if self._closed:
            raise RuntimeError("the monitor has been closed")
        try:
            allocation = self._allocations[stream]
        except KeyError:
            raise KeyError(f"unknown stream {stream!r}") from None

        value = float(value)
        self._true_values[stream] = value
        self._points += 1
        self._points_since_adjustment += 1

        transmitted = False
        if (
            allocation.last_transmitted is None
            or abs(value - allocation.last_transmitted) > allocation.epsilon
        ):
            allocation.last_transmitted = value
            allocation.messages += 1
            allocation.messages_in_window += 1
            transmitted = True

        self._track_aggregate_error()
        if (
            self.adjustment_interval is not None
            and self._points_since_adjustment
            >= self.adjustment_interval * len(self._allocations)
        ):
            self._reallocate()
        return transmitted

    def close(self) -> AggregateReport:
        """Stop monitoring and return the run's report."""
        self._closed = True
        return self.report()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current_allocation(self) -> Dict[str, float]:
        """Current per-stream precision widths (they sum to ``total_epsilon``)."""
        return {name: allocation.epsilon for name, allocation in self._allocations.items()}

    def estimated_sum(self) -> float:
        """The receiver-side estimate of the SUM aggregate."""
        return float(
            sum(
                allocation.last_transmitted
                for allocation in self._allocations.values()
                if allocation.last_transmitted is not None
            )
        )

    def true_sum(self) -> float:
        """The true SUM over the values observed so far."""
        return float(sum(self._true_values.values()))

    def report(self) -> AggregateReport:
        """Build the summary report (valid before or after :meth:`close`)."""
        messages = sum(a.messages for a in self._allocations.values())
        ratio = self._points / messages if messages else (float("inf") if self._points else 0.0)
        return AggregateReport(
            points=self._points,
            messages=messages,
            compression_ratio=ratio,
            total_epsilon=self.total_epsilon,
            allocations=self.current_allocation(),
            reallocations=self._reallocations,
            max_aggregate_error=self._max_aggregate_error,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _track_aggregate_error(self) -> None:
        error = 0.0
        for name, allocation in self._allocations.items():
            true = self._true_values.get(name)
            if true is None:
                continue
            estimate = allocation.last_transmitted if allocation.last_transmitted is not None else true
            error += true - estimate
        self._max_aggregate_error = max(self._max_aggregate_error, abs(error))

    def _reallocate(self) -> None:
        """Redistribute the budget in proportion to each stream's burden."""
        self._points_since_adjustment = 0
        self._reallocations += 1
        allocations = list(self._allocations.values())
        burdens = np.array([a.messages_in_window for a in allocations], dtype=float)
        uniform_share = (1.0 - self.adaptation_rate) * self.total_epsilon / len(allocations)
        if burdens.sum() <= 0.0:
            weighted = np.full(
                len(allocations), self.adaptation_rate * self.total_epsilon / len(allocations)
            )
        else:
            weighted = self.adaptation_rate * self.total_epsilon * burdens / burdens.sum()
        for allocation, extra in zip(allocations, weighted):
            allocation.epsilon = uniform_share + float(extra)
            allocation.epsilon_history.append(allocation.epsilon)
            allocation.messages_in_window = 0
            # Shrinking a stream's band may leave its receiver-side value
            # outside the new band; re-synchronize immediately so the
            # aggregate guarantee holds at every instant.
            true = self._true_values.get(allocation.name)
            if (
                true is not None
                and allocation.last_transmitted is not None
                and abs(true - allocation.last_transmitted) > allocation.epsilon
            ):
                allocation.last_transmitted = true
                allocation.messages += 1
