"""Command-line interface.

The ``repro`` command exposes the library's everyday operations:

* ``repro filters`` / ``repro datasets`` — list what is available,
* ``repro compress`` — compress a CSV file (or built-in dataset) with one
  filter and write the recordings to a CSV file,
* ``repro ingest`` — batch-ingest a workload into a durable segment store
  through the vectorized pipeline,
* ``repro evaluate`` — compare several filters on one workload,
* ``repro experiment`` — run one of the paper's figure experiments and print
  its table.

Examples::

    repro compress --dataset sst --filter slide --precision-percent 1 -o out.csv
    repro compress --input measurements.csv --filter swing --epsilon 0.5 -o out.csv
    repro ingest --dataset sst --filter slide --precision-percent 1 --store ./archive
    repro ingest --input ticks.csv --filter swing --epsilon 0.5 --store ./archive --chunk-size 8192
    repro ingest --dataset random-walk --filter swing --epsilon 0.5 --store ./archive --shards 4
    repro ingest --dataset correlated-5d --filter swing --epsilon 0.5 --store ./archive \
        --split-dimensions --workers 4
    repro ingest --dataset sst --filter slide --precision-percent 1 --store ./archive \
        --checkpoint ./archive.ckpt --resume
    repro compact --store ./archive
    repro evaluate --dataset random-walk --epsilon 0.5
    repro experiment figure9
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.approximation.reconstruct import reconstruct
from repro.core.epsilon import epsilon_from_percent
from repro.core.errors import ReproError
from repro.core.registry import PAPER_FILTERS, available_filters, create_filter
from repro.data.datasets import available_datasets, dataset_entries, load_dataset
from repro.pipeline import DEFAULT_CHUNK_SIZE, BatchIngestor, StoreSink
from repro.evaluation import (
    compression_vs_correlation,
    compression_vs_delta,
    compression_vs_dimensions,
    compression_vs_monotonicity,
    compression_vs_precision,
    error_vs_precision,
    overhead_vs_precision,
    render_series,
)
from repro.evaluation.experiments import run_filters
from repro.evaluation.report import render_table
from repro.metrics.error import error_profile
from repro.runtime import (
    DEFAULT_CHECKPOINT_EVERY,
    ParallelIngestor,
    StreamTask,
    run_ingest,
)
from repro.storage import DEFAULT_SHARDS, open_store
from repro.streams.source import CsvSource

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "figure7": compression_vs_precision,
    "figure8": error_vs_precision,
    "figure9": compression_vs_monotonicity,
    "figure10": compression_vs_delta,
    "figure11": compression_vs_dimensions,
    "figure12": compression_vs_correlation,
    "figure13": overhead_vs_precision,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online piece-wise linear approximation with precision guarantees "
        "(swing and slide filters, VLDB 2009 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("filters", help="list the registered filters")

    subparsers.add_parser("datasets", help="list the built-in datasets")

    compress = subparsers.add_parser("compress", help="compress one workload with one filter")
    _add_workload_arguments(compress)
    compress.add_argument("--filter", default="slide", help="filter name (default: slide)")
    _add_precision_arguments(compress)
    compress.add_argument("--max-lag", type=int, default=None, help="m_max_lag bound in points")
    compress.add_argument("-o", "--output", default=None, help="write recordings to this CSV file")

    ingest = subparsers.add_parser(
        "ingest", help="batch-ingest one workload into a segment store"
    )
    _add_workload_arguments(ingest)
    ingest.add_argument("--filter", default="slide", help="filter name (default: slide)")
    _add_precision_arguments(ingest)
    ingest.add_argument("--max-lag", type=int, default=None, help="m_max_lag bound in points")
    ingest.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help=f"points per ingestion chunk (default {DEFAULT_CHUNK_SIZE})",
    )
    ingest.add_argument("--store", required=True, help="segment store directory")
    ingest.add_argument(
        "--shards",
        type=int,
        default=None,
        help="create/open the store sharded across this many shard stores "
        "(default: an unsharded store; must match an existing sharded store)",
    )
    ingest.add_argument(
        "--name",
        default=None,
        help="stream name in the store (default: the dataset or input file name)",
    )
    ingest.add_argument(
        "--split-dimensions",
        action="store_true",
        help="store a d-dimensional workload as one stream per dimension "
        "(NAME/d0..NAME/d{d-1}) in a sharded store; the stored layout is the "
        "same for every --workers value",
    )
    ingest.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; requires --split-dimensions when above 1 (a "
        "single stream cannot be parallelized), streams are partitioned "
        "shard-aligned across the workers (default 1: single process)",
    )
    ingest.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint directory: periodically snapshot filter state and "
        "store offsets so a killed ingest can restart with --resume",
    )
    ingest.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help=f"chunks between checkpoints (default {DEFAULT_CHECKPOINT_EVERY})",
    )
    ingest.add_argument(
        "--resume",
        action="store_true",
        help="resume from the last checkpoint in --checkpoint (fresh run when "
        "there is none); never reprocesses or duplicates recordings",
    )

    compact = subparsers.add_parser(
        "compact", help="merge undersized index blocks of a segment store"
    )
    compact.add_argument("--store", required=True, help="segment store directory")
    compact.add_argument(
        "--stream", default=None, help="compact only this stream (default: all)"
    )

    evaluate = subparsers.add_parser("evaluate", help="compare filters on one workload")
    _add_workload_arguments(evaluate)
    _add_precision_arguments(evaluate)
    evaluate.add_argument(
        "--filters",
        nargs="+",
        default=list(PAPER_FILTERS),
        help="filter names to compare (default: the paper's four)",
    )

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS), help="experiment to run")

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", help="name of a built-in dataset")
    group.add_argument("--input", help="CSV file with a time column followed by value columns")
    parser.add_argument(
        "--time-column", type=int, default=0, help="index of the time column in the CSV (default 0)"
    )


def _add_precision_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--epsilon", type=float, help="absolute precision width")
    group.add_argument(
        "--precision-percent",
        type=float,
        help="precision width as a percentage of the signal's value range",
    )


def _load_workload(args: argparse.Namespace) -> Tuple[np.ndarray, np.ndarray]:
    if args.dataset:
        times, values = load_dataset(args.dataset)
        return np.asarray(times, dtype=float), np.asarray(values, dtype=float)
    source = CsvSource(args.input, time_column=args.time_column)
    times, values = source.to_arrays()
    if times.size == 0:
        raise SystemExit(f"no data points found in {args.input!r}")
    if values.shape[1] == 1:
        values = values[:, 0]
    return times, values


def _resolve_epsilon(args: argparse.Namespace, values: np.ndarray) -> float:
    if args.epsilon is not None:
        return float(args.epsilon)
    return epsilon_from_percent(args.precision_percent, values)


def _write_recordings(path: str, recordings) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        dimensions = recordings[0].dimensions if recordings else 0
        writer.writerow(["kind", "time"] + [f"x{i + 1}" for i in range(dimensions)])
        for record in recordings:
            writer.writerow([record.kind.value, record.time] + [float(v) for v in record.value])


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _command_filters() -> int:
    rows = [["name"]] + [[name] for name in available_filters()]
    print(render_table(rows))
    return 0


def _command_datasets() -> int:
    rows = [["name", "description"]]
    for entry in dataset_entries():
        rows.append([entry.name, entry.description])
    print(render_table(rows))
    return 0


def _command_compress(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    kwargs = {"max_lag": args.max_lag} if args.max_lag is not None else {}
    stream_filter = create_filter(args.filter, epsilon, **kwargs)
    result = stream_filter.process(zip(times, values))
    approximation = reconstruct(result)
    profile = error_profile(approximation, times, values)

    print(f"filter            : {args.filter}")
    print(f"precision width   : {epsilon:.6g}")
    print(f"data points       : {result.points_processed}")
    print(f"recordings        : {result.recording_count}")
    print(f"compression ratio : {result.compression_ratio:.3f}")
    print(f"mean / max error  : {profile.mean_absolute:.6g} / {profile.max_absolute:.6g}")
    if args.output:
        _write_recordings(args.output, list(result.recordings))
        print(f"recordings written to {args.output}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    if args.name:
        stream_name = args.name
    elif args.dataset:
        stream_name = args.dataset
    else:
        stream_name = Path(args.input).stem
    kwargs = {"max_lag": args.max_lag} if args.max_lag is not None else {}
    try:
        # Build the filter before touching the store so a bad filter name,
        # filter option or chunk size does not create the store directory as
        # a side effect.
        if args.shards is not None and args.shards < 1:
            raise ValueError(f"shards must be positive, got {args.shards}")
        if args.workers < 1:
            raise ValueError(f"workers must be positive, got {args.workers}")
        if args.resume and args.checkpoint is None:
            raise ValueError("--resume requires --checkpoint")
        stream_filter = create_filter(args.filter, epsilon, **kwargs)
        if args.workers > 1 and not args.split_dimensions:
            raise ValueError(
                "--workers above 1 requires --split-dimensions: a single "
                "stream cannot be partitioned across workers"
            )
        if args.split_dimensions:
            return _ingest_parallel(args, times, values, epsilon, stream_name, kwargs)
        if args.checkpoint is not None:
            report = run_ingest(
                args.store,
                stream_name,
                args.filter,
                epsilon,
                times,
                values,
                shards=args.shards,
                chunk_size=args.chunk_size,
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                **kwargs,
            )
        else:
            ingestor = BatchIngestor(stream_filter, chunk_size=args.chunk_size)
            ingestor.sink = StoreSink(
                args.store, stream_name, epsilon=[epsilon], shards=args.shards
            )
            report = ingestor.run(times, values)
    except (KeyError, ValueError, ReproError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"ingest failed: {message}") from error

    store_label = args.store if args.shards is None else f"{args.store} ({args.shards} shards)"
    print(f"filter            : {report.filter_name}")
    print(f"precision width   : {epsilon:.6g}")
    print(f"stream            : {stream_name} -> {store_label}")
    print(f"data points       : {report.points}")
    print(f"chunks            : {report.chunks} (chunk size {args.chunk_size})")
    print(f"recordings        : {report.recordings}")
    print(f"compression ratio : {report.compression_ratio:.3f}")
    print(f"throughput        : {report.points_per_second:,.0f} points/s")
    return 0


def _ingest_parallel(
    args: argparse.Namespace,
    times: np.ndarray,
    values: np.ndarray,
    epsilon: float,
    stream_name: str,
    filter_kwargs: dict,
) -> int:
    """Store a workload as per-dimension streams, partitioned across workers.

    The stored layout (stream names, shard count) depends only on the
    workload and ``--shards`` — never on ``--workers`` — so runs with
    different worker counts write, and resume, the same store.
    """
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    tasks = [
        StreamTask(name=f"{stream_name}/d{index}", times=times, values=values[:, index])
        for index in range(values.shape[1])
    ]
    shards = args.shards if args.shards is not None else DEFAULT_SHARDS
    ingestor = ParallelIngestor(
        args.store,
        args.filter,
        epsilon,
        workers=args.workers,
        shards=shards,
        chunk_size=args.chunk_size,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        **filter_kwargs,
    )
    report = ingestor.run(tasks)
    ratio = report.points / report.recordings if report.recordings else 0.0
    print(f"filter            : {args.filter}")
    print(f"precision width   : {epsilon:.6g}")
    print(f"streams           : {report.streams} -> {args.store} ({report.shards} shards)")
    print(f"workers           : {report.workers}")
    print(f"data points       : {report.points}")
    print(f"recordings        : {report.recordings}")
    print(f"compression ratio : {ratio:.3f}")
    print(f"throughput        : {report.points_per_second:,.0f} points/s")
    return 0


def _command_compact(args: argparse.Namespace) -> int:
    from repro.storage import SegmentStore, ShardedStore

    root = Path(args.store)
    # open_store would create an empty store at a mistyped path; compaction
    # is maintenance of an *existing* store, so demand one.
    if not (root / ShardedStore.META_NAME).exists() and not (
        root / SegmentStore.CATALOG_NAME
    ).exists():
        raise SystemExit(f"compact failed: no segment store at {args.store!r}")
    try:
        store = open_store(args.store)
    except (OSError, ValueError) as error:
        raise SystemExit(f"compact failed: {error}") from error
    try:
        rebuilt = store.compact(args.stream)
    except KeyError as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"compact failed: {message}") from error
    finally:
        store.close()
    rows = [["stream", "blocks before", "blocks after"]]
    for name in sorted(rebuilt):
        before, after = rebuilt[name]
        rows.append([name, str(before), str(after)])
    if rebuilt:
        print(render_table(rows))
    print(f"compacted {len(rebuilt)} stream(s)")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    runs = run_filters(times, values, epsilon, filters=args.filters)
    rows = [["filter", "recordings", "ratio", "mean error", "max error"]]
    for name, run in runs.items():
        rows.append(
            [
                name,
                str(run.recordings),
                f"{run.compression_ratio:.3f}",
                f"{run.mean_absolute_error:.6g}",
                f"{run.max_absolute_error:.6g}",
            ]
        )
    print(f"precision width: {epsilon:.6g} ({len(times)} points)")
    print(render_table(rows))
    return 0


def _command_experiment(name: str) -> int:
    series = _EXPERIMENTS[name]()
    print(render_series(series))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "filters":
        return _command_filters()
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "compress":
        return _command_compress(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "compact":
        return _command_compact(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "experiment":
        return _command_experiment(args.name)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
