"""Command-line interface.

The ``repro`` command exposes the library's everyday operations:

* ``repro filters`` / ``repro datasets`` — list what is available,
* ``repro compress`` — compress a CSV file (or built-in dataset) with one
  filter and write the recordings to a CSV file,
* ``repro ingest`` — batch-ingest a workload into a durable segment store
  through the :class:`~repro.api.session.StreamDB` session façade,
* ``repro query`` — answer aggregates / crossings / resampling over a
  stored stream through the same façade,
* ``repro migrate`` — atomically rewrite a store into another storage
  backend (verifying bit-identical reads before the swap),
* ``repro verify`` — offline integrity check of a store (catalog/journal
  generations, block headers, index-vs-log extents, summary parity), with
  ``--repair`` truncating to the last consistent prefix,
* ``repro serve`` — run the asyncio network service over a store: remote
  ingest, queries and live tail subscriptions (:mod:`repro.server`), shut
  down gracefully on SIGINT/SIGTERM (drain → flush → checkpoint),
* ``repro evaluate`` — compare several filters on one workload,
* ``repro experiment`` — run one of the paper's figure experiments and print
  its table.

Examples::

    repro compress --dataset sst --filter slide --precision-percent 1 -o out.csv
    repro compress --input measurements.csv --filter swing --epsilon 0.5 -o out.csv
    repro ingest --dataset sst --filter slide --precision-percent 1 --store ./archive
    repro ingest --input ticks.csv --filter swing --epsilon 0.5 --store ./archive --chunk-size 8192
    repro ingest --dataset random-walk --filter swing --epsilon 0.5 --store ./archive --shards 4
    repro ingest --dataset correlated-5d --filter swing --epsilon 0.5 --store ./archive \
        --split-dimensions --workers 4
    repro ingest --dataset sst --filter slide --precision-percent 1 --store ./archive \
        --checkpoint ./archive.ckpt --resume
    repro query --store ./archive --stream sst --start 1000 --end 5000
    repro query --store ./archive --stream sst --threshold 21.5
    repro query --store ./archive --stream sst --step 60 -o samples.csv
    repro compact --store ./archive
    repro migrate --store ./archive --to columnar
    repro verify --store ./archive
    repro serve --store ./archive --epsilon 0.5 --port 7450 --token s3cret=sensors/*
    repro evaluate --dataset random-walk --epsilon 0.5
    repro experiment figure9
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

import repro
from repro import __version__
from repro.api import FilterSpec, IngestSpec, StorageSpec
from repro.approximation.reconstruct import reconstruct
from repro.core.epsilon import epsilon_from_percent
from repro.core.errors import ReproError
from repro.core.registry import PAPER_FILTERS, available_filters, create_filter
from repro.data.datasets import dataset_entries, load_dataset
from repro.pipeline import DEFAULT_CHUNK_SIZE
from repro.evaluation import (
    compression_vs_correlation,
    compression_vs_delta,
    compression_vs_dimensions,
    compression_vs_monotonicity,
    compression_vs_precision,
    error_vs_precision,
    overhead_vs_precision,
    render_series,
)
from repro.evaluation.experiments import run_filters
from repro.evaluation.report import render_table
from repro.metrics.error import error_profile
from repro.runtime import DEFAULT_CHECKPOINT_EVERY
from repro.server import DEFAULT_INGEST_QUEUE, DEFAULT_TAIL_QUEUE
from repro.runtime.parallel import ParallelIngestReport
from repro.storage import DEFAULT_SHARDS, available_backends, migrate_store
from repro.storage.verify import verify_store
from repro.streams.source import CsvSource

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "figure7": compression_vs_precision,
    "figure8": error_vs_precision,
    "figure9": compression_vs_monotonicity,
    "figure10": compression_vs_delta,
    "figure11": compression_vs_dimensions,
    "figure12": compression_vs_correlation,
    "figure13": overhead_vs_precision,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online piece-wise linear approximation with precision guarantees "
        "(swing and slide filters, VLDB 2009 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("filters", help="list the registered filters")

    subparsers.add_parser("datasets", help="list the built-in datasets")

    compress = subparsers.add_parser("compress", help="compress one workload with one filter")
    _add_workload_arguments(compress)
    compress.add_argument("--filter", default="slide", help="filter name (default: slide)")
    _add_precision_arguments(compress)
    compress.add_argument("--max-lag", type=int, default=None, help="m_max_lag bound in points")
    compress.add_argument("-o", "--output", default=None, help="write recordings to this CSV file")

    ingest = subparsers.add_parser(
        "ingest", help="batch-ingest one workload into a segment store"
    )
    _add_workload_arguments(ingest)
    ingest.add_argument("--filter", default="slide", help="filter name (default: slide)")
    _add_precision_arguments(ingest)
    ingest.add_argument("--max-lag", type=int, default=None, help="m_max_lag bound in points")
    ingest.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help=f"points per ingestion chunk (default {DEFAULT_CHUNK_SIZE})",
    )
    ingest.add_argument("--store", required=True, help="segment store directory")
    ingest.add_argument(
        "--shards",
        type=int,
        default=None,
        help="create/open the store sharded across this many shard stores "
        "(default: an unsharded store; must match an existing sharded store)",
    )
    ingest.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="storage backend for a new store (default: block-log; must match "
        "an existing store's backend)",
    )
    ingest.add_argument(
        "--name",
        default=None,
        help="stream name in the store (default: the dataset or input file name)",
    )
    ingest.add_argument(
        "--split-dimensions",
        action="store_true",
        help="store a d-dimensional workload as one stream per dimension "
        "(NAME/d0..NAME/d{d-1}) in a sharded store; the stored layout is the "
        "same for every --workers value",
    )
    ingest.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; requires --split-dimensions when above 1 (a "
        "single stream cannot be parallelized), streams are partitioned "
        "shard-aligned across the workers (default 1: single process)",
    )
    ingest.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint directory: periodically snapshot filter state and "
        "store offsets so a killed ingest can restart with --resume",
    )
    ingest.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help=f"chunks between checkpoints (default {DEFAULT_CHECKPOINT_EVERY})",
    )
    ingest.add_argument(
        "--resume",
        action="store_true",
        help="resume from the last checkpoint in --checkpoint (fresh run when "
        "there is none); never reprocesses or duplicates recordings",
    )

    query = subparsers.add_parser(
        "query", help="query one stored stream (aggregates, crossings, resampling)"
    )
    query.add_argument("--store", required=True, help="segment store directory")
    query.add_argument("--stream", required=True, help="stream name in the store")
    query.add_argument("--start", type=float, default=None, help="range start (default: stream start)")
    query.add_argument("--end", type=float, default=None, help="range end (default: stream end)")
    query_mode = query.add_mutually_exclusive_group()
    query_mode.add_argument(
        "--window", type=float, default=None, help="tumbling-window length (prints one row per window)"
    )
    query_mode.add_argument(
        "--threshold", type=float, default=None, help="print the threshold's crossing times instead"
    )
    query_mode.add_argument(
        "--zoom", type=int, default=None, metavar="N",
        help="print a zoomed overview of at most N cells (reads the summary pyramid)",
    )
    query.add_argument(
        "--every", type=float, default=None,
        help="with --window: roll the window forward by this step instead of tumbling",
    )
    query.add_argument(
        "--step", type=float, default=None, help="also resample on this regular grid"
    )
    query.add_argument("--dimension", type=int, default=0, help="signal dimension (default 0)")
    query.add_argument(
        "-o", "--output", default=None, help="write the resampled grid to this CSV file"
    )

    compact = subparsers.add_parser(
        "compact", help="merge undersized index blocks of a segment store"
    )
    compact.add_argument("--store", required=True, help="segment store directory")
    compact.add_argument(
        "--stream", default=None, help="compact only this stream (default: all)"
    )

    migrate = subparsers.add_parser(
        "migrate", help="rewrite a segment store into another storage backend"
    )
    migrate.add_argument("--store", required=True, help="segment store directory")
    migrate.add_argument(
        "--to",
        required=True,
        choices=available_backends(),
        help="target storage backend",
    )
    migrate.add_argument(
        "--block-records",
        type=int,
        default=None,
        help="records per index block in the rewritten store "
        "(default: the target backend's default)",
    )
    migrate.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-stream bit-identical read check before the swap",
    )

    verify = subparsers.add_parser(
        "verify", help="check a segment store's on-disk integrity offline"
    )
    verify.add_argument("--store", required=True, help="segment store directory")
    verify.add_argument(
        "--repair",
        action="store_true",
        help="truncate journal and logs to their last consistent prefix and "
        "re-checkpoint the catalog",
    )
    verify.add_argument(
        "--fast",
        action="store_true",
        help="structural checks only (skip the summary/pyramid parity "
        "recompute against a full decode)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a segment store over TCP (ingest, queries, live tails)"
    )
    serve.add_argument("--store", required=True, help="segment store directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7450, help="TCP port (default 7450; 0 = ephemeral)")
    serve.add_argument(
        "--filter",
        default="slide",
        help="filter for streams created over the network (default: slide)",
    )
    _add_precision_arguments(serve)
    serve.add_argument("--max-lag", type=int, default=None, help="m_max_lag bound in points")
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="create/open the store sharded across this many shard stores",
    )
    serve.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="storage backend for a new store (must match an existing store's backend)",
    )
    serve.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="TOKEN=PATTERN[,PATTERN...]",
        help="require client auth; grants TOKEN access to streams matching the "
        "glob patterns (repeatable; bare TOKEN grants every stream)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="max sustained ingest points/s per (client, stream); over-limit "
        "requests get a rate_limit error with a retry hint",
    )
    serve.add_argument(
        "--ingest-queue",
        type=int,
        default=DEFAULT_INGEST_QUEUE,
        help=f"buffered chunks per live stream before clients are throttled "
        f"(default {DEFAULT_INGEST_QUEUE})",
    )
    serve.add_argument(
        "--tail-queue",
        type=int,
        default=DEFAULT_TAIL_QUEUE,
        help=f"pending tail events per subscriber before it is evicted "
        f"(default {DEFAULT_TAIL_QUEUE})",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="snapshot every live filter state here during graceful shutdown",
    )

    evaluate = subparsers.add_parser("evaluate", help="compare filters on one workload")
    _add_workload_arguments(evaluate)
    _add_precision_arguments(evaluate)
    evaluate.add_argument(
        "--filters",
        nargs="+",
        default=list(PAPER_FILTERS),
        help="filter names to compare (default: the paper's four)",
    )

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS), help="experiment to run")

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", help="name of a built-in dataset")
    group.add_argument("--input", help="CSV file with a time column followed by value columns")
    parser.add_argument(
        "--time-column", type=int, default=0, help="index of the time column in the CSV (default 0)"
    )


def _add_precision_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--epsilon", type=float, help="absolute precision width")
    group.add_argument(
        "--precision-percent",
        type=float,
        help="precision width as a percentage of the signal's value range",
    )


def _load_workload(args: argparse.Namespace) -> Tuple[np.ndarray, np.ndarray]:
    if args.dataset:
        times, values = load_dataset(args.dataset)
        return np.asarray(times, dtype=float), np.asarray(values, dtype=float)
    source = CsvSource(args.input, time_column=args.time_column)
    times, values = source.to_arrays()
    if times.size == 0:
        raise SystemExit(f"no data points found in {args.input!r}")
    if values.shape[1] == 1:
        values = values[:, 0]
    return times, values


def _resolve_epsilon(args: argparse.Namespace, values: np.ndarray) -> float:
    if args.epsilon is not None:
        return float(args.epsilon)
    return epsilon_from_percent(args.precision_percent, values)


def _write_recordings(path: str, recordings) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        dimensions = recordings[0].dimensions if recordings else 0
        writer.writerow(["kind", "time"] + [f"x{i + 1}" for i in range(dimensions)])
        for record in recordings:
            writer.writerow([record.kind.value, record.time] + [float(v) for v in record.value])


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _command_filters() -> int:
    rows = [["name"]] + [[name] for name in available_filters()]
    print(render_table(rows))
    return 0


def _command_datasets() -> int:
    rows = [["name", "description"]]
    for entry in dataset_entries():
        rows.append([entry.name, entry.description])
    print(render_table(rows))
    return 0


def _command_compress(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    kwargs = {"max_lag": args.max_lag} if args.max_lag is not None else {}
    stream_filter = create_filter(args.filter, epsilon, **kwargs)
    result = stream_filter.process(zip(times, values))
    approximation = reconstruct(result)
    profile = error_profile(approximation, times, values)

    print(f"filter            : {args.filter}")
    print(f"precision width   : {epsilon:.6g}")
    print(f"data points       : {result.points_processed}")
    print(f"recordings        : {result.recording_count}")
    print(f"compression ratio : {result.compression_ratio:.3f}")
    print(f"mean / max error  : {profile.mean_absolute:.6g} / {profile.max_absolute:.6g}")
    if args.output:
        _write_recordings(args.output, list(result.recordings))
        print(f"recordings written to {args.output}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    if args.name:
        stream_name = args.name
    elif args.dataset:
        stream_name = args.dataset
    else:
        stream_name = Path(args.input).stem
    try:
        # Build and validate every spec before opening the session so a bad
        # filter name, shard count or worker count does not create the store
        # directory as a side effect.
        if args.resume and args.checkpoint is None:
            raise ValueError("--resume requires --checkpoint")
        if args.workers > 1 and not args.split_dimensions:
            raise ValueError(
                "--workers above 1 requires --split-dimensions: a single "
                "stream cannot be partitioned across workers"
            )
        filter_spec = FilterSpec(args.filter, epsilon=epsilon, max_lag=args.max_lag)
        shards = args.shards
        if args.split_dimensions and shards is None:
            shards = DEFAULT_SHARDS
        storage_spec = StorageSpec(shards=shards, backend=args.backend)
        ingest_spec = IngestSpec(
            chunk_size=args.chunk_size,
            workers=args.workers,
            split_dimensions=args.split_dimensions,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
        with repro.open(
            args.store, filter=filter_spec, storage=storage_spec, ingest=ingest_spec
        ) as db:
            report = db.ingest(stream_name, times, values)
    except (KeyError, ValueError, ReproError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"ingest failed: {message}") from error

    if isinstance(report, ParallelIngestReport):
        ratio = report.points / report.recordings if report.recordings else 0.0
        print(f"filter            : {args.filter}")
        print(f"precision width   : {epsilon:.6g}")
        print(f"streams           : {report.streams} -> {args.store} ({report.shards} shards)")
        print(f"workers           : {report.workers}")
        print(f"data points       : {report.points}")
        print(f"recordings        : {report.recordings}")
        print(f"compression ratio : {ratio:.3f}")
        print(f"throughput        : {report.points_per_second:,.0f} points/s")
        return 0
    store_label = args.store if args.shards is None else f"{args.store} ({args.shards} shards)"
    print(f"filter            : {report.filter_name}")
    print(f"precision width   : {epsilon:.6g}")
    print(f"stream            : {stream_name} -> {store_label}")
    print(f"data points       : {report.points}")
    print(f"chunks            : {report.chunks} (chunk size {args.chunk_size})")
    print(f"recordings        : {report.recordings}")
    print(f"compression ratio : {report.compression_ratio:.3f}")
    print(f"throughput        : {report.points_per_second:,.0f} points/s")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    if args.output is not None and args.step is None:
        raise SystemExit("query failed: --output requires --step (it holds the resampled grid)")
    if args.every is not None and args.window is None:
        raise SystemExit("query failed: --every requires --window (it is the rolling step)")
    try:
        db = repro.open(args.store, create=False)
    except FileNotFoundError:
        raise SystemExit(f"query failed: no segment store at {args.store!r}") from None
    except (OSError, ValueError) as error:
        raise SystemExit(f"query failed: {error}") from error
    try:
        entry = db.describe(args.stream)
        print(f"stream            : {args.stream}")
        print(f"recordings        : {entry.recordings}")
        # Aggregates and resampling go through the session facade, which
        # routes stored streams to the block-summary query planner — whole
        # blocks inside the range are answered from their summaries and only
        # boundary blocks are decoded.
        if args.threshold is not None:
            crossings = db.crossings(
                args.stream,
                args.threshold,
                args.start,
                args.end,
                dimension=args.dimension,
            )
            print(f"crossings         : {len(crossings)}")
            for time in crossings:
                print(f"  {time:.12g}")
        elif args.window is not None:
            windows = db.aggregate(
                args.stream,
                args.start,
                args.end,
                window=args.window,
                step=args.every,
                dimension=args.dimension,
            )
            rows = [["start", "end", "min", "max", "mean"]]
            for window in windows:
                rows.append(
                    [
                        f"{window.start:.6g}",
                        f"{window.end:.6g}",
                        f"{window.minimum:.6g}",
                        f"{window.maximum:.6g}",
                        f"{window.mean:.6g}",
                    ]
                )
            print(render_table(rows))
        elif args.zoom is not None:
            cells = db.zoom(
                args.stream,
                args.start,
                args.end,
                max_points=args.zoom,
                dimension=args.dimension,
            )
            rows = [["start", "end", "min", "max", "mean", "level"]]
            for cell in cells:
                rows.append(
                    [
                        f"{cell.start:.6g}",
                        f"{cell.end:.6g}",
                        f"{cell.minimum:.6g}",
                        f"{cell.maximum:.6g}",
                        f"{cell.mean:.6g}",
                        str(cell.level),
                    ]
                )
            print(render_table(rows))
        else:
            aggregate = db.aggregate(
                args.stream, args.start, args.end, dimension=args.dimension
            )
            print(f"range             : {aggregate.start:.12g} .. {aggregate.end:.12g}")
            print(f"minimum           : {aggregate.minimum:.12g}")
            print(f"maximum           : {aggregate.maximum:.12g}")
            print(f"mean              : {aggregate.mean:.12g}")
            print(f"integral          : {aggregate.integral:.12g}")
        if args.step is not None:
            grid_times, grid_values = db.resample(
                args.stream, args.step, args.start, args.end
            )
            if args.output:
                with open(args.output, "w", newline="") as handle:
                    writer = csv.writer(handle)
                    writer.writerow(
                        ["time"] + [f"x{i + 1}" for i in range(grid_values.shape[1])]
                    )
                    for time, row in zip(grid_times, grid_values):
                        writer.writerow([f"{time:.12g}"] + [f"{v:.12g}" for v in row])
                print(f"samples written to {args.output}")
            else:
                for time, row in zip(grid_times, grid_values):
                    print(f"  {time:.12g}  " + "  ".join(f"{v:.12g}" for v in row))
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"query failed: {message}") from error
    finally:
        db.close()
    return 0


def _command_compact(args: argparse.Namespace) -> int:
    # Opening a session would create an empty store at a mistyped path;
    # compaction is maintenance of an *existing* store, so demand one.
    try:
        db = repro.open(args.store, create=False)
    except FileNotFoundError:
        raise SystemExit(f"compact failed: no segment store at {args.store!r}") from None
    except (OSError, ValueError) as error:
        raise SystemExit(f"compact failed: {error}") from error
    try:
        rebuilt = db.compact(args.stream)
    except KeyError as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"compact failed: {message}") from error
    finally:
        db.close()
    rows = [["stream", "blocks before", "blocks after"]]
    for name in sorted(rebuilt):
        before, after = rebuilt[name]
        rows.append([name, str(before), str(after)])
    if rebuilt:
        print(render_table(rows))
    print(f"compacted {len(rebuilt)} stream(s)")
    return 0


def _command_migrate(args: argparse.Namespace) -> int:
    try:
        report = migrate_store(
            args.store,
            args.to,
            block_records=args.block_records,
            verify=not args.no_verify,
        )
    except FileNotFoundError:
        raise SystemExit(f"migrate failed: no segment store at {args.store!r}") from None
    except (KeyError, ValueError, RuntimeError, OSError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"migrate failed: {message}") from error
    if not report.changed:
        print(
            f"store {args.store} already uses the {report.target!r} backend "
            f"({report.streams} stream(s)); nothing to do"
        )
        return 0
    print(f"store             : {args.store}")
    print(f"backend           : {report.source} -> {report.target}")
    print(f"streams           : {report.streams}")
    print(f"recordings        : {report.recordings}")
    verified = f"{len(report.verified)} stream(s) read back bit-identically"
    print(f"verified          : {verified if report.verified else 'skipped'}")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    report = verify_store(args.store, repair=args.repair, parity=not args.fast)
    plain_reports = report.shards if report.shards else [report]
    rows = [["stream", "recordings", "blocks", "status"]]
    for sub in plain_reports:
        prefix = f"{sub.directory.name}/" if report.shards else ""
        for check in sub.streams:
            status = "ok" if check.ok else "; ".join(check.issues)
            rows.append(
                [prefix + check.name, str(check.recordings), str(check.blocks), status]
            )
    if len(rows) > 1:
        print(render_table(rows))
    backend = report.backend or "?"
    streams = sum(len(sub.streams) for sub in plain_reports)
    print(f"store             : {args.store} ({backend})")
    print(f"streams           : {streams}")
    if report.shards:
        generations = ", ".join(str(sub.generation) for sub in report.shards)
        print(f"shard generations : {generations}")
    else:
        print(f"generation        : {report.generation}")
        print(f"journal records   : {report.journal_records}")
    repairs = [action for sub in plain_reports for action in sub.repairs]
    for action in repairs:
        print(f"repaired          : {action}")
    issues = report.all_issues()
    for issue in issues:
        print(f"ISSUE             : {issue}", file=sys.stderr)
    if issues:
        print(f"verification FAILED: {len(issues)} issue(s)", file=sys.stderr)
        return 1
    print("verification passed")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    times, values = _load_workload(args)
    epsilon = _resolve_epsilon(args, values)
    runs = run_filters(times, values, epsilon, filters=args.filters)
    rows = [["filter", "recordings", "ratio", "mean error", "max error"]]
    for name, run in runs.items():
        rows.append(
            [
                name,
                str(run.recordings),
                f"{run.compression_ratio:.3f}",
                f"{run.mean_absolute_error:.6g}",
                f"{run.max_absolute_error:.6g}",
            ]
        )
    print(f"precision width: {epsilon:.6g} ({len(times)} points)")
    print(render_table(rows))
    return 0


def _command_experiment(name: str) -> int:
    series = _EXPERIMENTS[name]()
    print(render_series(series))
    return 0


def _parse_serve_tokens(entries) -> Optional[dict]:
    tokens = {}
    for entry in entries or ():
        token, _, patterns = entry.partition("=")
        if not token:
            raise SystemExit(f"invalid --token {entry!r}: expected TOKEN=PATTERN[,PATTERN...]")
        tokens[token] = [p for p in patterns.split(",") if p] or ["*"]
    return tokens or None


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import StreamDBServer

    filter_spec = FilterSpec(
        args.filter,
        epsilon=args.epsilon,
        epsilon_percent=args.precision_percent,
        max_lag=args.max_lag,
    )
    storage = StorageSpec(backend=args.backend) if args.backend else None
    tokens = _parse_serve_tokens(args.token)

    async def _serve() -> int:
        try:
            db = repro.open(
                args.store, shards=args.shards, filter=filter_spec, storage=storage
            )
        except ReproError as error:
            raise SystemExit(f"serve failed: {error}")
        server = StreamDBServer(
            db,
            args.host,
            args.port,
            tokens=tokens,
            rate_limit=args.rate_limit,
            ingest_queue=args.ingest_queue,
            tail_queue=args.tail_queue,
            checkpoint_dir=args.checkpoint,
        )
        try:
            await server.start()
        except BaseException:
            db.close()
            raise
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        print(f"serving {args.store} on {server.host}:{server.port}", flush=True)
        try:
            await stop.wait()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
            steps = "drain, flush, checkpoint" if args.checkpoint else "drain, flush"
            print(f"shutting down ({steps})", flush=True)
            await server.aclose()
        print("closed", flush=True)
        return 0

    return asyncio.run(_serve())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "filters":
            return _command_filters()
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "compress":
            return _command_compress(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "query":
            return _command_query(args)
        if args.command == "compact":
            return _command_compact(args)
        if args.command == "migrate":
            return _command_migrate(args)
        if args.command == "verify":
            return _command_verify(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "evaluate":
            return _command_evaluate(args)
        if args.command == "experiment":
            return _command_experiment(args.name)
    except BrokenPipeError:
        # The consumer (e.g. `repro query ... | head`) closed the pipe;
        # redirect stdout into the void so the interpreter's shutdown flush
        # does not print a spurious traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
