"""Correlated multi-dimensional random-walk generator (paper §5.4).

The dimensionality experiments use d-dimensional signals whose per-dimension
values follow the same random-walk model as :mod:`repro.data.random_walk`.
Figure 11 uses independent dimensions; Figure 12 generates a 5-dimensional
signal and varies the correlation between its dimensions from 0.1 to 1.

Correlation is induced through a Gaussian copula with a compound-symmetric
(equicorrelated) latent covariance: one latent normal vector drives the step
*direction*, a second independent latent vector drives the step *magnitude*.
At correlation 1 every dimension takes exactly the same steps; at correlation
0 the dimensions are independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

__all__ = ["CorrelatedWalkConfig", "correlated_random_walk"]


@dataclass(frozen=True)
class CorrelatedWalkConfig:
    """Parameters of the correlated multi-dimensional random-walk model.

    Attributes:
        length: Number of data points.
        dimensions: Number of signal dimensions ``d``.
        correlation: Pairwise correlation of the latent Gaussians driving the
            per-dimension steps (0 → independent, 1 → identical steps).
        decrease_probability: Probability ``p`` of a downward step, shared by
            all dimensions.
        max_delta: Upper end ``x`` of the ``U(0, x)`` step-magnitude
            distribution.
        initial_value: Initial value of every dimension.
        time_step: Spacing between consecutive timestamps.
        seed: Seed for the pseudo-random generator.
    """

    length: int = 10_000
    dimensions: int = 2
    correlation: float = 0.0
    decrease_probability: float = 0.5
    max_delta: float = 1.0
    initial_value: float = 0.0
    time_step: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be at least 1")
        if self.dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be within [0, 1]")
        if not 0.0 <= self.decrease_probability <= 1.0:
            raise ValueError("decrease_probability must be within [0, 1]")
        if self.max_delta < 0.0:
            raise ValueError("max_delta must be non-negative")
        if self.time_step <= 0.0:
            raise ValueError("time_step must be positive")


def _equicorrelated_normals(
    rng: np.random.Generator, steps: int, dimensions: int, correlation: float
) -> np.ndarray:
    """Draw ``(steps, dimensions)`` standard normals with pairwise correlation."""
    shared = rng.standard_normal((steps, 1))
    independent = rng.standard_normal((steps, dimensions))
    weight = np.sqrt(correlation)
    complement = np.sqrt(1.0 - correlation)
    return weight * shared + complement * independent


def correlated_random_walk(
    config: CorrelatedWalkConfig = CorrelatedWalkConfig(),
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a correlated d-dimensional random-walk signal.

    Returns:
        ``(times, values)`` where ``times`` has shape ``(n,)`` and ``values``
        has shape ``(n, d)``.
    """
    rng = np.random.default_rng(config.seed)
    times = np.arange(config.length, dtype=float) * config.time_step
    values = np.full((config.length, config.dimensions), config.initial_value, dtype=float)
    if config.length == 1:
        return times, values
    steps = config.length - 1
    direction_normals = _equicorrelated_normals(rng, steps, config.dimensions, config.correlation)
    magnitude_normals = _equicorrelated_normals(rng, steps, config.dimensions, config.correlation)
    direction_uniforms = stats.norm.cdf(direction_normals)
    magnitude_uniforms = stats.norm.cdf(magnitude_normals)
    directions = np.where(direction_uniforms < config.decrease_probability, -1.0, 1.0)
    magnitudes = magnitude_uniforms * config.max_delta
    increments = directions * magnitudes
    values[1:] = config.initial_value + np.cumsum(increments, axis=0)
    return times, values
