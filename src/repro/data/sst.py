"""Sea-surface-temperature surrogate signal (paper §5.2, Figure 6).

The paper's real-world workload is a sea surface temperature series from the
NOAA/PMEL Tropical Atmosphere Ocean (TAO) project: 1285 points sampled every
10 minutes, ranging roughly between 20.5 °C and 24.5 °C, and — quoting the
paper — "continuously going up and down with no regular pattern".

The original download is not available offline, so this module generates a
deterministic surrogate with the same published characteristics: identical
length and sampling interval, a matching value range, a weak diurnal
component, a mean-reverting random-walk component and short-scale measurement
noise.  The filters only ever see ``(t, x)`` pairs, so the surrogate exercises
exactly the same code paths; see ``DESIGN.md`` for the substitution rationale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "SST_POINT_COUNT",
    "SST_SAMPLING_MINUTES",
    "SST_MIN_CELSIUS",
    "SST_MAX_CELSIUS",
    "sea_surface_temperature",
]

#: Number of samples reported in the paper.
SST_POINT_COUNT = 1285
#: Sampling interval reported in the paper (minutes).
SST_SAMPLING_MINUTES = 10.0
#: Approximate value range visible in the paper's Figure 6 (°C).
SST_MIN_CELSIUS = 20.5
SST_MAX_CELSIUS = 24.5


def sea_surface_temperature(
    length: int = SST_POINT_COUNT,
    sampling_minutes: float = SST_SAMPLING_MINUTES,
    seed: int = 2009,
    resolution: float = 0.01,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the surrogate sea-surface-temperature series.

    Args:
        length: Number of samples (defaults to the paper's 1285).
        sampling_minutes: Sampling interval in minutes (defaults to 10).
        seed: Seed controlling the irregular component; the default produces
            the canonical series used throughout the benchmarks.
        resolution: Instrument quantization step in °C (TAO buoys report
            hundredths of a degree); the paper notes the temperature
            "remains fixed frequently enough" to favour the cache filter,
            which only happens with quantized readings.  Pass 0 to disable.

    Returns:
        ``(times, temperatures)``: times in minutes and temperatures in °C.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    if sampling_minutes <= 0.0:
        raise ValueError("sampling_minutes must be positive")
    if resolution < 0.0:
        raise ValueError("resolution must be non-negative")
    rng = np.random.default_rng(seed)
    times = np.arange(length, dtype=float) * sampling_minutes

    minutes_per_day = 24.0 * 60.0
    phase = 2.0 * np.pi * times / minutes_per_day
    # Weak, slowly drifting diurnal cycle (solar heating of the surface).
    diurnal = 0.45 * np.sin(phase - 0.8) + 0.15 * np.sin(2.0 * phase + 0.3)

    # Mean-reverting (Ornstein–Uhlenbeck style) irregular component: the
    # "up and down with no regular pattern" behaviour of Figure 6.
    reversion = 0.01
    drift = np.empty(length)
    drift[0] = 0.0
    shocks = rng.normal(0.0, 0.16, length - 1) if length > 1 else np.empty(0)
    for index in range(1, length):
        drift[index] = drift[index - 1] * (1.0 - reversion) + shocks[index - 1]

    # Short-scale measurement noise.
    noise = rng.normal(0.0, 0.04, length)

    raw = diurnal + drift + noise
    # Rescale into the published range so that "precision width as a % of the
    # range" means the same thing as in the paper.
    raw_min, raw_max = float(raw.min()), float(raw.max())
    if raw_max == raw_min:
        scaled = np.full(length, (SST_MIN_CELSIUS + SST_MAX_CELSIUS) / 2.0)
    else:
        scaled = SST_MIN_CELSIUS + (raw - raw_min) * (
            (SST_MAX_CELSIUS - SST_MIN_CELSIUS) / (raw_max - raw_min)
        )
    if resolution > 0.0:
        scaled = np.round(scaled / resolution) * resolution
    return times, scaled
