"""Workload generators and datasets.

The paper evaluates the filters on one real signal (sea surface temperature
from the NOAA TAO array) and a family of synthetic random-walk signals whose
monotonicity, step magnitude, dimensionality and inter-dimension correlation
are varied.  This subpackage provides:

* :mod:`~repro.data.random_walk` — the paper's single-dimensional synthetic
  generator (§5.3),
* :mod:`~repro.data.correlated` — the multi-dimensional correlated generator
  (§5.4),
* :mod:`~repro.data.sst` — a deterministic surrogate for the sea surface
  temperature series (§5.2; see DESIGN.md for the substitution note),
* :mod:`~repro.data.patterns` — additional deterministic signal shapes used by
  tests and examples,
* :mod:`~repro.data.datasets` — a small registry mapping dataset names to
  generator callables.
"""

from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.data.datasets import available_datasets, load_dataset, register_dataset
from repro.data.patterns import (
    constant_signal,
    ramp_signal,
    sawtooth_signal,
    sine_signal,
    spike_signal,
    step_signal,
)
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.data.sst import SST_POINT_COUNT, SST_SAMPLING_MINUTES, sea_surface_temperature

__all__ = [
    "RandomWalkConfig",
    "random_walk",
    "CorrelatedWalkConfig",
    "correlated_random_walk",
    "sea_surface_temperature",
    "SST_POINT_COUNT",
    "SST_SAMPLING_MINUTES",
    "sine_signal",
    "ramp_signal",
    "step_signal",
    "spike_signal",
    "sawtooth_signal",
    "constant_signal",
    "available_datasets",
    "load_dataset",
    "register_dataset",
]
