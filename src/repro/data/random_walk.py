"""Single-dimensional random-walk signal generator (paper §5.3).

The paper's synthetic signals follow a "random-walk-like model": each data
point is lower than the previous one with probability ``p`` and higher with
probability ``1 - p``; the magnitude of the change is drawn from a uniform
distribution ``U(0, x)`` where ``x`` ("maximum delta") is a configurable
parameter.  Two experiments sweep this model:

* Figure 9 varies ``p`` from 0 (monotonically increasing) to 0.5
  (oscillating), with ``x`` fixed at 400 % of the precision width;
* Figure 10 varies ``x`` from 10 % to 10 000 % of the precision width, with
  ``p`` fixed at 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["RandomWalkConfig", "random_walk"]


@dataclass(frozen=True)
class RandomWalkConfig:
    """Parameters of the paper's random-walk signal model.

    Attributes:
        length: Number of data points to generate.
        decrease_probability: Probability ``p`` that a point is lower than the
            previous one (0 → monotonically increasing, 0.5 → oscillating).
        max_delta: Upper end ``x`` of the ``U(0, x)`` step-magnitude
            distribution.
        initial_value: Value of the first data point.
        time_step: Spacing between consecutive timestamps.
        seed: Seed for the pseudo-random generator (results are
            deterministic for a fixed seed).
    """

    length: int = 10_000
    decrease_probability: float = 0.5
    max_delta: float = 1.0
    initial_value: float = 0.0
    time_step: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be at least 1")
        if not 0.0 <= self.decrease_probability <= 1.0:
            raise ValueError("decrease_probability must be within [0, 1]")
        if self.max_delta < 0.0:
            raise ValueError("max_delta must be non-negative")
        if self.time_step <= 0.0:
            raise ValueError("time_step must be positive")


def random_walk(config: RandomWalkConfig = RandomWalkConfig()) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a random-walk signal.

    Returns:
        ``(times, values)`` — two float arrays of length ``config.length``.
    """
    rng = np.random.default_rng(config.seed)
    times = np.arange(config.length, dtype=float) * config.time_step
    if config.length == 1:
        return times, np.array([config.initial_value], dtype=float)
    directions = np.where(
        rng.random(config.length - 1) < config.decrease_probability, -1.0, 1.0
    )
    magnitudes = rng.uniform(0.0, config.max_delta, config.length - 1)
    steps = directions * magnitudes
    values = np.empty(config.length, dtype=float)
    values[0] = config.initial_value
    values[1:] = config.initial_value + np.cumsum(steps)
    return times, values
