"""Named dataset registry.

Benchmarks, examples and command-line experiments refer to workloads by name.
Every dataset is a callable returning ``(times, values)``; the registry stores
those callables together with a one-line description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.data.patterns import sawtooth_signal, sine_signal, step_signal
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.data.sst import sea_surface_temperature

__all__ = ["DatasetEntry", "register_dataset", "available_datasets", "load_dataset"]

Loader = Callable[[], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class DatasetEntry:
    """A named dataset: its loader plus a human-readable description."""

    name: str
    loader: Loader
    description: str


_REGISTRY: Dict[str, DatasetEntry] = {}


def register_dataset(name: str, loader: Loader, description: str, overwrite: bool = False) -> None:
    """Register a dataset loader under ``name``.

    Raises:
        ValueError: If the name is taken and ``overwrite`` is false.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"dataset {name!r} is already registered")
    _REGISTRY[name] = DatasetEntry(name, loader, description)


def available_datasets() -> List[str]:
    """Return the sorted list of registered dataset names."""
    return sorted(_REGISTRY)


def dataset_entries() -> List[DatasetEntry]:
    """Return all registry entries sorted by name."""
    return [_REGISTRY[name] for name in available_datasets()]


def load_dataset(name: str) -> Tuple[np.ndarray, np.ndarray]:
    """Load the dataset registered under ``name``.

    Raises:
        KeyError: If the name is unknown.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
    return entry.loader()


# --------------------------------------------------------------------------- #
# Built-in datasets
# --------------------------------------------------------------------------- #
register_dataset(
    "sst",
    sea_surface_temperature,
    "Sea-surface-temperature surrogate (1285 points, 10-minute sampling; paper §5.2)",
)
register_dataset(
    "random-walk",
    lambda: random_walk(RandomWalkConfig(length=10_000, decrease_probability=0.5, max_delta=1.0, seed=1)),
    "Oscillating random walk, 10k points (paper §5.3 model, p=0.5)",
)
register_dataset(
    "monotone-walk",
    lambda: random_walk(RandomWalkConfig(length=10_000, decrease_probability=0.0, max_delta=1.0, seed=1)),
    "Monotonically increasing random walk, 10k points (paper §5.3 model, p=0)",
)
register_dataset(
    "correlated-5d",
    lambda: correlated_random_walk(
        CorrelatedWalkConfig(length=5_000, dimensions=5, correlation=0.8, seed=1)
    ),
    "5-dimensional correlated random walk (paper §5.4 model, ρ=0.8)",
)
register_dataset(
    "sine",
    lambda: sine_signal(length=5_000, amplitude=10.0, period=500.0),
    "Smooth sinusoid, 5k points",
)
register_dataset(
    "sawtooth",
    lambda: sawtooth_signal(length=5_000, amplitude=10.0, period=500.0),
    "Triangular wave, 5k points (exactly piece-wise linear)",
)
register_dataset(
    "step",
    lambda: step_signal(length=1_000, low=0.0, high=10.0),
    "Single step function, 1k points",
)
