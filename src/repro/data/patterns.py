"""Deterministic signal shapes used by tests, examples and ablations.

These generators complement the stochastic workloads of
:mod:`repro.data.random_walk`: each produces a simple analytic shape whose
optimal piece-wise linear behaviour is easy to reason about (a ramp needs one
segment, a step needs two, a sine needs roughly one segment per monotone
run, …), which makes them useful for unit tests and documentation examples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "constant_signal",
    "ramp_signal",
    "step_signal",
    "sine_signal",
    "sawtooth_signal",
    "spike_signal",
]


def _times(length: int, time_step: float) -> np.ndarray:
    if length < 1:
        raise ValueError("length must be at least 1")
    if time_step <= 0.0:
        raise ValueError("time_step must be positive")
    return np.arange(length, dtype=float) * time_step


def constant_signal(length: int = 100, value: float = 1.0, time_step: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """A perfectly flat signal (one cache recording suffices)."""
    times = _times(length, time_step)
    return times, np.full(length, float(value))


def ramp_signal(
    length: int = 100, slope: float = 1.0, intercept: float = 0.0, time_step: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """A straight line (one linear segment suffices)."""
    times = _times(length, time_step)
    return times, intercept + slope * times


def step_signal(
    length: int = 100, low: float = 0.0, high: float = 10.0, step_at: int = None, time_step: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """A single step from ``low`` to ``high`` at index ``step_at`` (default middle)."""
    times = _times(length, time_step)
    if step_at is None:
        step_at = length // 2
    if not 0 <= step_at <= length:
        raise ValueError("step_at must fall within the signal")
    values = np.full(length, float(low))
    values[step_at:] = float(high)
    return times, values


def sine_signal(
    length: int = 1000, amplitude: float = 1.0, period: float = 100.0, time_step: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """A sinusoid with the given amplitude and period."""
    if period <= 0.0:
        raise ValueError("period must be positive")
    times = _times(length, time_step)
    return times, amplitude * np.sin(2.0 * np.pi * times / period)


def sawtooth_signal(
    length: int = 1000, amplitude: float = 1.0, period: float = 100.0, time_step: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    """A triangular (zig-zag) wave: piece-wise linear by construction."""
    if period <= 0.0:
        raise ValueError("period must be positive")
    times = _times(length, time_step)
    phase = (times % period) / period
    triangle = 2.0 * np.abs(2.0 * phase - 1.0) - 1.0
    return times, amplitude * triangle


def spike_signal(
    length: int = 200,
    base: float = 0.0,
    spike_height: float = 50.0,
    spike_every: int = 50,
    time_step: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """A flat signal with isolated spikes every ``spike_every`` samples."""
    if spike_every < 1:
        raise ValueError("spike_every must be at least 1")
    times = _times(length, time_step)
    values = np.full(length, float(base))
    values[::spike_every] = base + spike_height
    return times, values
