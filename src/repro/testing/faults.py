"""Injectable OS-call shim for crash and fault testing.

The storage stack routes its durability-critical OS calls — data writes,
fsyncs, atomic replaces, truncations, directory syncs — through the thin
wrappers in this module instead of calling :mod:`os` directly.  With no
injector installed (the default, and the production path) each wrapper is
a plain pass-through.  Tests install a :class:`FaultInjector` to

* fail the k-th matching call with a chosen ``errno`` (ENOSPC, EINTR, ...),
* tear a write (persist only a prefix of the payload, then fail),
* kill the process outright (``os._exit``) at any call or at a named
  crash point,

which is what drives the cross-backend crash-matrix suite: enumerate the
shim calls an operation makes (:attr:`FaultInjector.trace`), then replay
the operation once per call index with a fault at that index and assert
the store recovers to a consistent prefix.

Child processes inherit fault plans through the environment: serialize a
plan with :func:`plan_env` and the module installs it at import time via
:func:`install_from_env` (the storage modules import this module, so any
``repro`` subprocess picks the plan up with no code changes).
"""

from __future__ import annotations

import errno as _errno
import json
import os
import threading
from dataclasses import asdict, dataclass, field
from typing import IO, Iterator, List, Optional, Tuple, Union

__all__ = [
    "ENV_PLAN",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "install",
    "uninstall",
    "active",
    "injected",
    "plan_env",
    "install_from_env",
    "write",
    "fsync",
    "replace",
    "rename",
    "truncate",
    "fsync_dir",
    "crash_point",
]

#: Environment variable carrying a JSON fault plan for child processes.
ENV_PLAN = "REPRO_FAULT_PLAN"

#: Shim operation names (`op` values seen by rules and traces).
OPS = ("write", "fsync", "replace", "rename", "truncate", "fsync_dir", "crash_point")


class InjectedFault(OSError):
    """An OSError raised by the fault shim (never by the real OS)."""


@dataclass
class FaultRule:
    """Fail the ``index``-th shim call matching ``op``/``path``.

    ``op`` is one of :data:`OPS` or ``"*"``; ``path`` is a substring of the
    call's target path (``""`` matches everything).  ``action``:

    * ``"raise"`` — raise :class:`InjectedFault` with ``errno_code``;
    * ``"torn"``  — for writes, persist only ``keep_bytes`` of the payload,
      then raise (other ops treat it like ``"raise"``);
    * ``"exit"``  — ``os._exit(exit_code)``: an un-trappable crash.

    A rule fires at most once.
    """

    op: str = "*"
    path: str = ""
    index: int = 0
    action: str = "raise"
    errno_code: int = _errno.EIO
    exit_code: int = 23
    keep_bytes: int = 0
    _seen: int = field(default=0, repr=False, compare=False)
    _fired: bool = field(default=False, repr=False, compare=False)

    def matches(self, op: str, path: str) -> bool:
        if self._fired:
            return False
        if self.op != "*" and self.op != op:
            return False
        return self.path in path

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload.pop("_seen")
        payload.pop("_fired")
        return payload


class FaultInjector:
    """Holds fault rules and a trace of every shim call seen.

    ``exit_at_count`` kills the process at the n-th shim call overall
    (1-based), independent of any rule — the exhaustive crash matrix uses
    a clean dry run's call count to sweep this across every index.
    """

    def __init__(
        self,
        rules: Optional[List[FaultRule]] = None,
        *,
        exit_at_count: Optional[int] = None,
        exit_code: int = 23,
    ) -> None:
        self.rules = list(rules or [])
        self.exit_at_count = exit_at_count
        self.exit_code = exit_code
        self.calls = 0
        self.trace: List[Tuple[str, str]] = []
        self._lock = threading.Lock()

    # -- plan (de)serialization for subprocess children --------------------
    def to_plan(self) -> dict:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "exit_at_count": self.exit_at_count,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_plan(cls, plan: dict) -> "FaultInjector":
        return cls(
            [FaultRule(**rule) for rule in plan.get("rules", [])],
            exit_at_count=plan.get("exit_at_count"),
            exit_code=plan.get("exit_code", 23),
        )

    # -- the decision point -------------------------------------------------
    def check(self, op: str, path: str) -> Optional[FaultRule]:
        """Record one shim call; return the rule to apply, if any.

        ``exit`` actions (and ``exit_at_count``) do not return — they kill
        the process on the spot, which is the point.
        """
        with self._lock:
            self.calls += 1
            self.trace.append((op, path))
            if self.exit_at_count is not None and self.calls == self.exit_at_count:
                os._exit(self.exit_code)
            for rule in self.rules:
                if not rule.matches(op, path):
                    continue
                if rule._seen == rule.index:
                    rule._fired = True
                    if rule.action == "exit":
                        os._exit(rule.exit_code)
                    return rule
                rule._seen += 1
        return None


_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


class injected:
    """Context manager: install an injector for the duration of a block."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def __enter__(self) -> FaultInjector:
        return install(self.injector)

    def __exit__(self, *exc_info: object) -> None:
        uninstall()


def plan_env(injector: FaultInjector) -> dict:
    """Environment overlay that installs ``injector``'s plan in a child."""
    return {ENV_PLAN: json.dumps(injector.to_plan())}


def install_from_env() -> Optional[FaultInjector]:
    """Install the plan serialized in :data:`ENV_PLAN`, if present."""
    raw = os.environ.get(ENV_PLAN)
    if not raw:
        return None
    return install(FaultInjector.from_plan(json.loads(raw)))


def _raise(rule: FaultRule, op: str, path: str) -> None:
    raise InjectedFault(
        rule.errno_code,
        "injected %s fault (%s)" % (op, os.strerror(rule.errno_code)),
        path or None,
    )


def _path_of(handle: IO[bytes], path: Optional[Union[str, os.PathLike]]) -> str:
    if path is not None:
        return str(path)
    return str(getattr(handle, "name", ""))


# --------------------------------------------------------------------------- #
# The shim wrappers — pass-throughs unless an injector is active.
# --------------------------------------------------------------------------- #


def write(handle: IO[bytes], data: bytes, *, path: Optional[Union[str, os.PathLike]] = None) -> int:
    """``handle.write(data)``, faultable (including torn prefixes)."""
    injector = _ACTIVE
    if injector is not None:
        target = _path_of(handle, path)
        rule = injector.check("write", target)
        if rule is not None:
            if rule.action == "torn" and rule.keep_bytes > 0:
                kept = data[: rule.keep_bytes]
                handle.write(kept)
                handle.flush()
            _raise(rule, "write", target)
    return handle.write(data)


def fsync(handle: IO[bytes], *, path: Optional[Union[str, os.PathLike]] = None) -> None:
    """``flush`` + ``os.fsync`` of an open handle, faultable."""
    injector = _ACTIVE
    if injector is not None:
        target = _path_of(handle, path)
        rule = injector.check("fsync", target)
        if rule is not None:
            _raise(rule, "fsync", target)
    handle.flush()
    os.fsync(handle.fileno())


def replace(src: Union[str, os.PathLike], dst: Union[str, os.PathLike]) -> None:
    """``os.replace(src, dst)``, faultable (fault = rename never happened)."""
    injector = _ACTIVE
    if injector is not None:
        rule = injector.check("replace", str(dst))
        if rule is not None:
            _raise(rule, "replace", str(dst))
    os.replace(src, dst)


def rename(src: Union[str, os.PathLike], dst: Union[str, os.PathLike]) -> None:
    """``os.rename(src, dst)``, faultable."""
    injector = _ACTIVE
    if injector is not None:
        rule = injector.check("rename", str(dst))
        if rule is not None:
            _raise(rule, "rename", str(dst))
    os.rename(src, dst)


def truncate(
    handle: IO[bytes], size: int, *, path: Optional[Union[str, os.PathLike]] = None
) -> None:
    """``handle.truncate(size)``, faultable."""
    injector = _ACTIVE
    if injector is not None:
        target = _path_of(handle, path)
        rule = injector.check("truncate", target)
        if rule is not None:
            _raise(rule, "truncate", target)
    handle.truncate(size)


def fsync_dir(path: Union[str, os.PathLike]) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Platforms that cannot open directories (Windows) are silently skipped;
    the injected-fault path still fires first so tests exercise callers'
    handling either way.
    """
    injector = _ACTIVE
    if injector is not None:
        rule = injector.check("fsync_dir", str(path))
        if rule is not None:
            _raise(rule, "fsync_dir", str(path))
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def crash_point(name: str) -> None:
    """A named no-op marker; an ``exit`` rule here kills the process."""
    injector = _ACTIVE
    if injector is not None:
        rule = injector.check("crash_point", name)
        if rule is not None:
            _raise(rule, "crash_point", name)


def iter_trace(injector: FaultInjector) -> Iterator[Tuple[int, str, str]]:
    """Enumerate a recorded trace as ``(1-based index, op, path)``."""
    for position, (op, path) in enumerate(injector.trace, start=1):
        yield position, op, path


# Child processes spawned with a serialized plan in the environment pick it
# up as soon as any storage module imports this one.
install_from_env()
