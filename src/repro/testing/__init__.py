"""Test-support utilities shipped with the package.

Only :mod:`repro.testing.faults` lives here for now — the injectable OS
shim the storage stack routes its durability-critical calls through, so
crash-matrix tests can fail or kill the process at any write/fsync/replace.
"""

from repro.testing import faults

__all__ = ["faults"]
