"""repro — online piece-wise linear approximation of numerical streams.

A production-quality reproduction of *"Online Piece-wise Linear Approximation
of Numerical Streams with Precision Guarantees"* (Elmeleegy, Elmagarmid,
Cecchet, Aref and Zwaenepoel, VLDB 2009).

The package provides:

* the paper's **swing** and **slide** filters plus the **cache** and
  **linear** baselines (:mod:`repro.core`),
* receiver-side reconstruction and encoding (:mod:`repro.approximation`),
* a transmitter/receiver streaming substrate (:mod:`repro.streams`),
* synthetic workload generators and a sea-surface-temperature surrogate
  (:mod:`repro.data`),
* a vectorized batch ingestion pipeline with pluggable recording sinks
  (:mod:`repro.pipeline`),
* a multi-process, async, checkpointable ingestion runtime built on
  snapshot/restorable filter state (:mod:`repro.runtime`),
* compression / error / timing metrics (:mod:`repro.metrics`),
* the experiment harness regenerating every figure of the paper's evaluation
  (:mod:`repro.evaluation`), and
* related-work baselines used for ablations (:mod:`repro.extensions`).

Quick start::

    import numpy as np
    from repro import SwingFilter, SlideFilter, reconstruct

    times = np.arange(100.0)
    values = np.sin(times / 5.0)
    result = SlideFilter(epsilon=0.05).process(zip(times, values))
    approx = reconstruct(result)
    print(result.compression_ratio, approx.max_absolute_error(zip(times, values)))
"""

from repro.approximation import (
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
    reconstruct,
)
from repro.core import (
    PAPER_FILTERS,
    CacheFilter,
    DataPoint,
    DisconnectedLinearFilter,
    ErrorBound,
    FilterResult,
    LinearFilter,
    MeanCacheFilter,
    MidrangeCacheFilter,
    Recording,
    RecordingKind,
    Segment,
    SlideFilter,
    StreamFilter,
    SwingFilter,
    available_filters,
    create_filter,
    epsilon_from_percent,
    paper_filters,
    register_filter,
)
from repro.pipeline import BatchIngestor, IngestReport, ListSink, StoreSink

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "StreamFilter",
    "CacheFilter",
    "MidrangeCacheFilter",
    "MeanCacheFilter",
    "LinearFilter",
    "DisconnectedLinearFilter",
    "SwingFilter",
    "SlideFilter",
    "ErrorBound",
    "epsilon_from_percent",
    "DataPoint",
    "Recording",
    "RecordingKind",
    "Segment",
    "FilterResult",
    "PiecewiseLinearApproximation",
    "PiecewiseConstantApproximation",
    "reconstruct",
    "available_filters",
    "create_filter",
    "register_filter",
    "paper_filters",
    "PAPER_FILTERS",
    "BatchIngestor",
    "IngestReport",
    "ListSink",
    "StoreSink",
]
