"""repro — online piece-wise linear approximation of numerical streams.

A production-quality reproduction of *"Online Piece-wise Linear Approximation
of Numerical Streams with Precision Guarantees"* (Elmeleegy, Elmagarmid,
Cecchet, Aref and Zwaenepoel, VLDB 2009).

The package provides:

* the paper's **swing** and **slide** filters plus the **cache** and
  **linear** baselines (:mod:`repro.core`),
* receiver-side reconstruction and encoding (:mod:`repro.approximation`),
* a transmitter/receiver streaming substrate (:mod:`repro.streams`),
* synthetic workload generators and a sea-surface-temperature surrogate
  (:mod:`repro.data`),
* a vectorized batch ingestion pipeline with pluggable recording sinks
  (:mod:`repro.pipeline`),
* a multi-process, async, checkpointable ingestion runtime built on
  snapshot/restorable filter state (:mod:`repro.runtime`),
* compression / error / timing metrics (:mod:`repro.metrics`),
* the experiment harness regenerating every figure of the paper's evaluation
  (:mod:`repro.evaluation`),
* related-work baselines used for ablations (:mod:`repro.extensions`), and
* **the session façade tying it all together** (:mod:`repro.api`):
  :func:`repro.open` returns a :class:`StreamDB` that ingests, archives and
  queries streams through one object.

Quick start::

    import numpy as np
    import repro

    times = np.arange(10_000.0)
    values = np.sin(times / 50.0)
    with repro.open("./archive", filter=repro.FilterSpec("slide", epsilon=0.05)) as db:
        db.ingest("sensor", times, values)
        agg = db.aggregate("sensor", 100.0, 5_000.0)
        print(agg.mean, agg.minimum, agg.maximum)

The filters remain directly usable for library-style workflows::

    from repro import SlideFilter, reconstruct

    result = SlideFilter(epsilon=0.05).process(zip(times, values))
    approx = reconstruct(result)
"""

from repro.api import FilterSpec, IngestSpec, StorageSpec, StreamDB, open
from repro.approximation import (
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
    reconstruct,
)
from repro.core import (
    PAPER_FILTERS,
    CacheFilter,
    DataPoint,
    DisconnectedLinearFilter,
    ErrorBound,
    FilterResult,
    FilterState,
    LinearFilter,
    MeanCacheFilter,
    MidrangeCacheFilter,
    Recording,
    RecordingKind,
    Segment,
    SlideFilter,
    StreamFilter,
    SwingFilter,
    available_filters,
    create_filter,
    epsilon_from_percent,
    paper_filters,
    register_filter,
    restore_filter,
)
from repro.pipeline import BatchIngestor, IngestReport, ListSink, StoreSink
from repro.runtime import CheckpointManager, IngestCheckpoint, ParallelIngestor, StreamTask
from repro.storage import (
    DEFAULT_SHARDS,
    SegmentStore,
    ShardedStore,
    StoreLike,
    open_store,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # Session façade (repro.api).  `repro.open` is the documented entry
    # point but is deliberately NOT in __all__: a star import must never
    # shadow the builtin open() with a function that creates directories.
    "StreamDB",
    "FilterSpec",
    "StorageSpec",
    "IngestSpec",
    # Filters (repro.core)
    "StreamFilter",
    "CacheFilter",
    "MidrangeCacheFilter",
    "MeanCacheFilter",
    "LinearFilter",
    "DisconnectedLinearFilter",
    "SwingFilter",
    "SlideFilter",
    "ErrorBound",
    "epsilon_from_percent",
    "DataPoint",
    "Recording",
    "RecordingKind",
    "Segment",
    "FilterResult",
    "FilterState",
    "available_filters",
    "create_filter",
    "register_filter",
    "restore_filter",
    "paper_filters",
    "PAPER_FILTERS",
    # Reconstruction (repro.approximation)
    "PiecewiseLinearApproximation",
    "PiecewiseConstantApproximation",
    "reconstruct",
    # Ingestion engines (repro.pipeline / repro.runtime)
    "BatchIngestor",
    "IngestReport",
    "ListSink",
    "StoreSink",
    "ParallelIngestor",
    "StreamTask",
    "CheckpointManager",
    "IngestCheckpoint",
    # Storage (repro.storage)
    "open_store",
    "SegmentStore",
    "ShardedStore",
    "StoreLike",
    "DEFAULT_SHARDS",
]
