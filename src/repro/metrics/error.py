"""Error metrics for reconstructed approximations (paper §5.1).

The paper reports the *average error* — the sum of per-sample absolute errors
divided by the number of samples — expressed as a percentage of the signal's
value range, alongside the guaranteed maximum (the prescribed precision
width).  These helpers compute both for any
:class:`~repro.approximation.piecewise.Approximation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.types import ensure_points

__all__ = [
    "signal_range",
    "average_error",
    "max_error",
    "average_error_percent_of_range",
    "error_profile",
    "ErrorProfile",
]


def signal_range(values: Union[np.ndarray, Iterable]) -> float:
    """Return ``max - min`` over all values (all dimensions pooled)."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute the range of an empty signal")
    return float(array.max() - array.min())


def _point_errors(approximation: Approximation, times, values) -> np.ndarray:
    points = list(zip(np.asarray(times, dtype=float), values))
    deviations = approximation.deviations(points)
    return np.abs(deviations)


def average_error(approximation: Approximation, times, values) -> float:
    """Mean absolute error over all samples (and dimensions)."""
    errors = _point_errors(approximation, times, values)
    if errors.size == 0:
        return 0.0
    return float(errors.mean())


def max_error(approximation: Approximation, times, values) -> float:
    """Maximum absolute error over all samples (and dimensions)."""
    errors = _point_errors(approximation, times, values)
    if errors.size == 0:
        return 0.0
    return float(errors.max())


def average_error_percent_of_range(approximation: Approximation, times, values) -> float:
    """Average error expressed as a percentage of the signal's range (§5.2)."""
    value_range = signal_range(values)
    if value_range == 0.0:
        return 0.0
    return 100.0 * average_error(approximation, times, values) / value_range


@dataclass(frozen=True)
class ErrorProfile:
    """Summary of an approximation's deviation from the original signal."""

    mean_absolute: float
    max_absolute: float
    root_mean_square: float
    mean_percent_of_range: float
    max_percent_of_range: float


def error_profile(approximation: Approximation, times, values) -> ErrorProfile:
    """Compute the full error summary in one pass."""
    errors = _point_errors(approximation, times, values)
    if errors.size == 0:
        return ErrorProfile(0.0, 0.0, 0.0, 0.0, 0.0)
    value_range = signal_range(values)
    mean_abs = float(errors.mean())
    max_abs = float(errors.max())
    rms = float(np.sqrt(np.mean(errors**2)))
    if value_range == 0.0:
        return ErrorProfile(mean_abs, max_abs, rms, 0.0, 0.0)
    return ErrorProfile(
        mean_absolute=mean_abs,
        max_absolute=max_abs,
        root_mean_square=rms,
        mean_percent_of_range=100.0 * mean_abs / value_range,
        max_percent_of_range=100.0 * max_abs / value_range,
    )
