"""Per-point processing-time measurement (paper §5.5, Figure 13).

The paper measures the filtering overhead by feeding an in-memory signal to
each filter, subtracting the time of a no-op pass, and dividing by the number
of processed points.  :func:`measure_filter_overhead` reproduces that
procedure; the absolute numbers depend on the host, the *shape* of the curves
(constant-time filters stay flat as the precision width grows, the
non-optimized slide filter does not) is what the overhead benchmark asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.base import StreamFilter

__all__ = ["TimingResult", "measure_filter_overhead", "baseline_pass_seconds"]


@dataclass(frozen=True)
class TimingResult:
    """Outcome of one overhead measurement.

    Attributes:
        filter_name: Name of the measured filter.
        points: Number of data points per pass.
        repeats: Number of measured passes.
        total_seconds: Wall-clock time of all filtering passes combined.
        baseline_seconds: Wall-clock time of the no-op passes (stream
            iteration without filtering).
        microseconds_per_point: Net overhead per data point in µs.
    """

    filter_name: str
    points: int
    repeats: int
    total_seconds: float
    baseline_seconds: float
    microseconds_per_point: float


def baseline_pass_seconds(times: np.ndarray, values: np.ndarray, repeats: int) -> float:
    """Time ``repeats`` passes over the stream without any filtering."""
    start = time.perf_counter()
    for _ in range(repeats):
        for _point in zip(times, values):
            pass
    return time.perf_counter() - start


def measure_filter_overhead(
    filter_factory: Callable[[], StreamFilter],
    times: Sequence[float],
    values: Sequence[float],
    repeats: int = 3,
    filter_name: str = None,
) -> TimingResult:
    """Measure the per-point overhead of a filter on an in-memory signal.

    Args:
        filter_factory: Zero-argument callable building a fresh filter for
            each pass (filters are single-use).
        times: Timestamps of the signal.
        values: Values of the signal (scalar or vector per point).
        repeats: Number of passes to average over.
        filter_name: Label for the result (defaults to the filter's ``name``).

    Raises:
        ValueError: If ``repeats`` is smaller than 1 or the signal is empty.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("cannot measure overhead on an empty signal")
    values = np.asarray(values, dtype=float)

    baseline = baseline_pass_seconds(times, values, repeats)

    total = 0.0
    name = filter_name
    for _ in range(repeats):
        stream_filter = filter_factory()
        if name is None:
            name = stream_filter.name
        start = time.perf_counter()
        for point in zip(times, values):
            stream_filter.feed(point[0], point[1])
        stream_filter.finish()
        total += time.perf_counter() - start

    net_seconds = max(total - baseline, 0.0)
    per_point = net_seconds / (repeats * times.size)
    return TimingResult(
        filter_name=name or "filter",
        points=int(times.size),
        repeats=repeats,
        total_seconds=total,
        baseline_seconds=baseline,
        microseconds_per_point=per_point * 1e6,
    )
