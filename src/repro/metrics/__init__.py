"""Evaluation metrics (paper §5.1).

* :mod:`~repro.metrics.compression` — compression ratio and recording
  accounting, including the independent-vs-joint dimensionality correction of
  §5.4.
* :mod:`~repro.metrics.error` — average / maximum error of an approximation
  against the original signal, expressed absolutely or as a percentage of the
  signal range.
* :mod:`~repro.metrics.timing` — per-data-point processing-time measurement
  used by the overhead experiment (Figure 13).
"""

from repro.metrics.compression import (
    compression_ratio,
    independent_equivalent_ratio,
    recordings_for_run,
)
from repro.metrics.error import (
    average_error,
    average_error_percent_of_range,
    error_profile,
    max_error,
    signal_range,
)
from repro.metrics.timing import TimingResult, measure_filter_overhead

__all__ = [
    "compression_ratio",
    "recordings_for_run",
    "independent_equivalent_ratio",
    "average_error",
    "max_error",
    "average_error_percent_of_range",
    "signal_range",
    "error_profile",
    "TimingResult",
    "measure_filter_overhead",
]
