"""Compression-ratio accounting (paper §5.1 and §5.4).

The paper defines the compression ratio as the number of recordings needed
*without* filtering (one per data point) divided by the number of recordings
made by the filter.  Connected line segments cost one recording each;
disconnected segments cost two; piece-wise constant (cache) output costs one
recording per interval.
"""

from __future__ import annotations

from typing import Union

from repro.core.types import FilterResult

__all__ = [
    "recordings_for_run",
    "compression_ratio",
    "independent_equivalent_ratio",
]


def recordings_for_run(result: Union[FilterResult, int]) -> int:
    """Return the recording count of a filter run (or pass an int through)."""
    if isinstance(result, FilterResult):
        return result.recording_count
    return int(result)


def compression_ratio(result: Union[FilterResult, int], point_count: int = None) -> float:
    """Compression ratio = data points / recordings.

    Args:
        result: A :class:`FilterResult` (in which case ``point_count`` is
            optional and taken from the result) or a recording count.
        point_count: Number of original data points; required when ``result``
            is a plain recording count.

    Raises:
        ValueError: If the point count cannot be determined.
    """
    recordings = recordings_for_run(result)
    if point_count is None:
        if not isinstance(result, FilterResult):
            raise ValueError("point_count is required when result is a recording count")
        point_count = result.points_processed
    if recordings == 0:
        return float("inf") if point_count else 0.0
    return point_count / recordings


def independent_equivalent_ratio(single_dimension_ratio: float, dimensions: int) -> float:
    """Effective ratio when each dimension is compressed independently (§5.4).

    Compressing ``d`` dimensions separately repeats the time field once per
    dimension.  Assuming the time field is as large as one value field, the
    paper derives the correction factor ``(d + 1) / (2 d)``: a per-dimension
    ratio of ``r`` is worth only ``r · (d + 1) / (2 d)`` compared to joint
    compression of the d-dimensional signal.

    Args:
        single_dimension_ratio: Compression ratio achieved on one dimension
            compressed in isolation.
        dimensions: Number of dimensions ``d`` of the full signal.

    Raises:
        ValueError: If ``dimensions`` is smaller than 1.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be at least 1")
    return single_dimension_ratio * (dimensions + 1) / (2.0 * dimensions)
