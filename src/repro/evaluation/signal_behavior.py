"""Effect of the signal behaviour (paper §5.3, Figures 9–10).

Both experiments use the paper's random-walk model
(:mod:`repro.data.random_walk`):

* Figure 9 sweeps the probability of a downward step ``p`` from 0 to 0.5 with
  the maximum step magnitude fixed at 400 % of the precision width;
* Figure 10 sweeps the maximum step magnitude from 10 % to 10 000 % of the
  precision width (log grid) with ``p`` fixed at 0.5.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.registry import PAPER_FILTERS
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.evaluation.experiments import ExperimentSeries, run_filters

__all__ = [
    "MONOTONICITY_PROBABILITIES",
    "DELTA_PERCENTS",
    "compression_vs_monotonicity",
    "compression_vs_delta",
]

#: Figure 9's sweep of the probability of a decrease per data point.
MONOTONICITY_PROBABILITIES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Figure 10's sweep of the maximum delta, as a percentage of the precision width.
DELTA_PERCENTS = (10.0, 31.6, 100.0, 316.0, 1000.0, 3160.0, 10000.0)

#: Default precision width used for the synthetic experiments (absolute units).
DEFAULT_EPSILON = 1.0


def compression_vs_monotonicity(
    probabilities: Sequence[float] = MONOTONICITY_PROBABILITIES,
    epsilon: float = DEFAULT_EPSILON,
    delta_percent_of_epsilon: float = 400.0,
    length: int = 10_000,
    seed: int = 7,
    filters: Iterable[str] = PAPER_FILTERS,
) -> ExperimentSeries:
    """Figure 9: compression ratio vs degree of monotonicity.

    Args:
        probabilities: Values of ``p`` (probability of a downward step).
        epsilon: Absolute precision width used by every filter.
        delta_percent_of_epsilon: Maximum step magnitude as % of ε (400 % in
            the paper).
        length: Number of data points per generated signal.
        seed: Base random seed (each ``p`` uses a derived seed).
        filters: Registered filter names to evaluate.
    """
    series = ExperimentSeries(
        name="figure9",
        title="Figure 9: effect of the degree of monotonicity",
        x_label="probability of decrease per data point",
        x_values=list(probabilities),
        y_label="compression ratio",
        metadata={
            "epsilon": epsilon,
            "max_delta_percent_of_epsilon": delta_percent_of_epsilon,
            "points": length,
        },
    )
    max_delta = epsilon * delta_percent_of_epsilon / 100.0
    for index, probability in enumerate(probabilities):
        times, values = random_walk(
            RandomWalkConfig(
                length=length,
                decrease_probability=probability,
                max_delta=max_delta,
                seed=seed + index,
            )
        )
        runs = run_filters(times, values, epsilon, filters=filters)
        for name, run in runs.items():
            series.add(name, run.compression_ratio)
    return series


def compression_vs_delta(
    delta_percents: Sequence[float] = DELTA_PERCENTS,
    epsilon: float = DEFAULT_EPSILON,
    decrease_probability: float = 0.5,
    length: int = 10_000,
    seed: int = 11,
    filters: Iterable[str] = PAPER_FILTERS,
) -> ExperimentSeries:
    """Figure 10: compression ratio vs magnitude of change per data point.

    Args:
        delta_percents: Maximum step magnitudes as % of ε (log grid in the
            paper, 10 % … 10 000 %).
        epsilon: Absolute precision width used by every filter.
        decrease_probability: ``p`` of the random walk (0.5 in the paper).
        length: Number of data points per generated signal.
        seed: Base random seed (each delta uses a derived seed).
        filters: Registered filter names to evaluate.
    """
    series = ExperimentSeries(
        name="figure10",
        title="Figure 10: effect of the magnitude of change per data point",
        x_label="maximum delta (% of precision width)",
        x_values=list(delta_percents),
        y_label="compression ratio",
        metadata={
            "epsilon": epsilon,
            "decrease_probability": decrease_probability,
            "points": length,
        },
    )
    for index, percent in enumerate(delta_percents):
        times, values = random_walk(
            RandomWalkConfig(
                length=length,
                decrease_probability=decrease_probability,
                max_delta=epsilon * percent / 100.0,
                seed=seed + index,
            )
        )
        runs = run_filters(times, values, epsilon, filters=filters)
        for name, run in runs.items():
            series.add(name, run.compression_ratio)
    return series
