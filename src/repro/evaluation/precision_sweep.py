"""Effect of the precision width on the SST signal (paper §5.2, Figures 7–8).

The precision width ε is swept over the same grid the paper uses — 0.1 %,
0.316 %, 1 %, 3.16 % and 10 % of the signal's value range — and, for every
filter, the compression ratio (Figure 7) and the average error as a percentage
of the range (Figure 8) are reported.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import PAPER_FILTERS
from repro.data.sst import sea_surface_temperature
from repro.evaluation.experiments import ExperimentSeries, run_filters

__all__ = ["PRECISION_PERCENTS", "compression_vs_precision", "error_vs_precision", "precision_sweep"]

#: The paper's precision-width grid (% of the signal range), Figures 7/8/13.
PRECISION_PERCENTS = (0.1, 0.316, 1.0, 3.16, 10.0)


def _workload(times, values) -> Tuple[np.ndarray, np.ndarray]:
    if times is None or values is None:
        return sea_surface_temperature()
    return np.asarray(times, dtype=float), np.asarray(values, dtype=float)


def precision_sweep(
    times: Optional[Sequence[float]] = None,
    values: Optional[Sequence[float]] = None,
    percents: Sequence[float] = PRECISION_PERCENTS,
    filters: Iterable[str] = PAPER_FILTERS,
) -> Tuple[ExperimentSeries, ExperimentSeries]:
    """Run the precision sweep and return the (Figure 7, Figure 8) series.

    Args:
        times: Workload timestamps (defaults to the SST surrogate).
        values: Workload values (defaults to the SST surrogate).
        percents: Precision widths as percentages of the signal range.
        filters: Registered filter names to evaluate.
    """
    times, values = _workload(times, values)
    compression = ExperimentSeries(
        name="figure7",
        title="Figure 7: compression ratio for the sea surface temperature",
        x_label="precision width (% of range)",
        x_values=list(percents),
        y_label="compression ratio",
        metadata={"points": int(len(times))},
    )
    error = ExperimentSeries(
        name="figure8",
        title="Figure 8: average error for the sea surface temperature",
        x_label="precision width (% of range)",
        x_values=list(percents),
        y_label="average error (% of range)",
        metadata={"points": int(len(times))},
    )
    for percent in percents:
        epsilon = epsilon_from_percent(percent, values)
        runs = run_filters(times, values, epsilon, filters=filters)
        for name, run in runs.items():
            compression.add(name, run.compression_ratio)
            error.add(name, run.mean_error_percent_of_range)
    return compression, error


def compression_vs_precision(**kwargs) -> ExperimentSeries:
    """Figure 7: compression ratio vs precision width."""
    compression, _ = precision_sweep(**kwargs)
    return compression


def error_vs_precision(**kwargs) -> ExperimentSeries:
    """Figure 8: average error vs precision width."""
    _, error = precision_sweep(**kwargs)
    return error
