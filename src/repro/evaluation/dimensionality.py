"""Effect of dimensionality and correlation (paper §5.4, Figures 11–12).

Figure 11 sweeps the number of independent dimensions from 1 to 10; Figure 12
fixes a 5-dimensional signal and sweeps the correlation between its dimensions
from 0.1 to 1.  Section 5.4 additionally derives the break-even correlation at
which compressing all dimensions together beats compressing each dimension
independently (using the ``(d + 1) / 2d`` time-field correction);
:func:`independent_vs_joint_breakeven` reproduces that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.registry import PAPER_FILTERS
from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.evaluation.experiments import ExperimentSeries, run_filters
from repro.metrics.compression import independent_equivalent_ratio

__all__ = [
    "DIMENSION_COUNTS",
    "CORRELATIONS",
    "compression_vs_dimensions",
    "compression_vs_correlation",
    "BreakevenAnalysis",
    "independent_vs_joint_breakeven",
]

#: Figure 11's sweep of the number of dimensions.
DIMENSION_COUNTS = tuple(range(1, 11))

#: Figure 12's sweep of the correlation between the five dimensions.
CORRELATIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Default precision width for the synthetic multi-dimensional experiments.
DEFAULT_EPSILON = 1.0


def compression_vs_dimensions(
    dimension_counts: Sequence[int] = DIMENSION_COUNTS,
    epsilon: float = DEFAULT_EPSILON,
    max_delta_percent_of_epsilon: float = 400.0,
    length: int = 5_000,
    seed: int = 23,
    filters: Iterable[str] = PAPER_FILTERS,
) -> ExperimentSeries:
    """Figure 11: compression ratio vs number of (independent) dimensions."""
    series = ExperimentSeries(
        name="figure11",
        title="Figure 11: effect of the number of dimensions",
        x_label="number of dimensions",
        x_values=[float(d) for d in dimension_counts],
        y_label="compression ratio",
        metadata={"epsilon": epsilon, "points": length, "correlation": 0.0},
    )
    max_delta = epsilon * max_delta_percent_of_epsilon / 100.0
    for index, dimensions in enumerate(dimension_counts):
        times, values = correlated_random_walk(
            CorrelatedWalkConfig(
                length=length,
                dimensions=dimensions,
                correlation=0.0,
                max_delta=max_delta,
                seed=seed + index,
            )
        )
        runs = run_filters(times, values, epsilon, filters=filters)
        for name, run in runs.items():
            series.add(name, run.compression_ratio)
    return series


def compression_vs_correlation(
    correlations: Sequence[float] = CORRELATIONS,
    dimensions: int = 5,
    epsilon: float = DEFAULT_EPSILON,
    max_delta_percent_of_epsilon: float = 400.0,
    length: int = 5_000,
    seed: int = 29,
    filters: Iterable[str] = PAPER_FILTERS,
) -> ExperimentSeries:
    """Figure 12: compression ratio vs correlation between the dimensions."""
    series = ExperimentSeries(
        name="figure12",
        title="Figure 12: effect of the correlation between dimensions",
        x_label="dimensions correlation",
        x_values=list(correlations),
        y_label="compression ratio",
        metadata={"epsilon": epsilon, "points": length, "dimensions": dimensions},
    )
    max_delta = epsilon * max_delta_percent_of_epsilon / 100.0
    for index, correlation in enumerate(correlations):
        times, values = correlated_random_walk(
            CorrelatedWalkConfig(
                length=length,
                dimensions=dimensions,
                correlation=correlation,
                max_delta=max_delta,
                seed=seed + index,
            )
        )
        runs = run_filters(times, values, epsilon, filters=filters)
        for name, run in runs.items():
            series.add(name, run.compression_ratio)
    return series


@dataclass(frozen=True)
class BreakevenAnalysis:
    """Outcome of the §5.4 independent-vs-joint compression comparison.

    Attributes:
        filter_name: Filter used for the analysis (the paper uses the slide
            filter).
        dimensions: Number of dimensions of the joint signal.
        single_dimension_ratio: Compression ratio on one dimension in
            isolation.
        independent_equivalent: That ratio corrected by ``(d + 1) / 2d`` —
            what independent per-dimension compression is actually worth.
        joint_ratios: Joint compression ratio at each swept correlation.
        correlations: The swept correlations.
        breakeven_correlation: Smallest swept correlation at which joint
            compression beats independent compression (``None`` if never).
    """

    filter_name: str
    dimensions: int
    single_dimension_ratio: float
    independent_equivalent: float
    joint_ratios: Sequence[float]
    correlations: Sequence[float]
    breakeven_correlation: Optional[float]


def independent_vs_joint_breakeven(
    filter_name: str = "slide",
    dimensions: int = 5,
    correlations: Sequence[float] = CORRELATIONS,
    epsilon: float = DEFAULT_EPSILON,
    max_delta_percent_of_epsilon: float = 400.0,
    length: int = 5_000,
    seed: int = 31,
) -> BreakevenAnalysis:
    """Reproduce the §5.4 break-even analysis for one filter.

    The single-dimension ratio comes from a 1-dimensional run of the same
    workload model; the joint ratios reuse the Figure 12 sweep.
    """
    max_delta = epsilon * max_delta_percent_of_epsilon / 100.0
    times, values = correlated_random_walk(
        CorrelatedWalkConfig(
            length=length, dimensions=1, correlation=0.0, max_delta=max_delta, seed=seed
        )
    )
    single = run_filters(times, values, epsilon, filters=[filter_name])[filter_name]
    independent = independent_equivalent_ratio(single.compression_ratio, dimensions)

    joint_series = compression_vs_correlation(
        correlations=correlations,
        dimensions=dimensions,
        epsilon=epsilon,
        max_delta_percent_of_epsilon=max_delta_percent_of_epsilon,
        length=length,
        seed=seed + 1,
        filters=[filter_name],
    )
    joint = joint_series.series[filter_name]
    breakeven = None
    for correlation, ratio in zip(correlations, joint):
        if ratio > independent:
            breakeven = correlation
            break
    return BreakevenAnalysis(
        filter_name=filter_name,
        dimensions=dimensions,
        single_dimension_ratio=single.compression_ratio,
        independent_equivalent=independent,
        joint_ratios=list(joint),
        correlations=list(correlations),
        breakeven_correlation=breakeven,
    )
