"""Experiment harness regenerating the paper's evaluation (§5).

Each module corresponds to one part of the evaluation section and produces an
:class:`~repro.evaluation.experiments.ExperimentSeries` — the x-axis values
and one y-series per filter — which is what the paper's figures plot:

========  =========================================  ==========================
Figure    Module / function                           Quantity
========  =========================================  ==========================
Fig. 6    :func:`repro.data.sst.sea_surface_temperature`  the SST signal itself
Fig. 7    :func:`~repro.evaluation.precision_sweep.compression_vs_precision`   compression ratio vs ε
Fig. 8    :func:`~repro.evaluation.precision_sweep.error_vs_precision`         average error vs ε
Fig. 9    :func:`~repro.evaluation.signal_behavior.compression_vs_monotonicity` compression vs p
Fig. 10   :func:`~repro.evaluation.signal_behavior.compression_vs_delta`        compression vs max delta
Fig. 11   :func:`~repro.evaluation.dimensionality.compression_vs_dimensions`    compression vs d
Fig. 12   :func:`~repro.evaluation.dimensionality.compression_vs_correlation`   compression vs ρ
Fig. 13   :func:`~repro.evaluation.overhead.overhead_vs_precision`              µs/point vs ε
========  =========================================  ==========================

Additional ablation experiments (MSE recording, segment joining, max-lag) live
in :mod:`repro.evaluation.ablations`, and :mod:`repro.evaluation.summary`
aggregates the headline claims of the paper's abstract.
"""

from repro.evaluation.experiments import ExperimentSeries, FilterRun, run_filters
from repro.evaluation.report import render_series, series_to_rows
from repro.evaluation.precision_sweep import (
    PRECISION_PERCENTS,
    compression_vs_precision,
    error_vs_precision,
)
from repro.evaluation.signal_behavior import (
    compression_vs_delta,
    compression_vs_monotonicity,
)
from repro.evaluation.dimensionality import (
    compression_vs_correlation,
    compression_vs_dimensions,
    independent_vs_joint_breakeven,
)
from repro.evaluation.overhead import overhead_vs_precision
from repro.evaluation.ablations import (
    connection_ablation,
    max_lag_ablation,
    recording_policy_ablation,
)
from repro.evaluation.summary import headline_claims

__all__ = [
    "ExperimentSeries",
    "FilterRun",
    "run_filters",
    "render_series",
    "series_to_rows",
    "PRECISION_PERCENTS",
    "compression_vs_precision",
    "error_vs_precision",
    "compression_vs_monotonicity",
    "compression_vs_delta",
    "compression_vs_dimensions",
    "compression_vs_correlation",
    "independent_vs_joint_breakeven",
    "overhead_vs_precision",
    "recording_policy_ablation",
    "connection_ablation",
    "max_lag_ablation",
    "headline_claims",
]
