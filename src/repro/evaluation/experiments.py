"""Shared experiment infrastructure.

Every experiment in the harness boils down to: generate a workload, run a set
of filters on it with some precision width, reconstruct the approximations and
collect compression / error statistics.  :func:`run_filters` performs one such
run; :class:`ExperimentSeries` holds a parameter sweep's results in the shape
the paper's figures plot (one y-series per filter over a shared x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.approximation.reconstruct import reconstruct
from repro.core.registry import PAPER_FILTERS, create_filter
from repro.metrics.error import error_profile

__all__ = ["FilterRun", "ExperimentSeries", "run_filters"]


@dataclass(frozen=True)
class FilterRun:
    """Result of running one filter over one workload.

    Attributes:
        filter_name: Registered name of the filter.
        points: Number of data points in the workload.
        recordings: Number of recordings the filter produced.
        compression_ratio: ``points / recordings``.
        mean_absolute_error: Mean |approximation − signal| over all samples.
        max_absolute_error: Max |approximation − signal| over all samples.
        mean_error_percent_of_range: Mean error as a % of the signal's range.
        epsilon: The precision width used (scalar or per-dimension vector).
    """

    filter_name: str
    points: int
    recordings: int
    compression_ratio: float
    mean_absolute_error: float
    max_absolute_error: float
    mean_error_percent_of_range: float
    epsilon: np.ndarray


def run_filters(
    times: Sequence[float],
    values: Sequence,
    epsilon,
    filters: Iterable[str] = PAPER_FILTERS,
    filter_options: Optional[Dict[str, dict]] = None,
) -> Dict[str, FilterRun]:
    """Run the named filters over a workload and collect their statistics.

    Args:
        times: Timestamps of the workload.
        values: Values (shape ``(n,)`` or ``(n, d)``).
        epsilon: Precision width passed to every filter.
        filters: Registered filter names to evaluate.
        filter_options: Optional per-filter-name keyword arguments.

    Returns:
        Mapping from filter name to its :class:`FilterRun`.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    options = filter_options or {}
    runs: Dict[str, FilterRun] = {}
    for name in filters:
        stream_filter = create_filter(name, epsilon, **options.get(name, {}))
        result = stream_filter.process(zip(times, values))
        approximation = reconstruct(result)
        profile = error_profile(approximation, times, values)
        runs[name] = FilterRun(
            filter_name=name,
            points=result.points_processed,
            recordings=result.recording_count,
            compression_ratio=result.compression_ratio,
            mean_absolute_error=profile.mean_absolute,
            max_absolute_error=profile.max_absolute,
            mean_error_percent_of_range=profile.mean_percent_of_range,
            epsilon=np.atleast_1d(np.asarray(epsilon, dtype=float)),
        )
    return runs


@dataclass
class ExperimentSeries:
    """A parameter sweep's results: one y-series per filter over a shared x-axis.

    Attributes:
        name: Experiment identifier (e.g. ``"figure7"``).
        title: Human-readable title matching the paper's figure caption.
        x_label: Name of the swept parameter.
        x_values: The swept parameter values.
        y_label: Name of the reported quantity.
        series: Mapping from filter name to its y-values (parallel to
            ``x_values``).
        metadata: Free-form extra information (workload sizes, seeds, …).
    """

    name: str
    title: str
    x_label: str
    x_values: List[float]
    y_label: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, filter_name: str, value: float) -> None:
        """Append one y-value to a filter's series."""
        self.series.setdefault(filter_name, []).append(float(value))

    def filter_names(self) -> List[str]:
        """Return the filters present in the series, in insertion order."""
        return list(self.series)

    def best_filter_at(self, index: int) -> str:
        """Return the filter with the highest y-value at ``x_values[index]``."""
        return max(self.series, key=lambda name: self.series[name][index])

    def as_dict(self) -> Dict[str, object]:
        """Return a plain-dict form convenient for JSON serialization."""
        return {
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "y_label": self.y_label,
            "series": {name: list(values) for name, values in self.series.items()},
            "metadata": dict(self.metadata),
        }
