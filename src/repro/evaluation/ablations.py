"""Ablation experiments on the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify how much each design element
contributes:

* **Recording policy** (paper §3.2): MSE-optimal recording vs simply recording
  the last observed data point — same segment boundaries, different average
  error.
* **Segment joining** (paper §4.2, Lemma 4.4): slide filter with and without
  connected segments.
* **Bounded lag** (paper §3.3): compression as a function of ``m_max_lag``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.approximation.reconstruct import reconstruct, segments_from_recordings
from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import create_filter
from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.data.sst import sea_surface_temperature
from repro.evaluation.experiments import ExperimentSeries
from repro.metrics.error import error_profile

__all__ = [
    "recording_policy_ablation",
    "connection_ablation",
    "max_lag_ablation",
    "RecordingPolicyResult",
]


class LastPointSwingFilter(SwingFilter):
    """Swing filter variant recording the last point's bound midpoint.

    Used by the recording-policy ablation: it keeps the swing filter's
    filtering mechanism (so segment boundaries are identical) but replaces the
    MSE-optimal slope of §3.2 with the middle of the admissible slope range,
    i.e. it makes no attempt to minimize the mean square error.
    """

    name = "swing-midslope"

    def _optimal_slope(self) -> np.ndarray:  # noqa: D102 - documented on the class
        return (self._upper_slope + self._lower_slope) / 2.0


@dataclass(frozen=True)
class RecordingPolicyResult:
    """Comparison of the MSE-optimal and midpoint recording policies."""

    recordings_mse: int
    recordings_midslope: int
    mean_error_mse: float
    mean_error_midslope: float
    error_reduction_percent: float


def recording_policy_ablation(
    times: Optional[Sequence[float]] = None,
    values: Optional[Sequence[float]] = None,
    precision_percent: float = 1.0,
) -> RecordingPolicyResult:
    """Quantify what the MSE-optimal recording of §3.2 buys (ablation A1).

    Returns the recording counts (nearly identical — the recording choice only
    feeds back through the next interval's anchor) and the mean absolute
    errors of the two policies; the MSE policy's error should be lower.
    """
    if times is None or values is None:
        times, values = sea_surface_temperature()
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    epsilon = epsilon_from_percent(precision_percent, values)

    mse_result = SwingFilter(epsilon).process(zip(times, values))
    mid_result = LastPointSwingFilter(epsilon).process(zip(times, values))
    mse_profile = error_profile(reconstruct(mse_result), times, values)
    mid_profile = error_profile(reconstruct(mid_result), times, values)
    reduction = 0.0
    if mid_profile.mean_absolute > 0.0:
        reduction = 100.0 * (1.0 - mse_profile.mean_absolute / mid_profile.mean_absolute)
    return RecordingPolicyResult(
        recordings_mse=mse_result.recording_count,
        recordings_midslope=mid_result.recording_count,
        mean_error_mse=mse_profile.mean_absolute,
        mean_error_midslope=mid_profile.mean_absolute,
        error_reduction_percent=reduction,
    )


def connection_ablation(
    precision_percents: Sequence[float] = (0.1, 0.316, 1.0, 3.16, 10.0),
    times: Optional[Sequence[float]] = None,
    values: Optional[Sequence[float]] = None,
) -> ExperimentSeries:
    """Slide filter with vs without segment joining (ablation A3).

    Reports the compression ratio of the full slide filter, the
    disconnected-only variant and (for reference) the fraction of segments the
    full variant managed to connect.
    """
    if times is None or values is None:
        times, values = sea_surface_temperature()
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    series = ExperimentSeries(
        name="ablation-connect",
        title="Ablation: slide filter segment joining (Lemma 4.4)",
        x_label="precision width (% of range)",
        x_values=list(precision_percents),
        y_label="compression ratio",
        metadata={"points": int(len(times))},
    )
    for percent in precision_percents:
        epsilon = epsilon_from_percent(percent, values)
        connected = SlideFilter(epsilon).process(zip(times, values))
        disconnected = SlideFilter(epsilon, connect_segments=False).process(zip(times, values))
        segments = segments_from_recordings(connected)
        joined = sum(1 for segment in segments if segment.connected_to_previous)
        series.add("slide", connected.compression_ratio)
        series.add("slide-disconnected", disconnected.compression_ratio)
        series.add("connected fraction (%)", 100.0 * joined / max(len(segments), 1))
    return series


def max_lag_ablation(
    max_lags: Sequence[Optional[int]] = (4, 8, 16, 32, 64, None),
    filters: Iterable[str] = ("swing", "slide"),
    length: int = 10_000,
    epsilon: float = 1.0,
    max_delta: float = 2.0,
    seed: int = 41,
) -> ExperimentSeries:
    """Compression vs the transmitter lag bound ``m_max_lag`` (ablation A4)."""
    times, values = random_walk(
        RandomWalkConfig(length=length, decrease_probability=0.5, max_delta=max_delta, seed=seed)
    )
    x_values = [float(lag) if lag is not None else float("inf") for lag in max_lags]
    series = ExperimentSeries(
        name="ablation-max-lag",
        title="Ablation: compression vs the maximum transmitter lag",
        x_label="m_max_lag (data points; inf = unbounded)",
        x_values=x_values,
        y_label="compression ratio",
        metadata={"epsilon": epsilon, "points": length, "max_delta": max_delta},
    )
    for lag in max_lags:
        for name in filters:
            kwargs: Dict[str, object] = {}
            if lag is not None:
                kwargs["max_lag"] = lag
            result = create_filter(name, epsilon, **kwargs).process(zip(times, values))
            series.add(name, result.compression_ratio)
    return series
