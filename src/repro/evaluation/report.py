"""Plain-text rendering of experiment results.

The benchmarks print the same rows the paper's figures plot; these helpers
format an :class:`~repro.evaluation.experiments.ExperimentSeries` as an
aligned text table (and as raw rows for programmatic use).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.evaluation.experiments import ExperimentSeries

__all__ = ["series_to_rows", "render_series", "render_table"]


def series_to_rows(series: ExperimentSeries) -> List[List[str]]:
    """Convert a series into rows: header plus one row per x value."""
    filters = series.filter_names()
    header = [series.x_label] + filters
    rows = [header]
    for index, x in enumerate(series.x_values):
        row = [_format_number(x)]
        for name in filters:
            values = series.series[name]
            row.append(_format_number(values[index]) if index < len(values) else "-")
        rows.append(row)
    return rows


def render_table(rows: Sequence[Sequence[str]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    if not rows:
        return ""
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    for index, row in enumerate(rows):
        padded = [cell.ljust(widths[column]) for column, cell in enumerate(row)]
        lines.append(" | ".join(padded).rstrip())
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths[: len(row)]))
    return "\n".join(lines)


def render_series(series: ExperimentSeries) -> str:
    """Render a full experiment series with its title and axis labels."""
    table = render_table(series_to_rows(series))
    header = f"{series.title}\n({series.y_label} vs {series.x_label})"
    return f"{header}\n{table}"


def _format_number(value: float) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
