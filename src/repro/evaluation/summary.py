"""Headline-claim check (paper abstract and §1).

The paper's central quantitative claims are:

1. the slide filter achieves the highest compression ratio in (nearly) all
   configurations,
2. the swing filter generally outperforms the cache and linear baselines, and
3. the slide filter improves over the best of the previous techniques (cache
   or linear) by up to a factor of two.

:func:`headline_claims` aggregates the Figure 7 / 9 / 10 / 11 / 12 sweeps and
evaluates each claim, so the summary benchmark can print a paper-vs-measured
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.evaluation.dimensionality import compression_vs_correlation, compression_vs_dimensions
from repro.evaluation.experiments import ExperimentSeries
from repro.evaluation.precision_sweep import compression_vs_precision
from repro.evaluation.signal_behavior import compression_vs_delta, compression_vs_monotonicity

__all__ = ["ClaimCheck", "HeadlineSummary", "headline_claims"]


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one claim over all aggregated configurations."""

    claim: str
    holds_in: int
    total: int

    @property
    def fraction(self) -> float:
        """Fraction of configurations in which the claim holds."""
        return self.holds_in / self.total if self.total else 0.0

    @property
    def holds_mostly(self) -> bool:
        """True when the claim holds in at least 80 % of configurations."""
        return self.fraction >= 0.8


@dataclass(frozen=True)
class HeadlineSummary:
    """Aggregated claim checks plus the peak slide-vs-baseline improvement."""

    checks: List[ClaimCheck]
    max_slide_improvement_over_baselines: float
    configurations: int

    def as_rows(self) -> List[List[str]]:
        """Render the summary as table rows for the benchmark output."""
        rows = [["claim", "holds in", "fraction"]]
        for check in self.checks:
            rows.append([check.claim, f"{check.holds_in}/{check.total}", f"{check.fraction:.0%}"])
        rows.append(
            [
                "max slide improvement over best of cache/linear",
                f"{self.max_slide_improvement_over_baselines:.2f}x",
                "",
            ]
        )
        return rows


def _collect_configurations(series_list: Sequence[ExperimentSeries]) -> List[Dict[str, float]]:
    configurations: List[Dict[str, float]] = []
    for series in series_list:
        names = series.filter_names()
        for index in range(len(series.x_values)):
            configurations.append({name: series.series[name][index] for name in names})
    return configurations


def headline_claims(fast: bool = True) -> HeadlineSummary:
    """Evaluate the paper's headline claims over the aggregated sweeps.

    Args:
        fast: Use reduced workload sizes so the whole aggregation stays cheap
            enough for the benchmark suite; set to ``False`` to use the full
            experiment defaults.
    """
    if fast:
        sweeps = [
            compression_vs_precision(),
            compression_vs_monotonicity(length=3_000),
            compression_vs_delta(length=3_000),
            compression_vs_dimensions(dimension_counts=(1, 3, 5, 10), length=2_000),
            compression_vs_correlation(correlations=(0.1, 0.5, 1.0), length=2_000),
        ]
    else:
        sweeps = [
            compression_vs_precision(),
            compression_vs_monotonicity(),
            compression_vs_delta(),
            compression_vs_dimensions(),
            compression_vs_correlation(),
        ]
    configurations = _collect_configurations(sweeps)

    slide_best = 0
    swing_beats_baselines = 0
    slide_beats_swing = 0
    max_improvement = 0.0
    for config in configurations:
        baseline = max(config["cache"], config["linear"])
        slide_best += int(config["slide"] >= max(config.values()) - 1e-12)
        swing_beats_baselines += int(config["swing"] >= baseline)
        slide_beats_swing += int(config["slide"] >= config["swing"])
        if baseline > 0:
            max_improvement = max(max_improvement, config["slide"] / baseline)

    total = len(configurations)
    checks = [
        ClaimCheck("slide filter achieves the highest compression ratio", slide_best, total),
        ClaimCheck("swing filter outperforms cache and linear baselines", swing_beats_baselines, total),
        ClaimCheck("slide filter outperforms the swing filter", slide_beats_swing, total),
    ]
    return HeadlineSummary(
        checks=checks,
        max_slide_improvement_over_baselines=max_improvement,
        configurations=total,
    )
