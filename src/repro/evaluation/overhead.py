"""Filtering overhead (paper §5.5, Figure 13).

The overhead experiment feeds the SST signal to each filter for a range of
precision widths and reports the net processing time per data point in
microseconds.  Besides the paper's four filters it includes the non-optimized
slide filter (no convex-hull maintenance), whose cost grows with the filtering
interval length — the point of the paper's Figure 13.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import create_filter
from repro.data.sst import sea_surface_temperature
from repro.evaluation.experiments import ExperimentSeries
from repro.metrics.timing import measure_filter_overhead

__all__ = ["OVERHEAD_PRECISION_PERCENTS", "OVERHEAD_FILTERS", "overhead_vs_precision"]

#: Figure 13's precision-width grid (% of the signal range).
OVERHEAD_PRECISION_PERCENTS = (0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0)

#: Filters measured in Figure 13 (the paper's four plus the non-optimized slide).
OVERHEAD_FILTERS = ("cache", "linear", "swing", "slide", "slide-unoptimized")


def overhead_vs_precision(
    percents: Sequence[float] = OVERHEAD_PRECISION_PERCENTS,
    filters: Iterable[str] = OVERHEAD_FILTERS,
    times: Optional[Sequence[float]] = None,
    values: Optional[Sequence[float]] = None,
    repeats: int = 3,
    filter_options: Optional[Dict[str, dict]] = None,
) -> ExperimentSeries:
    """Figure 13: per-point processing time vs precision width.

    Args:
        percents: Precision widths as % of the signal range.
        filters: Registered filter names to measure.
        times: Workload timestamps (defaults to the SST surrogate).
        values: Workload values (defaults to the SST surrogate).
        repeats: Number of passes averaged per measurement.
        filter_options: Optional per-filter constructor overrides.
    """
    if times is None or values is None:
        times, values = sea_surface_temperature()
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    options = filter_options or {}
    series = ExperimentSeries(
        name="figure13",
        title="Figure 13: filtering overhead for the sea surface temperature signal",
        x_label="precision width (% of range)",
        x_values=list(percents),
        y_label="processing time (µs / data point)",
        metadata={"points": int(len(times)), "repeats": repeats},
    )
    for percent in percents:
        epsilon = epsilon_from_percent(percent, values)
        for name in filters:
            timing = measure_filter_overhead(
                lambda name=name, epsilon=epsilon: create_filter(
                    name, epsilon, **options.get(name, {})
                ),
                times,
                values,
                repeats=repeats,
                filter_name=name,
            )
            series.add(name, timing.microseconds_per_point)
    return series
