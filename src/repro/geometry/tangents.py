"""Extremal ε-shifted support lines used by the slide filter.

When a new data point ``(t_new, x_new)`` invalidates one of the slide filter's
bounding lines, the replacement bound is (Lemma 4.1 of the paper):

* **Upper bound** ``u``: the *minimum-slope* line through some earlier point
  shifted down by ε — ``(t', x' - ε)`` — and the new point shifted up by ε —
  ``(t_new, x_new + ε)``.
* **Lower bound** ``l``: the *maximum-slope* line through some earlier point
  shifted up by ε — ``(t', x' + ε)`` — and the new point shifted down by ε —
  ``(t_new, x_new - ε)``.

Lemma 4.3 shows that only the vertices of the convex hull of the earlier
points need to be considered.  Two families of helpers implement the search:

* The original list-based scans (:func:`min_slope_upper_line` /
  :func:`max_slope_lower_line`), which examine every support point — O(m)
  per call.  The non-optimized slide variant (all interval points as
  support) still uses these.
* Array tangent searches over a convex chain
  (:func:`min_slope_upper_tangent` / :func:`max_slope_lower_tangent`):
  because the candidate slope is strictly unimodal along a strictly convex
  chain, the extremal support vertex is found with a binary search over the
  chain's coordinate arrays — O(log m_H) per bound update, beating the
  paper's O(m_H) bound.  The optimized slide filter feeds these the chains
  of :class:`repro.geometry.hull.IncrementalConvexHull` directly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.lines import Line

__all__ = [
    "min_slope_upper_line",
    "max_slope_lower_line",
    "min_slope_upper_tangent",
    "max_slope_lower_tangent",
    "candidate_upper_lines",
    "candidate_lower_lines",
]

Point = Tuple[float, float]


def candidate_upper_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every upper-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' - ε)`` and ``(t_new, x_new + ε)``.
    Support points at the same time as the new point are skipped (they cannot
    define a non-vertical line).
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev - epsilon, t_new, x_new + epsilon)
        )
    return lines


def candidate_lower_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every lower-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' + ε)`` and ``(t_new, x_new - ε)``.
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev + epsilon, t_new, x_new - epsilon)
        )
    return lines


def min_slope_upper_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the minimum-slope upper bounding line (paper property P3).

    Args:
        support_points: Earlier data points (or their hull vertices).
        t_new: Time of the newly arrived point.
        x_new: Value of the newly arrived point.
        epsilon: Precision width in this dimension.
        current: The existing upper bound; when given it competes with the new
            candidates (Algorithm 2, line 39 keeps "the lowest of uᵢᵏ and
            uᵢⱼ'ᵏ"), which for lines meeting at the new point is the one with
            the smaller slope.

    Raises:
        ValueError: If no candidate line can be constructed.
    """
    candidates = list(candidate_upper_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build an upper bound")
    return min(candidates, key=lambda line: line.slope)


def max_slope_lower_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the maximum-slope lower bounding line (paper property P3).

    Mirror image of :func:`min_slope_upper_line`; see that function for the
    parameter description.
    """
    candidates = list(candidate_lower_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build a lower bound")
    return max(candidates, key=lambda line: line.slope)


# --------------------------------------------------------------------------- #
# O(log m) tangent searches over a convex chain
# --------------------------------------------------------------------------- #
def min_slope_upper_tangent(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Array variant of :func:`min_slope_upper_line` over a convex upper chain.

    Args:
        chain_t: Upper-chain vertex times, sorted ascending (usually from
            :meth:`IncrementalConvexHull.upper_chain`; the chain may include
            the new point itself as its last vertex — vertices at or after
            ``t_new`` are excluded from the support, like the list scan).
        chain_x: Matching vertex values.
        t_new: Time of the newly arrived point.
        x_new: Value of the newly arrived point.
        epsilon: Precision width in this dimension.
        current: The existing upper bound; competes with the tangent
            candidate exactly as in :func:`min_slope_upper_line` (kept only
            when *strictly* smaller in slope).

    Raises:
        ValueError: If there is no support vertex and no ``current`` line.
    """
    time_at = chain_t.item
    value_at = chain_x.item
    count = chain_t.shape[0]
    t_new = float(t_new)
    while count > 0 and time_at(count - 1) >= t_new:
        count -= 1
    if count == 0:
        if current is None:
            raise ValueError("no support points available to build an upper bound")
        return current
    epsilon = float(epsilon)
    shifted_new = float(x_new) + epsilon
    low = 0
    high = count - 1
    while low < high:
        # f(i) — the candidate slope through (chain[i] - eps) and the shifted
        # new point — is strictly unimodal; find its leftmost valley.
        mid = (low + high) >> 1
        f_mid = (shifted_new - (value_at(mid) - epsilon)) / (t_new - time_at(mid))
        f_next = (shifted_new - (value_at(mid + 1) - epsilon)) / (
            t_new - time_at(mid + 1)
        )
        if f_mid <= f_next:
            high = mid
        else:
            low = mid + 1
    # Exactly Line.from_points(t_i, x_i - eps, t_new, x_new + eps); the
    # support time is strictly earlier than t_new, so no degeneracy check.
    t_support = time_at(low)
    x_support = value_at(low) - epsilon
    slope = (shifted_new - x_support) / (t_new - t_support)
    if current is not None and current.slope < slope:
        return current
    return Line(slope, x_support - slope * t_support)


def max_slope_lower_tangent(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Array variant of :func:`max_slope_lower_line` over a convex lower chain.

    Mirror image of :func:`min_slope_upper_tangent`; see that function for
    the parameter description.
    """
    time_at = chain_t.item
    value_at = chain_x.item
    count = chain_t.shape[0]
    t_new = float(t_new)
    while count > 0 and time_at(count - 1) >= t_new:
        count -= 1
    if count == 0:
        if current is None:
            raise ValueError("no support points available to build a lower bound")
        return current
    epsilon = float(epsilon)
    shifted_new = float(x_new) - epsilon
    low = 0
    high = count - 1
    while low < high:
        mid = (low + high) >> 1
        f_mid = (shifted_new - (value_at(mid) + epsilon)) / (t_new - time_at(mid))
        f_next = (shifted_new - (value_at(mid + 1) + epsilon)) / (
            t_new - time_at(mid + 1)
        )
        if f_mid >= f_next:
            high = mid
        else:
            low = mid + 1
    t_support = time_at(low)
    x_support = value_at(low) + epsilon
    slope = (shifted_new - x_support) / (t_new - t_support)
    if current is not None and current.slope > slope:
        return current
    return Line(slope, x_support - slope * t_support)
