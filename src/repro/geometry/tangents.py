"""Extremal ε-shifted support lines used by the slide filter.

When a new data point ``(t_new, x_new)`` invalidates one of the slide filter's
bounding lines, the replacement bound is (Lemma 4.1 of the paper):

* **Upper bound** ``u``: the *minimum-slope* line through some earlier point
  shifted down by ε — ``(t', x' - ε)`` — and the new point shifted up by ε —
  ``(t_new, x_new + ε)``.
* **Lower bound** ``l``: the *maximum-slope* line through some earlier point
  shifted up by ε — ``(t', x' + ε)`` — and the new point shifted down by ε —
  ``(t_new, x_new - ε)``.

Lemma 4.3 shows that only the vertices of the convex hull of the earlier
points need to be considered.  These helpers perform that scan; the caller
passes either the full point list (non-optimized slide filter) or the hull
vertices (optimized slide filter).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.geometry.lines import Line

__all__ = [
    "min_slope_upper_line",
    "max_slope_lower_line",
    "candidate_upper_lines",
    "candidate_lower_lines",
]

Point = Tuple[float, float]


def candidate_upper_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every upper-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' - ε)`` and ``(t_new, x_new + ε)``.
    Support points at the same time as the new point are skipped (they cannot
    define a non-vertical line).
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev - epsilon, t_new, x_new + epsilon)
        )
    return lines


def candidate_lower_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every lower-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' + ε)`` and ``(t_new, x_new - ε)``.
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev + epsilon, t_new, x_new - epsilon)
        )
    return lines


def min_slope_upper_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the minimum-slope upper bounding line (paper property P3).

    Args:
        support_points: Earlier data points (or their hull vertices).
        t_new: Time of the newly arrived point.
        x_new: Value of the newly arrived point.
        epsilon: Precision width in this dimension.
        current: The existing upper bound; when given it competes with the new
            candidates (Algorithm 2, line 39 keeps "the lowest of uᵢᵏ and
            uᵢⱼ'ᵏ"), which for lines meeting at the new point is the one with
            the smaller slope.

    Raises:
        ValueError: If no candidate line can be constructed.
    """
    candidates = list(candidate_upper_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build an upper bound")
    return min(candidates, key=lambda line: line.slope)


def max_slope_lower_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the maximum-slope lower bounding line (paper property P3).

    Mirror image of :func:`min_slope_upper_line`; see that function for the
    parameter description.
    """
    candidates = list(candidate_lower_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build a lower bound")
    return max(candidates, key=lambda line: line.slope)
