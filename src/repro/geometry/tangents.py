"""Extremal ε-shifted support lines used by the slide filter.

When a new data point ``(t_new, x_new)`` invalidates one of the slide filter's
bounding lines, the replacement bound is (Lemma 4.1 of the paper):

* **Upper bound** ``u``: the *minimum-slope* line through some earlier point
  shifted down by ε — ``(t', x' - ε)`` — and the new point shifted up by ε —
  ``(t_new, x_new + ε)``.
* **Lower bound** ``l``: the *maximum-slope* line through some earlier point
  shifted up by ε — ``(t', x' + ε)`` — and the new point shifted down by ε —
  ``(t_new, x_new - ε)``.

Lemma 4.3 shows that only the vertices of the convex hull of the earlier
points need to be considered.  Two families of helpers implement the search:

* The original list-based scans (:func:`min_slope_upper_line` /
  :func:`max_slope_lower_line`), which examine every support point — O(m)
  per call.  The non-optimized slide variant (all interval points as
  support) still uses these.
* Array tangent searches over a convex chain
  (:func:`min_slope_upper_tangent` / :func:`max_slope_lower_tangent`):
  because the candidate slope is strictly unimodal along a strictly convex
  chain, the extremal support vertex is found with a binary search over the
  chain's coordinate arrays — O(log m_H) per bound update, beating the
  paper's O(m_H) bound.  The optimized slide filter feeds these the chains
  of :class:`repro.geometry.hull.IncrementalConvexHull` directly.  The
  ``*_search`` variants additionally return the winning support index so
  consecutive updates can warm-start each other: the extremal vertex is
  usually unchanged between calls, collapsing the search to O(1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.lines import Line

__all__ = [
    "min_slope_upper_line",
    "max_slope_lower_line",
    "min_slope_upper_tangent",
    "max_slope_lower_tangent",
    "min_slope_upper_tangent_search",
    "max_slope_lower_tangent_search",
    "candidate_upper_lines",
    "candidate_lower_lines",
]

Point = Tuple[float, float]


def candidate_upper_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every upper-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' - ε)`` and ``(t_new, x_new + ε)``.
    Support points at the same time as the new point are skipped (they cannot
    define a non-vertical line).
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev - epsilon, t_new, x_new + epsilon)
        )
    return lines


def candidate_lower_lines(
    support_points: Iterable[Point], t_new: float, x_new: float, epsilon: float
) -> Sequence[Line]:
    """Return every lower-bound candidate induced by ``support_points``.

    Each candidate passes through ``(t', x' + ε)`` and ``(t_new, x_new - ε)``.
    """
    lines = []
    for t_prev, x_prev in support_points:
        if t_prev >= t_new:
            continue
        lines.append(
            Line.from_points(t_prev, x_prev + epsilon, t_new, x_new - epsilon)
        )
    return lines


def min_slope_upper_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the minimum-slope upper bounding line (paper property P3).

    Args:
        support_points: Earlier data points (or their hull vertices).
        t_new: Time of the newly arrived point.
        x_new: Value of the newly arrived point.
        epsilon: Precision width in this dimension.
        current: The existing upper bound; when given it competes with the new
            candidates (Algorithm 2, line 39 keeps "the lowest of uᵢᵏ and
            uᵢⱼ'ᵏ"), which for lines meeting at the new point is the one with
            the smaller slope.

    Raises:
        ValueError: If no candidate line can be constructed.
    """
    candidates = list(candidate_upper_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build an upper bound")
    return min(candidates, key=lambda line: line.slope)


def max_slope_lower_line(
    support_points: Iterable[Point],
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Return the maximum-slope lower bounding line (paper property P3).

    Mirror image of :func:`min_slope_upper_line`; see that function for the
    parameter description.
    """
    candidates = list(candidate_lower_lines(support_points, t_new, x_new, epsilon))
    if current is not None:
        candidates.append(current)
    if not candidates:
        raise ValueError("no support points available to build a lower bound")
    return max(candidates, key=lambda line: line.slope)


# --------------------------------------------------------------------------- #
# O(log m) tangent searches over a convex chain
# --------------------------------------------------------------------------- #
def min_slope_upper_tangent_search(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
    hint: Optional[int] = None,
) -> Tuple[Line, int]:
    """Hinted variant of :func:`min_slope_upper_tangent`.

    Returns ``(line, support_index)`` where ``support_index`` is the chain
    index of the extremal support vertex (``-1`` when the chain held no
    usable support and ``current`` was returned).  Passing the previous
    call's ``support_index`` back as ``hint`` warm-starts the binary search:
    the extremal vertex rarely moves between consecutive bound updates, so a
    correct hint resolves in O(1) candidate-slope evaluations instead of
    O(log m_H) — and a stale hint merely narrows the search range, never
    changes the result.

    Args:
        chain_t: Upper-chain vertex times, sorted ascending (usually from
            :meth:`IncrementalConvexHull.upper_chain`; the chain may include
            the new point itself as its last vertex — vertices at or after
            ``t_new`` are excluded from the support, like the list scan).
        chain_x: Matching vertex values.
        t_new: Time of the newly arrived point.
        x_new: Value of the newly arrived point.
        epsilon: Precision width in this dimension.
        current: The existing upper bound; competes with the tangent
            candidate exactly as in :func:`min_slope_upper_line` (kept only
            when *strictly* smaller in slope).
        hint: Support index returned by the previous call, or ``None`` for a
            cold search.

    Raises:
        ValueError: If there is no support vertex and no ``current`` line.
    """
    time_at = chain_t.item
    value_at = chain_x.item
    count = chain_t.shape[0]
    t_new = float(t_new)
    while count > 0 and time_at(count - 1) >= t_new:
        count -= 1
    if count == 0:
        if current is None:
            raise ValueError("no support points available to build an upper bound")
        return current, -1
    epsilon = float(epsilon)
    shifted_new = float(x_new) + epsilon
    low = 0
    high = count - 1

    # f(i) — the candidate slope through (chain[i] - eps) and the shifted
    # new point — is strictly unimodal along the convex chain, so the
    # predicate g(i) = f(i) <= f(i+1) is monotone false->true and the
    # extremal support is the leftmost index where g holds.
    def slope_at(index: int) -> float:
        return (shifted_new - (value_at(index) - epsilon)) / (t_new - time_at(index))

    if hint is not None and low < high:
        pivot = hint if hint < high else high
        if pivot < low:
            pivot = low
        # g(high) is vacuously true — the valley is never right of high.
        if pivot == high or slope_at(pivot) <= slope_at(pivot + 1):
            if pivot == low or slope_at(pivot - 1) > slope_at(pivot):
                low = high = pivot  # hint hit: still the leftmost valley
            else:
                high = pivot - 1  # valley strictly left of the hint
        else:
            low = pivot + 1  # valley strictly right of the hint
    while low < high:
        mid = (low + high) >> 1
        if slope_at(mid) <= slope_at(mid + 1):
            high = mid
        else:
            low = mid + 1
    # Exactly Line.from_points(t_i, x_i - eps, t_new, x_new + eps); the
    # support time is strictly earlier than t_new, so no degeneracy check.
    t_support = time_at(low)
    x_support = value_at(low) - epsilon
    slope = (shifted_new - x_support) / (t_new - t_support)
    if current is not None and current.slope < slope:
        return current, low
    return Line(slope, x_support - slope * t_support), low


def max_slope_lower_tangent_search(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
    hint: Optional[int] = None,
) -> Tuple[Line, int]:
    """Hinted variant of :func:`max_slope_lower_tangent`.

    Mirror image of :func:`min_slope_upper_tangent_search`; see that
    function for the parameter description and the warm-start contract.
    """
    time_at = chain_t.item
    value_at = chain_x.item
    count = chain_t.shape[0]
    t_new = float(t_new)
    while count > 0 and time_at(count - 1) >= t_new:
        count -= 1
    if count == 0:
        if current is None:
            raise ValueError("no support points available to build a lower bound")
        return current, -1
    epsilon = float(epsilon)
    shifted_new = float(x_new) - epsilon
    low = 0
    high = count - 1

    def slope_at(index: int) -> float:
        return (shifted_new - (value_at(index) + epsilon)) / (t_new - time_at(index))

    if hint is not None and low < high:
        pivot = hint if hint < high else high
        if pivot < low:
            pivot = low
        if pivot == high or slope_at(pivot) >= slope_at(pivot + 1):
            if pivot == low or slope_at(pivot - 1) < slope_at(pivot):
                low = high = pivot
            else:
                high = pivot - 1
        else:
            low = pivot + 1
    while low < high:
        mid = (low + high) >> 1
        if slope_at(mid) >= slope_at(mid + 1):
            high = mid
        else:
            low = mid + 1
    t_support = time_at(low)
    x_support = value_at(low) + epsilon
    slope = (shifted_new - x_support) / (t_new - t_support)
    if current is not None and current.slope > slope:
        return current, low
    return Line(slope, x_support - slope * t_support), low


def min_slope_upper_tangent(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Array variant of :func:`min_slope_upper_line` over a convex upper chain.

    Cold-search convenience wrapper around
    :func:`min_slope_upper_tangent_search` (which also returns the support
    index for warm-starting the next search).
    """
    line, _ = min_slope_upper_tangent_search(
        chain_t, chain_x, t_new, x_new, epsilon, current=current
    )
    return line


def max_slope_lower_tangent(
    chain_t: np.ndarray,
    chain_x: np.ndarray,
    t_new: float,
    x_new: float,
    epsilon: float,
    current: Optional[Line] = None,
) -> Line:
    """Array variant of :func:`max_slope_lower_line` over a convex lower chain.

    Cold-search convenience wrapper around
    :func:`max_slope_lower_tangent_search`.
    """
    line, _ = max_slope_lower_tangent_search(
        chain_t, chain_x, t_new, x_new, epsilon, current=current
    )
    return line
