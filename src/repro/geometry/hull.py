"""Incremental convex hull of a time-ordered point sequence.

The slide filter (paper §4.1, Lemma 4.3) only needs to examine the vertices of
the convex hull of the data points observed in the current filtering interval
when one of its bounding lines has to be re-supported.  Because points arrive
in strictly increasing time order, the hull can be maintained with the classic
monotone-chain ("Andrew") incremental update: the new point is appended to
both the upper and the lower chain and previously inserted vertices that no
longer form a convex turn are popped from the tail.

Amortised cost is O(1) per point; each point is pushed and popped at most once
per chain.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["IncrementalConvexHull", "cross_product"]

Point = Tuple[float, float]


def cross_product(o: Point, a: Point, b: Point) -> float:
    """Return the z-component of the cross product ``(a - o) x (b - o)``.

    Positive values mean the three points make a counter-clockwise turn,
    negative values a clockwise turn, and zero that they are collinear.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


class IncrementalConvexHull:
    """Online convex hull for points with strictly increasing ``t``.

    The hull is stored as two chains sharing their first and last points:

    * ``upper``: vertices making clockwise turns as time increases — the part
      of the hull boundary seen from above.
    * ``lower``: vertices making counter-clockwise turns — the part seen from
      below.

    The interface is intentionally small: :meth:`add` to append the next point
    in time order, plus read-only views of the chains used by the slide
    filter's tangent searches.
    """

    def __init__(self, points: Iterable[Point] = ()) -> None:
        self._upper: List[Point] = []
        self._lower: List[Point] = []
        self._count = 0
        self._last_time: float | None = None
        for t, x in points:
            self.add(t, x)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, t: float, x: float) -> None:
        """Append the point ``(t, x)``; ``t`` must exceed all previous times.

        Raises:
            ValueError: If ``t`` is not strictly greater than the time of the
                previously added point.
        """
        if self._last_time is not None and t <= self._last_time:
            raise ValueError(
                f"hull points must have strictly increasing time; got {t!r} "
                f"after {self._last_time!r}"
            )
        self._last_time = t
        point = (t, x)
        self._append(self._upper, point, keep_turn=-1)
        self._append(self._lower, point, keep_turn=+1)
        self._count += 1

    @staticmethod
    def _append(chain: List[Point], point: Point, keep_turn: int) -> None:
        """Append ``point`` to ``chain`` keeping only convex turns.

        Args:
            chain: The upper or lower chain, ordered by time.
            point: The new point (later than everything in ``chain``).
            keep_turn: ``-1`` to keep clockwise turns (upper chain), ``+1`` to
                keep counter-clockwise turns (lower chain).
        """
        chain.append(point)
        while len(chain) >= 3:
            turn = cross_product(chain[-3], chain[-2], chain[-1])
            if turn * keep_turn > 0.0:
                break
            # The middle vertex is no longer on the hull (wrong turn or
            # collinear); drop it and re-examine the new tail triple.
            del chain[-2]

    def clear(self) -> None:
        """Forget all points (start of a new filtering interval)."""
        self._upper.clear()
        self._lower.clear()
        self._count = 0
        self._last_time = None

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def upper(self) -> Sequence[Point]:
        """Vertices of the upper chain, ordered by time."""
        return tuple(self._upper)

    @property
    def lower(self) -> Sequence[Point]:
        """Vertices of the lower chain, ordered by time."""
        return tuple(self._lower)

    @property
    def size(self) -> int:
        """Number of points fed into the hull so far."""
        return self._count

    @property
    def vertex_count(self) -> int:
        """Number of distinct hull vertices currently stored."""
        return len(self.vertices())

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def vertices(self) -> List[Point]:
        """Return all distinct hull vertices ordered by time."""
        if not self._upper:
            return []
        merged = dict.fromkeys(self._upper)
        merged.update(dict.fromkeys(self._lower))
        return sorted(merged, key=lambda p: p[0])

    def contains_time(self, t: float) -> bool:
        """Return ``True`` when ``t`` falls inside the hull's time span."""
        if not self._upper:
            return False
        return self._upper[0][0] <= t <= self._upper[-1][0]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IncrementalConvexHull(points={self._count}, "
            f"upper={len(self._upper)}, lower={len(self._lower)})"
        )
