"""Incremental convex hull of a time-ordered point sequence.

The slide filter (paper §4.1, Lemma 4.3) only needs to examine the vertices of
the convex hull of the data points observed in the current filtering interval
when one of its bounding lines has to be re-supported.  Because points arrive
in strictly increasing time order, the hull can be maintained with the classic
monotone-chain ("Andrew") incremental update: the new point is appended to
both the upper and the lower chain and previously inserted vertices that no
longer form a convex turn are popped from the tail.

The chains are stored as preallocated numpy arrays (``t`` and ``x`` columns
per chain), not Python tuple lists: the slide filter's batch path inserts
whole runs of points at once through :meth:`IncrementalConvexHull.add_many`,
whose monotone-chain pops are computed with *array* cross-products — each
pass removes every vertex whose tail triple makes the wrong turn in one
vectorized sweep, so a silent run costs no per-point Python dispatch.  The
array layout also lets the tangent searches in :mod:`repro.geometry.tangents`
binary-search the chains directly (O(log m_H) per bound update).

Amortised cost is O(1) per point either way; each point is pushed and popped
at most once per chain.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["IncrementalConvexHull", "cross_product"]

Point = Tuple[float, float]

#: Initial capacity of a chain's coordinate arrays.
_INITIAL_CAPACITY = 16

#: Pending flushes up to this many points walk a Python-list monotone chain
#: (cheap pops/appends, one array store at the end); the vectorized
#: cross-product merge only wins beyond it.
_SCALAR_MERGE_LIMIT = 128

#: Deferred bulk appends are merged eagerly once this many points are
#: pending, bounding the staging memory of quiet stretches.
_PENDING_FLUSH_LIMIT = 8192


def cross_product(o: Point, a: Point, b: Point) -> float:
    """Return the z-component of the cross product ``(a - o) x (b - o)``.

    Positive values mean the three points make a counter-clockwise turn,
    negative values a clockwise turn, and zero that they are collinear.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _merge_chain(
    times: np.ndarray, values: np.ndarray, keep_turn: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce a time-sorted point sequence to its convex chain, vectorized.

    Repeatedly removes every interior point whose triple
    ``(p[i-1], p[i], p[i+1])`` does not make a strictly convex turn
    (``cross * keep_turn > 0``), all at once per pass.  Removing such a point
    is always safe — it lies on the wrong side of the segment joining two
    other points of the set, so it cannot be a strict hull vertex — and when
    no removable point remains the sequence *is* the convex chain, so the
    fixed point equals the sequential monotone-chain result.  Each pass is one
    array cross-product sweep; real signals converge in a handful of passes.
    """
    while times.shape[0] >= 3:
        # cross(p[i-1], p[i], p[i+1]) for every interior index i, with the
        # exact cross_product() expression.
        cross = (times[1:-1] - times[:-2]) * (values[2:] - values[:-2]) - (
            values[1:-1] - values[:-2]
        ) * (times[2:] - times[:-2])
        bad = keep_turn * cross <= 0.0
        if not bad.any():
            break
        keep = np.ones(times.shape[0], dtype=bool)
        keep[1:-1] = ~bad
        times = times[keep]
        values = values[keep]
    return times, values


class IncrementalConvexHull:
    """Online convex hull for points with strictly increasing ``t``.

    The hull is stored as two chains sharing their first and last points:

    * ``upper``: vertices making clockwise turns as time increases — the part
      of the hull boundary seen from above.
    * ``lower``: vertices making counter-clockwise turns — the part seen from
      below.

    The interface is intentionally small: :meth:`add` to append the next point
    in time order, :meth:`add_many` for a bulk append of a time-sorted run,
    plus read-only views of the chains used by the slide filter's tangent
    searches.
    """

    def __init__(self, points: Iterable[Point] = ()) -> None:
        self._upper_t = np.empty(_INITIAL_CAPACITY)
        self._upper_x = np.empty(_INITIAL_CAPACITY)
        self._upper_len = 0
        self._lower_t = np.empty(_INITIAL_CAPACITY)
        self._lower_x = np.empty(_INITIAL_CAPACITY)
        self._lower_len = 0
        #: Bulk appends accepted but not yet merged into the chains (lists of
        #: time/value arrays).  Merging costs one vectorized sweep regardless
        #: of how many runs accumulated, so it is deferred until a chain is
        #: actually read — consecutive silent runs then share one merge.
        self._pending_t: List[np.ndarray] = []
        self._pending_x: List[np.ndarray] = []
        self._pending_count = 0
        #: Cached last two vertices of each chain as plain floats
        #: ``[t_-2, x_-2, t_-1, x_-1]`` (``None`` when stale or < 2 vertices):
        #: the no-pop turn test in :meth:`add` then needs no array reads.
        self._upper_tail: List[float] | None = None
        self._lower_tail: List[float] | None = None
        self._count = 0
        self._last_time: float | None = None
        for t, x in points:
            self.add(t, x)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, t: float, x: float) -> None:
        """Append the point ``(t, x)``; ``t`` must exceed all previous times.

        Raises:
            ValueError: If ``t`` is not strictly greater than the time of the
                previously added point.
        """
        if self._last_time is not None and t <= self._last_time:
            raise ValueError(
                f"hull points must have strictly increasing time; got {t!r} "
                f"after {self._last_time!r}"
            )
        if self._pending_t:
            self._flush()
        self._last_time = t = float(t)
        x = float(x)
        # Both chains inline: the classic monotone-chain update — pop the
        # tail while the triple (chain[-2], chain[-1], new) does not make a
        # strictly convex turn — on plain Python floats.  The cached tail
        # makes the common no-pop append array-read free (this is the slide
        # filter's per-point hot path).
        times = self._upper_t
        values = self._upper_x
        length = self._upper_len
        tail = self._upper_tail
        if length >= 2:
            if tail is None:
                item_t = times.item
                item_x = values.item
                tail = [
                    item_t(length - 2), item_x(length - 2),
                    item_t(length - 1), item_x(length - 1),
                ]
            o_t, o_x, a_t, a_x = tail
            # Keep clockwise turns: cross(chain[-2], chain[-1], new) < 0.
            if (a_t - o_t) * (x - o_x) - (a_x - o_x) * (t - o_t) < 0.0:
                tail[0] = a_t
                tail[1] = a_x
                tail[2] = t
                tail[3] = x
                self._upper_tail = tail
            else:
                length -= 1
                a_t, a_x = o_t, o_x
                item_t = times.item
                item_x = values.item
                while length >= 2:
                    o_t = item_t(length - 2)
                    o_x = item_x(length - 2)
                    if (a_t - o_t) * (x - o_x) - (a_x - o_x) * (t - o_t) < 0.0:
                        break
                    length -= 1
                    a_t, a_x = o_t, o_x
                self._upper_tail = [a_t, a_x, t, x] if length >= 1 else None
        else:
            self._upper_tail = (
                [times.item(0), values.item(0), t, x] if length == 1 else None
            )
        if length == times.shape[0]:
            times, values = self._grow("_upper", 2 * length)
        times[length] = t
        values[length] = x
        self._upper_len = length + 1
        times = self._lower_t
        values = self._lower_x
        length = self._lower_len
        tail = self._lower_tail
        if length >= 2:
            if tail is None:
                item_t = times.item
                item_x = values.item
                tail = [
                    item_t(length - 2), item_x(length - 2),
                    item_t(length - 1), item_x(length - 1),
                ]
            o_t, o_x, a_t, a_x = tail
            # Keep counter-clockwise turns: cross(...) > 0.
            if (a_t - o_t) * (x - o_x) - (a_x - o_x) * (t - o_t) > 0.0:
                tail[0] = a_t
                tail[1] = a_x
                tail[2] = t
                tail[3] = x
                self._lower_tail = tail
            else:
                length -= 1
                a_t, a_x = o_t, o_x
                item_t = times.item
                item_x = values.item
                while length >= 2:
                    o_t = item_t(length - 2)
                    o_x = item_x(length - 2)
                    if (a_t - o_t) * (x - o_x) - (a_x - o_x) * (t - o_t) > 0.0:
                        break
                    length -= 1
                    a_t, a_x = o_t, o_x
                self._lower_tail = [a_t, a_x, t, x] if length >= 1 else None
        else:
            self._lower_tail = (
                [times.item(0), values.item(0), t, x] if length == 1 else None
            )
        if length == times.shape[0]:
            times, values = self._grow("_lower", 2 * length)
        times[length] = t
        values[length] = x
        self._lower_len = length + 1
        self._count += 1

    def _merge_small(
        self, prefix: str, keep_turn: float, time_list: List[float], value_list: List[float]
    ) -> None:
        """Walk a short pending batch into one chain on Python lists.

        The classic monotone-chain stack on list floats (pops and appends are
        a few tens of nanoseconds each), stored back into the chain arrays
        with two slice writes at the end.
        """
        length = getattr(self, prefix + "_len")
        chain_times = getattr(self, prefix + "_t")
        chain_values = getattr(self, prefix + "_x")
        stack_t = chain_times[:length].tolist()
        stack_x = chain_values[:length].tolist()
        pop_t = stack_t.pop
        pop_x = stack_x.pop
        push_t = stack_t.append
        push_x = stack_x.append
        for t, x in zip(time_list, value_list):
            size = len(stack_t)
            while size >= 2:
                o_t = stack_t[size - 2]
                o_x = stack_x[size - 2]
                turn = (stack_t[size - 1] - o_t) * (x - o_x) - (
                    stack_x[size - 1] - o_x
                ) * (t - o_t)
                if turn * keep_turn > 0.0:
                    break
                pop_t()
                pop_x()
                size -= 1
            push_t(t)
            push_x(x)
        size = len(stack_t)
        if size > chain_times.shape[0]:
            chain_times, chain_values = self._grow(prefix, 2 * size)
        chain_times[:size] = stack_t
        chain_values[:size] = stack_x
        setattr(self, prefix + "_len", size)

    def _grow(self, prefix: str, capacity: int) -> Tuple[np.ndarray, np.ndarray]:
        """Grow one chain's coordinate arrays to ``capacity`` slots."""
        times = np.empty(capacity)
        values = np.empty(capacity)
        old_t = getattr(self, prefix + "_t")
        old_x = getattr(self, prefix + "_x")
        copy = min(old_t.shape[0], capacity)
        times[:copy] = old_t[:copy]
        values[:copy] = old_x[:copy]
        setattr(self, prefix + "_t", times)
        setattr(self, prefix + "_x", values)
        return times, values

    def add_many(self, times, values) -> None:
        """Bulk-append a run of points with strictly increasing times.

        Equivalent to ``for t, x in zip(times, values): hull.add(t, x)`` —
        both reduce to the strictly convex chain over the same point sequence
        — but the monotone-chain pops run as array cross-product sweeps
        (:func:`_merge_chain`), so the amortized cost per point carries no
        Python dispatch.  The merge itself is deferred until a chain is read:
        consecutive bulk appends share one sweep.

        Raises:
            ValueError: If the times are not strictly increasing or do not
                all exceed the previously added point's time.
        """
        # np.array (not asarray): the caller's arrays are typically views of
        # a whole ingestion chunk, and a retained view would pin the chunk in
        # memory until the next chain read.
        times = np.array(times, dtype=float)
        values = np.array(values, dtype=float)
        if times.ndim != 1 or values.shape != times.shape:
            raise ValueError("add_many expects matching 1-D time/value arrays")
        count = times.shape[0]
        if count == 0:
            return
        if self._last_time is not None and times[0] <= self._last_time:
            raise ValueError(
                f"hull points must have strictly increasing time; got "
                f"{float(times[0])!r} after {self._last_time!r}"
            )
        if count > 1 and not bool(np.all(times[1:] > times[:-1])):
            raise ValueError("hull points must have strictly increasing time")
        self._pending_t.append(times)
        self._pending_x.append(values)
        self._pending_count += count
        self._count += count
        self._last_time = float(times[-1])
        if self._pending_count >= _PENDING_FLUSH_LIMIT:
            # Keep the deferred buffer bounded: without this, a long quiet
            # filtering interval would retain O(interval) points where the
            # hull's contract is O(m_H) vertices plus a bounded staging area.
            self._flush()

    def _flush(self) -> None:
        """Merge the pending bulk appends into the chain arrays.

        Short pendings walk the scalar monotone-chain append (the vectorized
        sweeps cost ~10 numpy dispatches per pass regardless of size); long
        ones run the array cross-product merge.
        """
        pending_t = self._pending_t
        if not pending_t:
            return
        pending_x = self._pending_x
        times = pending_t[0] if len(pending_t) == 1 else np.concatenate(pending_t)
        values = pending_x[0] if len(pending_x) == 1 else np.concatenate(pending_x)
        self._pending_t = []
        self._pending_x = []
        self._pending_count = 0
        self._upper_tail = None
        self._lower_tail = None
        if times.shape[0] <= _SCALAR_MERGE_LIMIT:
            time_list = times.tolist()
            value_list = values.tolist()
            self._merge_small("_upper", -1.0, time_list, value_list)
            self._merge_small("_lower", +1.0, time_list, value_list)
            return
        for prefix, length, keep_turn in (
            ("_upper", self._upper_len, -1.0),
            ("_lower", self._lower_len, +1.0),
        ):
            chain_t = getattr(self, prefix + "_t")
            chain_x = getattr(self, prefix + "_x")
            merged_t = np.concatenate([chain_t[:length], times])
            merged_x = np.concatenate([chain_x[:length], values])
            merged_t, merged_x = _merge_chain(merged_t, merged_x, keep_turn)
            size = merged_t.shape[0]
            if size > chain_t.shape[0]:
                chain_t, chain_x = self._grow(prefix, max(2 * size, _INITIAL_CAPACITY))
            chain_t[:size] = merged_t
            chain_x[:size] = merged_x
            setattr(self, prefix + "_len", size)

    def clear(self) -> None:
        """Forget all points (start of a new filtering interval)."""
        self._upper_len = 0
        self._lower_len = 0
        self._pending_t = []
        self._pending_x = []
        self._pending_count = 0
        self._upper_tail = None
        self._lower_tail = None
        self._count = 0
        self._last_time = None

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def upper(self) -> Sequence[Point]:
        """Vertices of the upper chain, ordered by time."""
        if self._pending_t:
            self._flush()
        return tuple(
            zip(
                self._upper_t[: self._upper_len].tolist(),
                self._upper_x[: self._upper_len].tolist(),
            )
        )

    @property
    def lower(self) -> Sequence[Point]:
        """Vertices of the lower chain, ordered by time."""
        if self._pending_t:
            self._flush()
        return tuple(
            zip(
                self._lower_t[: self._lower_len].tolist(),
                self._lower_x[: self._lower_len].tolist(),
            )
        )

    def upper_chain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Upper-chain coordinate arrays ``(times, values)``, ordered by time.

        Read-only views into the hull's buffers, valid until the next
        mutation; used by the array tangent searches.
        """
        if self._pending_t:
            self._flush()
        return self._upper_t[: self._upper_len], self._upper_x[: self._upper_len]

    def lower_chain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Lower-chain coordinate arrays ``(times, values)``, ordered by time."""
        if self._pending_t:
            self._flush()
        return self._lower_t[: self._lower_len], self._lower_x[: self._lower_len]

    @property
    def size(self) -> int:
        """Number of points fed into the hull so far."""
        return self._count

    @property
    def vertex_count(self) -> int:
        """Number of distinct hull vertices currently stored."""
        return len(self.vertices())

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def vertices(self) -> List[Point]:
        """Return all distinct hull vertices ordered by time."""
        if self._pending_t:
            self._flush()
        if not self._upper_len:
            return []
        merged = dict.fromkeys(self.upper)
        merged.update(dict.fromkeys(self.lower))
        return sorted(merged, key=lambda p: p[0])

    def contains_time(self, t: float) -> bool:
        """Return ``True`` when ``t`` falls inside the hull's time span."""
        if not self._count:
            return False
        if self._pending_t:
            self._flush()
        return self._upper_t[0] <= t <= self._upper_t[self._upper_len - 1]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self._pending_t:
            self._flush()
        return (
            f"IncrementalConvexHull(points={self._count}, "
            f"upper={self._upper_len}, lower={self._lower_len})"
        )
