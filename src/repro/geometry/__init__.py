"""Geometric primitives used by the stream filters.

The swing and slide filters reason about straight lines in the ``t``–``x``
plane (one plane per signal dimension) and, for the slide filter, about the
convex hull of the data points observed in the current filtering interval.
This subpackage provides those primitives:

* :class:`~repro.geometry.lines.Line` — an infinite line ``x = a·t + b`` with
  helpers for construction from two points, evaluation, and intersection.
* :class:`~repro.geometry.hull.IncrementalConvexHull` — the online upper/lower
  monotone-chain hull of a sequence of points with strictly increasing ``t``.
* :mod:`~repro.geometry.tangents` — extremal ε-shifted support lines between a
  new point and the hull vertices (Lemma 4.3 of the paper).
"""

from repro.geometry.hull import IncrementalConvexHull
from repro.geometry.lines import Line
from repro.geometry.tangents import max_slope_lower_line, min_slope_upper_line

__all__ = [
    "Line",
    "IncrementalConvexHull",
    "min_slope_upper_line",
    "max_slope_lower_line",
]
