"""Infinite straight lines in the ``t``–``x`` plane.

The filters in :mod:`repro.core` treat every signal dimension independently as
a two-dimensional problem in the plane spanned by time ``t`` and the dimension
value ``x``.  A bounding hyperplane that is perpendicular to the ``t``–``x``
plane (as used throughout the paper) projects onto that plane as an ordinary
line, so a slope/intercept representation is sufficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Line", "EPSILON_TIME"]

#: Two intersection/evaluation times closer than this are considered equal.
#: Data timestamps are required to be strictly increasing by at least the
#: caller's resolution, so this only guards pure floating-point noise.
EPSILON_TIME = 1e-12


@dataclass(frozen=True)
class Line:
    """An infinite line ``x = slope * t + intercept``.

    Instances are immutable; all "mutating" geometry (swinging a bound up or
    down, sliding it onto a new support point) is expressed by constructing a
    new :class:`Line`.

    Attributes:
        slope: Rate of change of ``x`` per unit of ``t`` (``dx/dt``).
        intercept: Value of the line at ``t = 0``.
    """

    slope: float
    intercept: float

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, t1: float, x1: float, t2: float, x2: float) -> "Line":
        """Build the unique line through ``(t1, x1)`` and ``(t2, x2)``.

        Raises:
            ValueError: If ``t1 == t2`` (the line would be vertical and cannot
                be represented as a function of ``t``).
        """
        if math.isclose(t1, t2, rel_tol=0.0, abs_tol=EPSILON_TIME):
            raise ValueError(
                f"cannot build a line from two points with equal time {t1!r}"
            )
        slope = (x2 - x1) / (t2 - t1)
        intercept = x1 - slope * t1
        return cls(slope, intercept)

    @classmethod
    def from_point_slope(cls, t: float, x: float, slope: float) -> "Line":
        """Build the line with the given ``slope`` passing through ``(t, x)``."""
        return cls(slope, x - slope * t)

    @classmethod
    def horizontal(cls, x: float) -> "Line":
        """Build the horizontal line ``x = const``."""
        return cls(0.0, x)

    # ------------------------------------------------------------------ #
    # Evaluation and relations
    # ------------------------------------------------------------------ #
    def value_at(self, t: float) -> float:
        """Return the line value at time ``t``."""
        return self.slope * t + self.intercept

    def __call__(self, t: float) -> float:
        return self.value_at(t)

    def shifted(self, delta: float) -> "Line":
        """Return a copy translated vertically by ``delta``."""
        return Line(self.slope, self.intercept + delta)

    def is_parallel_to(self, other: "Line", tol: float = 1e-12) -> bool:
        """Return ``True`` when the two lines have (numerically) equal slope."""
        return math.isclose(self.slope, other.slope, rel_tol=0.0, abs_tol=tol)

    def intersection_time(self, other: "Line") -> Optional[float]:
        """Return the time at which this line crosses ``other``.

        Returns:
            The intersection time, or ``None`` if the lines are parallel
            (including the coincident case).
        """
        denominator = self.slope - other.slope
        if denominator == 0.0:
            return None
        return (other.intercept - self.intercept) / denominator

    def intersection_point(self, other: "Line") -> Optional[Tuple[float, float]]:
        """Return the ``(t, x)`` intersection point with ``other`` (or ``None``)."""
        t = self.intersection_time(other)
        if t is None:
            return None
        return t, self.value_at(t)

    def vertical_distance(self, t: float, x: float) -> float:
        """Return the signed vertical distance from the point to the line.

        Positive values mean the point lies *above* the line.
        """
        return x - self.value_at(t)

    def is_above_point(self, t: float, x: float, tol: float = 0.0) -> bool:
        """Return ``True`` when the line passes above the point ``(t, x)``."""
        return self.value_at(t) > x + tol

    def is_below_point(self, t: float, x: float, tol: float = 0.0) -> bool:
        """Return ``True`` when the line passes below the point ``(t, x)``."""
        return self.value_at(t) < x - tol

    def within_of_point(self, t: float, x: float, epsilon: float, slack: float = 0.0) -> bool:
        """Return ``True`` when the line is within ``epsilon`` of ``(t, x)``.

        Args:
            t: Time coordinate of the point.
            x: Value coordinate of the point.
            epsilon: Allowed absolute deviation.
            slack: Extra tolerance added to ``epsilon`` to absorb rounding
                error when verifying invariants.
        """
        return abs(self.value_at(t) - x) <= epsilon + slack

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Line(slope={self.slope:.6g}, intercept={self.intercept:.6g})"
