"""The StreamDB network service: one asyncio server over one session.

:class:`StreamDBServer` multiplexes many concurrent TCP clients over a
single :class:`~repro.api.session.StreamDB`:

* **Ingest** — each stream being written over the network gets a bounded
  :class:`~repro.runtime.async_source.QueueAsyncSource` drained by one
  ``aappend_stream`` task, so points flow through the exact live-append
  path an in-process session uses (bit-identical recordings, queryable
  in-flight state).  A full queue answers ``throttle`` instead of
  buffering without bound — backpressure reaches the client, never the
  heap.
* **Queries** — ``aggregate`` / ``resample`` / ``zoom`` / ``crossings`` /
  ``read`` run on a thread-pool executor (the session serializes itself on
  its own lock), so the event loop never blocks on mmap reads while a
  hundred clients are connected.
* **Tail subscriptions** — a session recording listener feeds the
  :class:`~repro.server.hub.BroadcastHub`; every newly recorded segment is
  pushed to subscribers as it is emitted, with slow subscribers evicted.

The server owns the store's writer lock for its lifetime (taken by the
session's writer-mode store on open) and shuts down gracefully: stop
accepting, drain every ingest queue, flush buffered sinks, write a final
checkpoint of the live filter states, close.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import types
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro import __version__
from repro.api.session import StreamDB
from repro.core.errors import ReproError
from repro.runtime.async_source import QueueAsyncSource
from repro.server.auth import RateLimiter, TokenAuthorizer
from repro.server.hub import DEFAULT_TAIL_QUEUE, BroadcastHub, Subscription
from repro.server.protocol import (
    CODEC_JSON,
    ProtocolError,
    available_codecs,
    encode_frame,
    read_frame,
    recordings_to_wire,
    aggregate_to_wire,
    zoom_cell_to_wire,
)

__all__ = ["StreamDBServer", "DEFAULT_INGEST_QUEUE"]

logger = logging.getLogger(__name__)

#: Default bound on a stream's undrained ingest chunks.
DEFAULT_INGEST_QUEUE = 32

#: Suggested client back-off when an ingest queue is full.  The queue turns
#: over as fast as the filter runs a chunk, so the wait is short.
_THROTTLE_RETRY = 0.05


class _RequestError(ReproError):
    """An op failure with a machine-readable code, sent as a response."""

    def __init__(self, code: str, message: str, **extra):
        super().__init__(message)
        self.code = code
        self.extra = extra


@dataclass
class _IngestChannel:
    """Server-side state of one stream being written over the network."""

    source: QueueAsyncSource
    task: "asyncio.Task"
    points: int = 0
    error: Optional[str] = None


@dataclass(eq=False)  # identity semantics: connections live in a set
class _Connection:
    """Per-client connection state."""

    reader: "asyncio.StreamReader"
    writer: "asyncio.StreamWriter"
    ident: int
    codec: str = CODEC_JSON
    grants: Optional[tuple] = None
    subscriptions: Dict[int, "asyncio.Task"] = field(default_factory=dict)
    write_lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)
    next_subscription: int = 1

    async def send(self, body: Dict) -> None:
        # One frame at a time per connection: responses and tail pushes
        # share the socket, and an interleaved write would tear frames.
        async with self.write_lock:
            self.writer.write(encode_frame(body, self.codec))
            await self.writer.drain()


class StreamDBServer:
    """Serve one :class:`StreamDB` session to many network clients.

    Args:
        db: The session to serve (opened writable; its store's writer lock
            is held for the server's lifetime).
        host / port: Bind address (``port=0`` picks a free port; see
            :attr:`port` after :meth:`start`).
        tokens: ``{token: stream_patterns}`` enabling per-stream
            authorization (see :class:`~repro.server.auth.TokenAuthorizer`).
        rate_limit: Sustained ingest budget in points/second per
            connection × stream (``None`` disables).
        rate_burst: Burst depth for ``rate_limit`` (default ``2 × rate``).
        ingest_queue: Bound on each stream's undrained ingest chunks; a
            full queue answers ``throttle``.
        tail_queue: Bound on each tail subscriber's undelivered events;
            overflow evicts the subscriber.
        checkpoint_dir: When set, graceful shutdown snapshots every live
            filter state there (and detaches instead of sealing), so a
            restarted server resumes bit-identically.
        close_db: Close the session on :meth:`aclose` (default); pass
            ``False`` when the caller keeps using it.
        executor_workers: Thread-pool size for session calls.
    """

    def __init__(
        self,
        db: StreamDB,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tokens=None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        ingest_queue: int = DEFAULT_INGEST_QUEUE,
        tail_queue: int = DEFAULT_TAIL_QUEUE,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        close_db: bool = True,
        executor_workers: int = 4,
    ) -> None:
        if ingest_queue < 1:
            raise ValueError(f"ingest_queue must be positive, got {ingest_queue}")
        if db.read_only:
            raise ValueError("the server needs a writable session (mode='w')")
        self._db = db
        self._host = host
        self._port = port
        self._authorizer = TokenAuthorizer(tokens)
        self._limiter = RateLimiter(rate_limit, rate_burst)
        self._ingest_queue = ingest_queue
        self._tail_queue = tail_queue
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._close_db = close_db
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="streamdb-server"
        )
        self._hub: Optional[BroadcastHub] = None
        self._server: Optional["asyncio.AbstractServer"] = None
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._channels: Dict[str, _IngestChannel] = {}
        self._connections: Set[_Connection] = set()
        self._next_connection = 1
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    @property
    def host(self) -> str:
        return self._host

    @property
    def db(self) -> StreamDB:
        return self._db

    async def start(self) -> "StreamDBServer":
        """Bind the listening socket and start accepting clients."""
        self._loop = asyncio.get_running_loop()
        self._hub = BroadcastHub(tail_queue=self._tail_queue)
        self._db.add_recording_listener(self._on_recordings)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        logger.info("serving StreamDB on %s:%d", self._host, self._port)
        return self

    async def serve_forever(self) -> None:
        """Block until the server is closed."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting → drain → flush → checkpoint.

        Idempotent.  Ingest queues are drained through the filters (clients
        lose nothing that was acknowledged), buffered sinks are flushed,
        and — with ``checkpoint_dir`` configured — every live filter state
        is checkpointed and detached so a restart resumes bit-identically;
        without it, live streams seal.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for stream in list(self._channels):
            await self._close_channel(stream)
        await self._run(self._db.flush)
        if self._checkpoint_dir is not None:
            await self._run(self._db.snapshot, self._checkpoint_dir)
            for stream in list(await self._run(self._db.live_streams)):
                await self._run(self._db.detach, stream)
        self._db.remove_recording_listener(self._on_recordings)
        if self._close_db:
            await self._run(self._db.close)
        if self._hub is not None:
            self._hub.close()
        for connection in list(self._connections):
            for task in list(connection.subscriptions.values()):
                task.cancel()
            connection.writer.close()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "StreamDBServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def _run(self, fn, *args, **kwargs):
        """Run a session call on the executor; the loop stays responsive."""
        if kwargs:
            fn = functools.partial(fn, *args, **kwargs)
            args = ()
        return await self._loop.run_in_executor(self._executor, fn, *args)

    def _on_recordings(self, stream, recordings, sealed) -> None:
        # Session listener: runs on whatever thread appended (usually an
        # executor worker).  The hub hops back onto the loop itself.
        if self._hub is not None:
            self._hub.publish(stream, recordings, sealed)

    # ------------------------------------------------------------------ #
    # Ingest channels
    # ------------------------------------------------------------------ #
    def _channel_for(self, stream: str) -> _IngestChannel:
        channel = self._channels.get(stream)
        if channel is None:
            source = QueueAsyncSource(maxsize=self._ingest_queue)
            task = self._loop.create_task(self._drain_channel(stream, source))
            channel = _IngestChannel(source=source, task=task)
            self._channels[stream] = channel
        return channel

    async def _drain_channel(self, stream: str, source: QueueAsyncSource) -> None:
        try:
            await self._db.aappend_stream(stream, source, executor=self._executor)
        except Exception as error:  # noqa: BLE001 - reported per-op, not fatal
            channel = self._channels.get(stream)
            if channel is not None:
                channel.error = f"{type(error).__name__}: {error}"
                # Nobody consumes this queue anymore: discard what is left
                # so producers blocked in sync()/close() wake up.
                channel.source.drain_nowait()
            logger.exception("ingest for stream %r failed", stream)

    async def _close_channel(self, stream: str) -> None:
        channel = self._channels.pop(stream, None)
        if channel is None:
            return
        await channel.source.close()
        if channel.error is not None:
            channel.source.drain_nowait()
        await channel.task

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(
            reader=reader, writer=writer, ident=self._next_connection
        )
        self._next_connection += 1
        if not self._authorizer.enabled:
            connection.grants = ("*",)
        self._connections.add(connection)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    logger.debug("protocol error from client: %s", error)
                    break
                if request is None:
                    break
                await self._dispatch(connection, request)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(connection)
            for task in list(connection.subscriptions.values()):
                task.cancel()
            if self._limiter.enabled:
                self._limiter.forget(
                    (connection.ident, stream) for stream in list(self._channels)
                )
            writer.close()

    async def _dispatch(self, connection: _Connection, request: Dict) -> None:
        request_id = request.get("id")
        op = request.get("op")
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise _RequestError("bad_request", f"unknown op {op!r}")
            result = await handler(self, connection, request)
            response = {"id": request_id, "ok": True}
            response.update(result or {})
        except _RequestError as error:
            response = {
                "id": request_id,
                "ok": False,
                "error": {"code": error.code, "message": str(error), **error.extra},
            }
        except Exception as error:  # noqa: BLE001 - the server must stay up
            logger.exception("op %r failed", op)
            response = {
                "id": request_id,
                "ok": False,
                "error": {
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                },
            }
        try:
            await connection.send(response)
        except ConnectionError:
            pass

    def _require_stream(self, connection: _Connection, request: Dict) -> str:
        stream = request.get("stream")
        if not isinstance(stream, str) or not stream:
            raise _RequestError("bad_request", "missing stream name")
        if not self._authorizer.allows(connection.grants, stream):
            raise _RequestError(
                "auth",
                f"not authorized for stream {stream!r}"
                if connection.grants is not None
                else "authenticate first (op 'auth')",
            )
        return stream

    @staticmethod
    def _float_or_none(request: Dict, key: str):
        value = request.get(key)
        return None if value is None else float(value)

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    async def _op_hello(self, connection: _Connection, request: Dict) -> Dict:
        wanted = request.get("codec")
        codecs = available_codecs()
        if wanted is not None:
            if wanted not in codecs:
                raise _RequestError("bad_request", f"codec {wanted!r} not available")
            connection.codec = wanted
        return {
            "server": "repro-streamdb",
            "version": __version__,
            "codecs": codecs,
            "codec": connection.codec,
            "auth_required": self._authorizer.enabled,
        }

    async def _op_auth(self, connection: _Connection, request: Dict) -> Dict:
        grants = self._authorizer.grants(request.get("token"))
        if grants is None:
            raise _RequestError("auth", "unknown token")
        connection.grants = grants
        return {"streams": list(grants)}

    async def _op_ping(self, connection: _Connection, request: Dict) -> Dict:
        return {}

    async def _op_ingest(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        times = request.get("times")
        values = request.get("values")
        if times is None or values is None:
            raise _RequestError("bad_request", "ingest needs times and values")
        admitted, retry_after = self._limiter.admit(
            (connection.ident, stream), len(times)
        )
        if not admitted:
            raise _RequestError(
                "rate_limit",
                f"ingest rate exceeded for stream {stream!r}",
                retry_after=retry_after,
            )
        channel = self._channel_for(stream)
        if channel.error is not None:
            raise _RequestError(
                "ingest_failed",
                f"ingest for stream {stream!r} failed: {channel.error}",
            )
        try:
            channel.source.put_nowait(times, values)
        except asyncio.QueueFull:
            raise _RequestError(
                "throttle",
                f"ingest queue for stream {stream!r} is full",
                retry_after=_THROTTLE_RETRY,
            ) from None
        except (ValueError, TypeError) as error:
            raise _RequestError("bad_request", str(error)) from None
        channel.points += len(times)
        return {"accepted": len(times), "queued": channel.source.qsize()}

    async def _op_sync(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        channel = self._channels.get(stream)
        if channel is not None:
            await channel.source.join()
            if channel.error is not None:
                raise _RequestError(
                    "ingest_failed",
                    f"ingest for stream {stream!r} failed: {channel.error}",
                )
        return {"points": channel.points if channel else 0}

    async def _op_seal(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        channel = self._channels.get(stream)
        failed = None
        if channel is not None:
            await self._close_channel(stream)
            failed = channel.error
        try:
            entry = await self._run(self._db.seal, stream)
        except KeyError:
            if failed is not None:
                raise _RequestError(
                    "ingest_failed", f"ingest for stream {stream!r} failed: {failed}"
                ) from None
            raise _RequestError(
                "unknown_stream", f"stream {stream!r} has no live writer"
            ) from None
        if failed is not None:
            raise _RequestError(
                "ingest_failed", f"ingest for stream {stream!r} failed: {failed}"
            )
        return {"recordings": entry.recordings if entry is not None else 0}

    async def _op_streams(self, connection: _Connection, request: Dict) -> Dict:
        if self._authorizer.enabled and connection.grants is None:
            raise _RequestError("auth", "authenticate first (op 'auth')")
        names = await self._run(self._db.streams)
        return {
            "streams": [
                name
                for name in names
                if self._authorizer.allows(connection.grants, name)
            ]
        }

    async def _op_describe(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        entry = await self._run(self._describe_sync, stream)
        if entry is None:
            raise _RequestError(
                "unknown_stream", f"unknown stream {stream!r}"
            ) from None
        return {
            "stream": entry.name,
            "dimensions": entry.dimensions,
            "recordings": entry.recordings,
            "first_time": entry.first_time,
            "last_time": entry.last_time,
            "epsilon": entry.epsilon,
            "live": stream in self._channels,
        }

    def _describe_sync(self, stream: str):
        """Catalog entry for ``stream``, archiving a live first buffer if needed.

        ``StreamDB.describe`` only answers once a stream's first buffer is
        archived; a freshly ingested live stream would look unknown to
        clients that just synced it.  Runs on the executor thread.
        """
        try:
            return self._db.describe(stream)
        except KeyError:
            if stream not in self._db:
                return None
        self._db.flush()
        try:
            return self._db.describe(stream)
        except KeyError:
            # Live filter has not emitted a single recording yet.
            return types.SimpleNamespace(
                name=stream,
                dimensions=None,
                recordings=0,
                first_time=None,
                last_time=None,
                epsilon=None,
            )

    async def _op_read(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        recordings = await self._query(
            self._db.read,
            stream,
            self._float_or_none(request, "start"),
            self._float_or_none(request, "end"),
        )
        return {"recordings": recordings_to_wire(recordings)}

    async def _op_aggregate(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        call = functools.partial(
            self._db.aggregate,
            stream,
            self._float_or_none(request, "start"),
            self._float_or_none(request, "end"),
            window=self._float_or_none(request, "window"),
            step=self._float_or_none(request, "step"),
            dimension=int(request.get("dimension", 0)),
        )
        result = await self._query(call)
        if isinstance(result, list):
            return {"windows": [aggregate_to_wire(aggregate) for aggregate in result]}
        return {"aggregate": aggregate_to_wire(result)}

    async def _op_resample(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        if request.get("step") is None:
            raise _RequestError("bad_request", "resample needs step")
        times, values = await self._query(
            self._db.resample,
            stream,
            float(request["step"]),
            self._float_or_none(request, "start"),
            self._float_or_none(request, "end"),
        )
        return {"times": times.tolist(), "values": values.tolist()}

    async def _op_zoom(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        call = functools.partial(
            self._db.zoom,
            stream,
            self._float_or_none(request, "start"),
            self._float_or_none(request, "end"),
            dimension=int(request.get("dimension", 0)),
        )
        if request.get("max_points") is not None:
            call = functools.partial(call, max_points=int(request["max_points"]))
        cells = await self._query(call)
        return {"cells": [zoom_cell_to_wire(cell) for cell in cells]}

    async def _op_crossings(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        if request.get("threshold") is None:
            raise _RequestError("bad_request", "crossings needs threshold")
        call = functools.partial(
            self._db.crossings,
            stream,
            float(request["threshold"]),
            self._float_or_none(request, "start"),
            self._float_or_none(request, "end"),
            dimension=int(request.get("dimension", 0)),
        )
        times = await self._query(call)
        return {"times": [float(time) for time in times]}

    async def _query(self, fn, *args):
        try:
            return await self._run(fn, *args)
        except KeyError as error:
            raise _RequestError("unknown_stream", str(error)) from None
        except ValueError as error:
            raise _RequestError("bad_request", str(error)) from None

    async def _op_subscribe(self, connection: _Connection, request: Dict) -> Dict:
        stream = self._require_stream(connection, request)
        subscription = self._hub.subscribe(stream)
        ident = connection.next_subscription
        connection.next_subscription += 1
        connection.subscriptions[ident] = self._loop.create_task(
            self._pump_subscription(connection, ident, subscription)
        )
        return {"subscription": ident}

    async def _op_unsubscribe(self, connection: _Connection, request: Dict) -> Dict:
        ident = request.get("subscription")
        task = connection.subscriptions.get(ident)
        if task is None:
            raise _RequestError("bad_request", f"unknown subscription {ident!r}")
        task.cancel()
        return {}

    async def _op_stats(self, connection: _Connection, request: Dict) -> Dict:
        return {
            "connections": len(self._connections),
            "live_streams": sorted(self._channels),
            "subscriptions": sum(
                len(conn.subscriptions) for conn in self._connections
            ),
        }

    async def _pump_subscription(
        self, connection: _Connection, ident: int, subscription: Subscription
    ) -> None:
        """Forward one subscription's events to its connection as pushes."""
        try:
            async for event in subscription:
                await connection.send(
                    {
                        "push": "tail",
                        "subscription": ident,
                        "stream": event.stream,
                        "seq": event.seq,
                        "sealed": event.sealed,
                        "recordings": recordings_to_wire(event.recordings),
                    }
                )
            await connection.send(
                {
                    "push": "tail_end",
                    "subscription": ident,
                    "stream": subscription.stream,
                    "reason": subscription.close_reason,
                }
            )
        except (ConnectionError, asyncio.CancelledError):
            if self._hub is not None:
                self._hub.unsubscribe(subscription)
        finally:
            connection.subscriptions.pop(ident, None)

    _HANDLERS = {
        "hello": _op_hello,
        "auth": _op_auth,
        "ping": _op_ping,
        "ingest": _op_ingest,
        "sync": _op_sync,
        "seal": _op_seal,
        "streams": _op_streams,
        "describe": _op_describe,
        "read": _op_read,
        "aggregate": _op_aggregate,
        "resample": _op_resample,
        "zoom": _op_zoom,
        "crossings": _op_crossings,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "stats": _op_stats,
    }
