"""Per-stream token authorization and ingest rate limiting.

Multi-tenant guards for the server, deliberately small:

* :class:`TokenAuthorizer` — static token table mapping each token to the
  stream name patterns (``fnmatch`` globs) it may touch.  A server with no
  tokens configured is open (the single-tenant default); once any token is
  configured, every stream-scoped operation requires an authorized one.
* :class:`RateLimiter` — classic token-bucket over ingest *points* per key
  (the server keys per connection × stream), so a hot client smooths to the
  configured sustained rate after its burst allowance.  Refusals are
  communicated, not queued: the server answers ``rate_limit`` and the
  client retries after ``retry_after`` seconds.
"""

from __future__ import annotations

import time
from fnmatch import fnmatchcase
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = ["TokenAuthorizer", "RateLimiter"]


class TokenAuthorizer:
    """Static token → stream-pattern table.

    Args:
        tokens: ``{token: patterns}`` where ``patterns`` is an iterable of
            ``fnmatch`` globs (``"*"`` grants every stream) or a single
            pattern string.  ``None`` / empty disables authorization.
    """

    def __init__(self, tokens: Optional[Mapping[str, object]] = None) -> None:
        table: Dict[str, Tuple[str, ...]] = {}
        for token, patterns in (tokens or {}).items():
            if isinstance(patterns, str):
                patterns = (patterns,)
            table[str(token)] = tuple(str(pattern) for pattern in patterns)
        self._tokens = table

    @property
    def enabled(self) -> bool:
        """Whether any token is configured (open server otherwise)."""
        return bool(self._tokens)

    def grants(self, token: Optional[str]) -> Optional[Tuple[str, ...]]:
        """The stream patterns ``token`` grants, or ``None`` for a bad token.

        With authorization disabled every token — including none — grants
        everything.
        """
        if not self.enabled:
            return ("*",)
        if token is None:
            return None
        return self._tokens.get(token)

    @staticmethod
    def allows(patterns: Optional[Sequence[str]], stream: str) -> bool:
        """Whether granted ``patterns`` cover ``stream``."""
        if patterns is None:
            return False
        return any(fnmatchcase(stream, pattern) for pattern in patterns)


class RateLimiter:
    """Token bucket per key: ``rate`` units/second sustained, ``burst`` deep.

    ``None``/non-positive ``rate`` disables limiting.  Buckets are created
    on first sight of a key and start full, so short-lived clients never
    pay a warm-up penalty.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self._rate = float(rate) if rate and rate > 0 else None
        self._burst = float(burst) if burst else (self._rate * 2 if self._rate else None)
        self._clock = clock
        self._buckets: Dict[object, Tuple[float, float]] = {}  # key -> (level, stamp)

    @property
    def enabled(self) -> bool:
        return self._rate is not None

    def admit(self, key: object, amount: float) -> Tuple[bool, float]:
        """Try to spend ``amount`` units from ``key``'s bucket.

        Returns ``(admitted, retry_after)``; ``retry_after`` is the seconds
        until the bucket will hold ``amount`` again (0 when admitted).
        An ``amount`` beyond the burst depth is admitted whenever the bucket
        is full — refusing it forever would deadlock the client; the bucket
        just goes (and stays) negative until the debt drains.
        """
        if self._rate is None:
            return True, 0.0
        now = self._clock()
        level, stamp = self._buckets.get(key, (self._burst, now))
        level = min(self._burst, level + (now - stamp) * self._rate)
        wanted = min(float(amount), self._burst)
        if level >= wanted:
            self._buckets[key] = (level - float(amount), now)
            return True, 0.0
        self._buckets[key] = (level, now)
        return False, (wanted - level) / self._rate

    def forget(self, keys: Iterable[object]) -> None:
        """Drop the buckets of departed keys (connection teardown)."""
        for key in keys:
            self._buckets.pop(key, None)
