"""Wire protocol of the StreamDB server: length-prefixed, codec-tagged frames.

Every message — request, response, or server push — travels as one frame::

    +----------------+-------+-----------------------+
    | length (4B BE) | codec | body (length-1 bytes) |
    +----------------+-------+-----------------------+

``length`` counts the codec byte plus the body.  ``codec`` is ``b"J"`` for
JSON (always available) or ``b"M"`` for msgpack (used only when the optional
``msgpack`` package is importable on both ends; the client asks via
``hello``).  Bodies are flat dictionaries:

* **Requests** carry ``id`` (client-chosen, echoed back) and ``op`` plus the
  op's parameters.
* **Responses** echo ``id`` and carry ``ok``; failures add ``error`` with a
  machine-readable ``code`` (``throttle``, ``auth``, ``rate_limit``,
  ``ingest_failed``, ``unknown_stream``, ``bad_request``, ``internal``) and
  a human ``message``.
* **Pushes** (tail subscriptions) have no ``id``; they carry ``push`` so a
  client multiplexing one socket can route them.

Numbers ride as JSON floats: Python's ``json`` emits ``repr``-style
shortest-round-trip literals, so every ``float64`` survives the wire
bit-identically — the parity guarantees of the storage layer extend to the
network without a binary encoding.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.core.types import Recording, RecordingKind
from repro.queries.aggregates import RangeAggregate
from repro.queries.pyramid import ZoomCell

try:  # optional accelerator; the protocol never requires it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack is absent
    msgpack = None

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "MAX_FRAME",
    "ProtocolError",
    "available_codecs",
    "encode_frame",
    "decode_body",
    "read_frame",
    "recording_to_wire",
    "recording_from_wire",
    "recordings_to_wire",
    "recordings_from_wire",
    "aggregate_to_wire",
    "aggregate_from_wire",
    "zoom_cell_to_wire",
    "zoom_cell_from_wire",
]

CODEC_JSON = "J"
CODEC_MSGPACK = "M"

#: Upper bound on a frame body; a length prefix beyond this is treated as a
#: corrupt or hostile stream, not an allocation request.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError):
    """Raised on malformed frames: bad codec, oversized length, torn body."""


def available_codecs() -> List[str]:
    """Codecs this end can speak, preferred first."""
    codecs = [CODEC_JSON]
    if msgpack is not None:
        codecs.insert(0, CODEC_MSGPACK)
    return codecs


def encode_frame(body: Dict, codec: str = CODEC_JSON) -> bytes:
    """Serialize one message into a wire frame."""
    if codec == CODEC_JSON:
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError("msgpack codec requested but msgpack is not installed")
        payload = msgpack.packb(body, use_bin_type=True)
    else:
        raise ProtocolError(f"unknown codec {codec!r}")
    if len(payload) + 1 > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload) + 1) + codec.encode("ascii") + payload


def decode_body(codec_byte: bytes, payload: bytes) -> Dict:
    """Deserialize a frame body given its codec tag."""
    if codec_byte == b"J":
        body = json.loads(payload.decode("utf-8"))
    elif codec_byte == b"M":
        if msgpack is None:
            raise ProtocolError("peer sent msgpack but msgpack is not installed")
        body = msgpack.unpackb(payload, raw=False)
    else:
        raise ProtocolError(f"unknown codec byte {codec_byte!r}")
    if not isinstance(body, dict):
        raise ProtocolError(f"frame body must be a dict, got {type(body).__name__}")
    return body


async def read_frame(reader: "asyncio.StreamReader") -> Optional[Dict]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    Raises:
        ProtocolError: On a torn header/body or an oversized length prefix.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed mid-header")
        header += more
    (length,) = _HEADER.unpack(header)
    if length < 1 or length > MAX_FRAME:
        raise ProtocolError(f"invalid frame length {length}")
    try:
        blob = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return decode_body(blob[:1], blob[1:])


# --------------------------------------------------------------------- #
# Value encodings (shared by server and client)
# --------------------------------------------------------------------- #
def recording_to_wire(recording: Recording) -> Dict:
    """One recording as a wire dict (``t``/``v``/``k``)."""
    value = np.atleast_1d(np.asarray(recording.value, dtype=float))
    return {
        "t": float(recording.time),
        "v": [float(component) for component in value],
        "k": recording.kind.value,
    }


def recording_from_wire(raw: Dict) -> Recording:
    """Rebuild a recording from its wire dict."""
    return Recording(
        time=float(raw["t"]),
        value=np.asarray(raw["v"], dtype=float),
        kind=RecordingKind(raw["k"]),
    )


def recordings_to_wire(recordings: Sequence[Recording]) -> List[Dict]:
    return [recording_to_wire(recording) for recording in recordings]


def recordings_from_wire(raw: Sequence[Dict]) -> List[Recording]:
    return [recording_from_wire(item) for item in raw]


def aggregate_to_wire(aggregate: RangeAggregate) -> Dict:
    return {
        "start": aggregate.start,
        "end": aggregate.end,
        "minimum": aggregate.minimum,
        "maximum": aggregate.maximum,
        "mean": aggregate.mean,
        "integral": aggregate.integral,
    }


def aggregate_from_wire(raw: Dict) -> RangeAggregate:
    return RangeAggregate(**{key: float(raw[key]) for key in (
        "start", "end", "minimum", "maximum", "mean", "integral"
    )})


def zoom_cell_to_wire(cell: ZoomCell) -> Dict:
    wire = aggregate_to_wire(cell)  # same six leading fields
    wire["covered"] = cell.covered
    wire["level"] = cell.level
    return wire


def zoom_cell_from_wire(raw: Dict) -> ZoomCell:
    return ZoomCell(
        start=float(raw["start"]),
        end=float(raw["end"]),
        minimum=float(raw["minimum"]),
        maximum=float(raw["maximum"]),
        mean=float(raw["mean"]),
        integral=float(raw["integral"]),
        covered=float(raw["covered"]),
        level=int(raw["level"]),
    )
