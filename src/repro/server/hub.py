"""Per-stream broadcast hub backing live tail subscriptions.

Every chunk a live filter emits — the paper's compressed segments, exactly
what you'd ship over a constrained link — is published here and fanned out
to the stream's subscribers.  The hub is the bridge between two worlds:

* **Publishers** are session recording listeners, which fire on whatever
  thread ran ``StreamDB.append`` (the server's thread-pool executor).
  :meth:`BroadcastHub.publish` is therefore thread-safe: it hops onto the
  event loop via ``call_soon_threadsafe`` and touches subscriber state only
  there.
* **Subscribers** are asyncio consumers (one pump task per subscribed
  connection) draining bounded queues of :class:`TailEvent`.

Because the session lock serializes appends per stream and
``call_soon_threadsafe`` preserves call order, every subscriber sees a
stream's events in emission order with gapless per-stream sequence numbers
— a subscriber can prove completeness from ``seq`` alone.

Slow subscribers are *evicted*, never buffered without bound: when a
subscriber's queue is full at publish time, its pending events are dropped
and the subscription is closed with ``reason="evicted"``.  A tail is a live
feed, not a replay log — a consumer that cannot keep up re-reads the store.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.types import Recording

__all__ = ["TailEvent", "Subscription", "BroadcastHub", "DEFAULT_TAIL_QUEUE"]

#: Default bound on a subscriber's undelivered events.
DEFAULT_TAIL_QUEUE = 64


@dataclass
class TailEvent:
    """One published batch of a stream's new recordings.

    ``seq`` counts the stream's events from 0 with no gaps; ``sealed`` marks
    the stream's final event (the end-of-stream recordings ``seal`` emitted,
    possibly empty).  ``None`` in a subscriber queue means the subscription
    closed — see :attr:`Subscription.close_reason`.
    """

    stream: str
    seq: int
    recordings: Sequence[Recording]
    sealed: bool = False


@dataclass
class Subscription:
    """One subscriber's bounded view of a stream's tail."""

    stream: str
    queue: "asyncio.Queue" = field(default_factory=asyncio.Queue)
    close_reason: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self.close_reason is not None

    async def get(self) -> Optional[TailEvent]:
        """Next event, or ``None`` once the subscription is closed."""
        if self.closed and self.queue.empty():
            return None
        event = await self.queue.get()
        return event

    def __aiter__(self):
        return self

    async def __anext__(self) -> TailEvent:
        event = await self.get()
        if event is None:
            raise StopAsyncIteration
        return event


class BroadcastHub:
    """Fan recording batches out to per-stream subscribers.

    Construct on the serving event loop (subscriber state lives there);
    publish from any thread.
    """

    def __init__(self, *, tail_queue: int = DEFAULT_TAIL_QUEUE) -> None:
        if tail_queue < 2:
            # A subscription needs room for at least one event plus the
            # close marker, or eviction could not be signalled at all.
            raise ValueError(f"tail_queue must be at least 2, got {tail_queue}")
        self._loop = asyncio.get_event_loop()
        self._tail_queue = tail_queue
        self._subscribers: Dict[str, List[Subscription]] = {}
        self._sequences: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Loop side
    # ------------------------------------------------------------------ #
    def subscribe(self, stream: str) -> Subscription:
        """Add a subscriber to ``stream``'s tail (loop thread only)."""
        if self._closed:
            raise RuntimeError("hub is closed")
        subscription = Subscription(
            stream=stream, queue=asyncio.Queue(maxsize=self._tail_queue)
        )
        self._subscribers.setdefault(stream, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscriber (idempotent, loop thread only)."""
        self._close_subscription(subscription, "unsubscribed")

    def subscriber_count(self, stream: str) -> int:
        return len(self._subscribers.get(stream, ()))

    def close(self) -> None:
        """Close every subscription with ``reason="shutdown"``."""
        self._closed = True
        for stream in list(self._subscribers):
            for subscription in list(self._subscribers.get(stream, ())):
                self._close_subscription(subscription, "shutdown")

    # ------------------------------------------------------------------ #
    # Publisher side (any thread)
    # ------------------------------------------------------------------ #
    def publish(self, stream: str, recordings: Sequence[Recording], sealed: bool) -> None:
        """Queue one batch for ``stream``'s subscribers.

        Thread-safe and non-blocking: the work happens on the event loop.
        Silently drops the batch once the loop is closed (server teardown
        races a final flush; the subscribers are gone either way).
        """
        batch = tuple(recordings)
        try:
            self._loop.call_soon_threadsafe(self._publish_on_loop, stream, batch, sealed)
        except RuntimeError:
            pass

    def _publish_on_loop(
        self, stream: str, recordings: Sequence[Recording], sealed: bool
    ) -> None:
        seq = self._sequences.get(stream, 0)
        self._sequences[stream] = seq + 1
        subscribers = self._subscribers.get(stream)
        if not subscribers:
            return
        event = TailEvent(stream=stream, seq=seq, recordings=recordings, sealed=sealed)
        for subscription in list(subscribers):
            try:
                subscription.queue.put_nowait(event)
            except asyncio.QueueFull:
                self._evict(subscription)
                continue
            if sealed:
                self._close_subscription(subscription, "sealed")

    def _evict(self, subscription: Subscription) -> None:
        # Drop everything the slow consumer has not taken — delivering a
        # gap would be worse than delivering nothing, and the seq numbers
        # make the gap visible — then close the subscription.
        while not subscription.queue.empty():
            subscription.queue.get_nowait()
        self._close_subscription(subscription, "evicted")

    def _close_subscription(self, subscription: Subscription, reason: str) -> None:
        if subscription.closed:
            return
        subscription.close_reason = reason
        subscribers = self._subscribers.get(subscription.stream)
        if subscribers and subscription in subscribers:
            subscribers.remove(subscription)
            if not subscribers:
                del self._subscribers[subscription.stream]
        try:
            subscription.queue.put_nowait(None)
        except asyncio.QueueFull:  # pragma: no cover - eviction clears first
            pass
