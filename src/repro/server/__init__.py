"""StreamDB as a network service.

The paper's premise is shipping an ε-bounded approximation of a numerical
stream over a constrained link; this subpackage is that link.  A
:class:`~repro.server.service.StreamDBServer` multiplexes many concurrent
TCP clients over one :class:`~repro.api.session.StreamDB` session:

* bounded ingest queues feeding the live append path (backpressure reaches
  the client as ``throttle`` responses, never unbounded buffering),
* planner-backed queries over stored plus in-flight state, run on a thread
  executor so the event loop never blocks on storage reads,
* live tail subscriptions — each newly recorded segment pushed to
  subscribers through the :class:`~repro.server.hub.BroadcastHub`,
* per-stream token authorization and ingest rate limiting
  (:mod:`repro.server.auth`), and
* graceful shutdown (drain → flush → checkpoint).

Start one from the command line with ``repro serve`` or in code::

    import asyncio, repro
    from repro.server import StreamDBServer

    async def main():
        db = repro.open("./archive", filter=repro.FilterSpec("slide", epsilon=0.1))
        async with StreamDBServer(db, port=7450) as server:
            await server.serve_forever()

    asyncio.run(main())

The matching clients live in :mod:`repro.client`.
"""

from repro.server.auth import RateLimiter, TokenAuthorizer
from repro.server.hub import DEFAULT_TAIL_QUEUE, BroadcastHub, Subscription, TailEvent
from repro.server.protocol import (
    CODEC_JSON,
    CODEC_MSGPACK,
    MAX_FRAME,
    ProtocolError,
    available_codecs,
)
from repro.server.service import DEFAULT_INGEST_QUEUE, StreamDBServer

__all__ = [
    "StreamDBServer",
    "BroadcastHub",
    "Subscription",
    "TailEvent",
    "TokenAuthorizer",
    "RateLimiter",
    "ProtocolError",
    "available_codecs",
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "MAX_FRAME",
    "DEFAULT_INGEST_QUEUE",
    "DEFAULT_TAIL_QUEUE",
]
