"""The :class:`StreamDB` session — one façade over the whole pipeline.

The paper's value proposition is end-to-end: ε-bounded filtering at the
transmitter, archival of the recordings, and precision-guaranteed querying
at the receiver.  :class:`StreamDB` is the one public way to run that flow.
A session owns an open store and routes every operation to the right
engine:

* :meth:`ingest` — complete workloads, dispatched to the vectorized
  :class:`~repro.pipeline.ingest.BatchIngestor`, the checkpointed
  :func:`~repro.runtime.ingest.ingest_stream_checkpointed` runner, the
  async chunk bridge, or (via :meth:`ingest_many`) the shard-aligned
  multi-process :class:`~repro.runtime.parallel.ParallelIngestor` —
  depending only on the validated :class:`~repro.api.specs.IngestSpec`;
* :meth:`append` / :meth:`seal` — live, incremental writing with buffered
  archiving;
* :meth:`query` / :meth:`aggregate` / :meth:`crossings` /
  :meth:`resample` — answered uniformly over the stored recordings *plus*
  any live filter's in-flight state: the live filter is snapshot-read
  (:meth:`~repro.core.base.StreamFilter.snapshot` into a restored clone
  whose ``finish()`` yields the recordings a flush would produce), so the
  merged answer is bit-identical to a flush-then-read without disturbing
  the ongoing compression;
* :meth:`snapshot` / :meth:`restore` / :meth:`compact` — lifecycle.

Open a session with :func:`repro.open`::

    import repro

    with repro.open("./archive", shards=4,
                    filter=repro.FilterSpec("slide", epsilon=0.5)) as db:
        db.ingest("buoy-0", times, values)
        db.append("buoy-1", live_times, live_values)   # still compressing
        agg = db.aggregate("buoy-1", t0, t1)           # stored + in-flight
"""

from __future__ import annotations

import asyncio
import functools
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.api.specs import UNSET, FilterSpec, IngestSpec, StorageSpec
from repro.approximation.piecewise import Approximation
from repro.approximation.reconstruct import reconstruct
from repro.core.base import StreamFilter
from repro.core.registry import restore_filter
from repro.core.state import FilterState
from repro.core.types import Recording
from repro.pipeline.ingest import BatchIngestor, IngestReport
from repro.pipeline.sinks import StoreSink
from repro.queries.aggregates import (
    RangeAggregate,
    range_aggregate,
    resample as _resample,
    threshold_crossings,
    window_aggregates,
)
from repro.queries.planner import (
    plan_range_aggregate,
    plan_resample,
    plan_window_aggregates,
)
from repro.queries.pyramid import (
    DEFAULT_MAX_POINTS,
    ZoomCell,
    plan_zoom,
    zoom_cells,
)
from repro.runtime.checkpoint import CheckpointManager, IngestCheckpoint
from repro.runtime.ingest import ingest_stream_checkpointed
from repro.runtime.parallel import ParallelIngestReport, ParallelIngestor, StreamTask
from repro.storage import SegmentStore, ShardedStore, StoreLike
from repro.storage.backends.base import range_indices
from repro.storage.segment_store import StoredStream

__all__ = ["StreamDB", "open", "DEFAULT_ARCHIVE_BATCH"]

#: Recordings buffered per live stream before they are archived.
DEFAULT_ARCHIVE_BATCH = 256


def open(
    path: Union[str, Path],
    *,
    shards: Optional[int] = None,
    filter: Optional[FilterSpec] = None,
    storage: Optional[StorageSpec] = None,
    ingest: Optional[IngestSpec] = None,
    archive_batch: int = DEFAULT_ARCHIVE_BATCH,
    create: bool = True,
    mode: str = "w",
    snapshot: bool = False,
) -> "StreamDB":
    """Open a :class:`StreamDB` session on the store at ``path``.

    Args:
        path: Store directory (created when missing, unless ``create`` is
            ``False`` or the session is read-only).
        shards: Shorthand for ``storage=StorageSpec(shards=...)``.
        filter: Default :class:`FilterSpec` for writes that do not bring
            their own.
        storage: Full storage layout spec (mutually exclusive with
            ``shards``/``mode``/``snapshot``).
        ingest: Default :class:`IngestSpec`; per-call overrides apply on
            top of it.
        archive_batch: Recordings buffered per live stream before they are
            archived.
        create: When ``False``, refuse to create a store at a directory
            that does not already hold one.
        mode: Shorthand for ``storage=StorageSpec(mode=...)`` — ``"r"``
            opens the session read-only (queries only; mutations raise
            :class:`PermissionError`).
        snapshot: Shorthand for ``storage=StorageSpec(snapshot=True)`` — a
            generation-pinned read-only view, safe while another process
            keeps appending (``db.store.refresh()`` re-pins).

    Raises:
        ValueError: If both ``shards`` and ``storage`` are given, or
            ``mode``/``snapshot`` contradict an explicit ``storage``.
        FileNotFoundError: If ``create`` is ``False`` (or the session is
            read-only) and no store exists.
    """
    if storage is not None and shards is not None:
        raise ValueError("give shards either directly or via storage=, not both")
    if storage is not None and (mode != "w" or snapshot):
        raise ValueError(
            "give mode/snapshot either directly or via storage=, not both"
        )
    if storage is None:
        storage = StorageSpec(shards=shards, mode=mode, snapshot=snapshot)
    return StreamDB(
        path,
        filter=filter,
        storage=storage,
        ingest=ingest,
        archive_batch=archive_batch,
        create=create,
    )


@dataclass
class _LiveStream:
    """One live (still compressing) stream of a session."""

    filter: StreamFilter
    sink: StoreSink


#: ``callback(stream, recordings, sealed)`` — see
#: :meth:`StreamDB.add_recording_listener`.
RecordingListener = Callable[[str, Sequence[Recording], bool], None]


def _synchronized(method):
    """Serialize a public session method on the session's re-entrant lock.

    One lock covers the whole session (store handle, live filters, sink
    buffers move together on every operation), so a session is safe to share
    across threads — the server layer drives one ``StreamDB`` from a thread
    pool.  Re-entrant because public methods compose (``close`` seals,
    ``observe`` appends, split ingests fan out through ``ingest_many``).
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._mutex:
            return method(self, *args, **kwargs)

    return wrapper


class StreamDB:
    """A session over one store: ingestion, live writes, queries, lifecycle.

    Prefer :func:`repro.open` over constructing directly; the arguments are
    the same.  The session is a context manager — leaving it seals every
    live stream and flushes the store.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        filter: Optional[FilterSpec] = None,
        storage: Optional[StorageSpec] = None,
        ingest: Optional[IngestSpec] = None,
        archive_batch: int = DEFAULT_ARCHIVE_BATCH,
        create: bool = True,
    ) -> None:
        if archive_batch < 1:
            raise ValueError(f"archive_batch must be positive, got {archive_batch}")
        self._path = Path(path)
        self._filter_spec = filter
        self._storage_spec = storage if storage is not None else StorageSpec()
        self._ingest_spec = ingest if ingest is not None else IngestSpec()
        self._archive_batch = archive_batch
        if not create and not self._store_exists(self._path):
            raise FileNotFoundError(f"no stream store at {str(self._path)!r}")
        self._store: StoreLike = self._storage_spec.open(self._path)
        self._live: Dict[str, _LiveStream] = {}
        self._listeners: List[RecordingListener] = []
        self._mutex = threading.RLock()
        self._closed = False

    @staticmethod
    def _store_exists(path: Path) -> bool:
        return (path / ShardedStore.META_NAME).exists() or (
            path / SegmentStore.CATALOG_NAME
        ).exists()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """The store directory."""
        return self._path

    @property
    def store(self) -> StoreLike:
        """The underlying store (an escape hatch to the storage layer)."""
        return self._store

    @property
    def filter_spec(self) -> Optional[FilterSpec]:
        """The session's default filter spec (``None`` when not set)."""
        return self._filter_spec

    @property
    def read_only(self) -> bool:
        """Whether the session was opened with ``mode="r"``."""
        return bool(getattr(self._store, "read_only", False))

    @_synchronized
    def refresh(self):
        """Re-pin a snapshot session to the store's current generation.

        On a writable session this just flushes.  Returns the generation
        now reflected (a per-shard tuple for sharded stores).
        """
        self._check_open()
        return self._store.refresh()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @_synchronized
    def streams(self) -> List[str]:
        """All stream names — stored and live — sorted."""
        self._check_open()
        return sorted(set(self._store.stream_names()) | set(self._live))

    @_synchronized
    def live_streams(self) -> List[str]:
        """Names of the streams with a live (unsealed) filter, sorted."""
        self._check_open()
        return sorted(self._live)

    @_synchronized
    def describe(self, stream: str) -> StoredStream:
        """The store's catalog entry for ``stream``.

        Raises:
            KeyError: If the stream has no archived recordings yet (a live
                stream appears here once its first buffer is archived).
        """
        self._check_open()
        return self._store.describe(stream)

    def __contains__(self, stream: str) -> bool:
        return stream in self._live or stream in self._store

    def __len__(self) -> int:
        return len(self.streams())

    # ------------------------------------------------------------------ #
    # Bulk ingestion
    # ------------------------------------------------------------------ #
    @_synchronized
    def ingest(
        self,
        stream: str,
        times=None,
        values=None,
        *,
        source=None,
        filter: Optional[FilterSpec] = None,
        chunk_size: int = UNSET,
        workers: int = UNSET,
        split_dimensions: bool = UNSET,
        checkpoint: Optional[Union[str, Path]] = UNSET,
        checkpoint_every: int = UNSET,
        resume: bool = UNSET,
    ) -> Union[IngestReport, ParallelIngestReport]:
        """Ingest one complete workload into ``stream``.

        The workload is either monolithic arrays (``times`` + ``values``)
        or a ``source`` — an iterable (or *async* iterable) of
        ``(times, values)`` chunk pairs.  Keyword overrides apply on top of
        the session's :class:`IngestSpec`; the engine is chosen from the
        effective spec:

        * ``split_dimensions`` (or ``workers > 1``) — the workload is
          stored as per-dimension streams through the shard-aligned
          :class:`ParallelIngestor` (requires a sharded store; the layout
          is independent of the worker count),
        * ``checkpoint`` — the checkpointed, resumable runner,
        * an async ``source`` — the async chunk bridge (run to completion
          on a fresh event loop; call :meth:`aingest` from inside one),
        * otherwise — the plain vectorized batch engine.

        Returns:
            An :class:`IngestReport` (or a :class:`ParallelIngestReport`
            for the split-dimension path).

        Raises:
            ValueError: On conflicting workload arguments, a live writer on
                ``stream``, ``workers > 1`` without ``split_dimensions``,
                or a split ingest into an unsharded store.
        """
        self._check_open()
        spec = self._ingest_spec.merged(
            chunk_size=chunk_size,
            workers=workers,
            split_dimensions=split_dimensions,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        fspec = filter if filter is not None else self._require_filter_spec()
        if stream in self._live:
            raise ValueError(
                f"stream {stream!r} has a live writer; seal it before bulk ingestion"
            )
        if spec.workers > 1 and not spec.split_dimensions:
            raise ValueError(
                "workers above 1 requires split_dimensions: a single stream "
                "cannot be partitioned across workers"
            )
        if source is not None:
            if times is not None or values is not None:
                raise ValueError("give either times+values or source, not both")
            if spec.split_dimensions:
                raise ValueError("chunk sources cannot be split across dimensions")
            if hasattr(source, "__aiter__"):
                if spec.checkpoint is not None:
                    raise ValueError(
                        "checkpointing is not supported for async sources; "
                        "drain the source into arrays or a sync chunk iterable"
                    )
                return asyncio.run(
                    self.aingest(stream, source, filter=fspec, chunk_size=spec.chunk_size)
                )
            if spec.checkpoint is not None:
                report = ingest_stream_checkpointed(
                    self._store,
                    stream,
                    fspec.name,
                    fspec.resolve(None),
                    chunks=source,
                    chunk_size=spec.chunk_size,
                    checkpoint=spec.checkpoint,
                    checkpoint_every=spec.checkpoint_every,
                    resume=spec.resume,
                    **fspec.filter_kwargs(),
                )
                self._store.flush()
                return report
            ingestor = self._batch_ingestor(stream, fspec, spec.chunk_size, values=None)
            ingestor.ingest_stream(source)
            return ingestor.close()
        if times is None or values is None:
            raise ValueError("times and values must be given together")
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if spec.split_dimensions:
            return self._ingest_split(stream, times, values, fspec, spec)
        if spec.checkpoint is not None:
            report = ingest_stream_checkpointed(
                self._store,
                stream,
                fspec.name,
                fspec.resolve(values),
                times,
                values,
                chunk_size=spec.chunk_size,
                checkpoint=spec.checkpoint,
                checkpoint_every=spec.checkpoint_every,
                resume=spec.resume,
                **fspec.filter_kwargs(),
            )
            self._store.flush()
            return report
        ingestor = self._batch_ingestor(stream, fspec, spec.chunk_size, values=values)
        return ingestor.run(times, values)

    async def aingest(
        self,
        stream: str,
        source,
        *,
        filter: Optional[FilterSpec] = None,
        chunk_size: int = UNSET,
    ) -> IngestReport:
        """Ingest an async iterable of ``(times, values)`` chunk pairs.

        The coroutine-producing source is awaited between chunks while each
        chunk runs through the same vectorized batch engine as
        :meth:`ingest`.
        """
        self._check_open()
        spec = self._ingest_spec.merged(chunk_size=chunk_size)
        fspec = filter if filter is not None else self._require_filter_spec()
        if stream in self._live:
            raise ValueError(
                f"stream {stream!r} has a live writer; seal it before bulk ingestion"
            )
        ingestor = self._batch_ingestor(stream, fspec, spec.chunk_size, values=None)
        await ingestor.aingest_stream(source)
        return ingestor.close()

    @_synchronized
    def ingest_many(
        self,
        tasks: Sequence[StreamTask],
        *,
        filter: Optional[FilterSpec] = None,
        workers: int = UNSET,
        chunk_size: int = UNSET,
        checkpoint: Optional[Union[str, Path]] = UNSET,
        checkpoint_every: int = UNSET,
        resume: bool = UNSET,
    ) -> ParallelIngestReport:
        """Ingest a multi-stream workload across shard-owning workers.

        Each :class:`~repro.runtime.parallel.StreamTask` carries one
        stream's arrays (or a deferred loader).  The store must be sharded;
        the workers exclusively own their shards' segment stores, so the
        result is bit-identical to a single-process run.  The session's
        store handle is reopened afterwards to pick up the workers' writes.

        Raises:
            ValueError: If the store is not sharded, or the filter's
                precision is an unresolvable ``epsilon_percent`` for a
                deferred-loader task.
        """
        self._check_open()
        spec = self._ingest_spec.merged(
            workers=workers,
            chunk_size=chunk_size,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        fspec = filter if filter is not None else self._require_filter_spec()
        if not isinstance(self._store, ShardedStore):
            raise ValueError(
                "parallel multi-stream ingestion requires a sharded store; "
                "open the session with shards=N"
            )
        conflicting = [task.name for task in tasks if task.name in self._live]
        if conflicting:
            raise ValueError(
                f"stream(s) {', '.join(sorted(conflicting))} have live writers; "
                "seal them before bulk ingestion"
            )
        if fspec.epsilon is None:
            # Resolve the percentage per task while the arrays are at hand;
            # deferred loaders never materialize here, so they cannot carry
            # a percentage (FilterSpec.resolve raises with the remedy).
            tasks = [
                task
                if task.epsilon is not None
                else replace(task, epsilon=fspec.resolve(task.values))
                for task in tasks
            ]
        shard_count = self._store.shard_count
        # The workers own the shard stores exclusively while they run; this
        # session's handle is closed around the fan-out and reopened to see
        # the merged catalogs.  Live buffers are archived first and every
        # live sink is rebound to the fresh handle afterwards — a sink left
        # on the closed handle would archive into a stale catalog whose
        # flush could clobber the workers' writes.
        for live_stream in self._live.values():
            live_stream.sink.flush_records()
        self._store.close()
        try:
            ingestor = ParallelIngestor(
                self._path,
                fspec.name,
                fspec.epsilon,
                workers=spec.workers,
                shards=shard_count,
                chunk_size=spec.chunk_size,
                checkpoint=spec.checkpoint,
                checkpoint_every=spec.checkpoint_every,
                resume=spec.resume,
                backend=self._storage_spec.backend,
                block_records=self._storage_spec.block_records,
                **fspec.filter_kwargs(),
            )
            return ingestor.run(tasks)
        finally:
            self._store = self._storage_spec.open(self._path)
            for live_stream in self._live.values():
                live_stream.sink.store = self._store

    def _ingest_split(
        self,
        stream: str,
        times: np.ndarray,
        values: np.ndarray,
        fspec: FilterSpec,
        spec: IngestSpec,
    ) -> ParallelIngestReport:
        """Store a d-dimensional workload as per-dimension streams.

        The layout (stream names, shard count) depends only on the workload
        and the store — never on the worker count — so runs with different
        ``workers`` write, and resume, the same store.
        """
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        resolved = fspec.resolve(values)
        widths = np.atleast_1d(
            np.asarray(getattr(resolved, "epsilons", resolved), dtype=float)
        )
        if widths.shape[0] not in (1, values.shape[1]):
            raise ValueError(
                f"epsilon has {widths.shape[0]} widths for a "
                f"{values.shape[1]}-dimensional workload"
            )
        tasks = [
            StreamTask(
                name=f"{stream}/d{index}",
                times=times,
                values=values[:, index],
                epsilon=float(widths[index % widths.shape[0]]),
            )
            for index in range(values.shape[1])
        ]
        return self.ingest_many(
            tasks,
            filter=fspec,
            workers=spec.workers,
            chunk_size=spec.chunk_size,
            checkpoint=spec.checkpoint,
            checkpoint_every=spec.checkpoint_every,
            resume=spec.resume,
        )

    def _batch_ingestor(
        self, stream: str, fspec: FilterSpec, chunk_size: int, values
    ) -> BatchIngestor:
        stream_filter = fspec.create(values)  # raises when ε is unresolvable
        sink = StoreSink(self._store, stream, epsilon=fspec.epsilon_list(values))
        return BatchIngestor(stream_filter, chunk_size=chunk_size, sink=sink)

    # ------------------------------------------------------------------ #
    # Live writing
    # ------------------------------------------------------------------ #
    @_synchronized
    def append(self, stream: str, times, values) -> int:
        """Feed one chunk of measurements into ``stream``'s live filter.

        The filter is created from the session's :class:`FilterSpec` on the
        first append (an ``epsilon_percent`` resolves against this first
        chunk's value range).  Emitted recordings are buffered and archived
        in ``archive_batch``-sized appends; :meth:`query` sees them — and
        the filter's unemitted in-flight state — immediately.

        Returns:
            The number of recordings this chunk triggered.
        """
        self._check_open()
        self._check_writable()
        live = self._live.get(stream)
        if live is None:
            fspec = self._require_filter_spec()
            live = _LiveStream(
                filter=fspec.create(values),
                sink=StoreSink(
                    self._store,
                    stream,
                    epsilon=fspec.epsilon_list(values),
                    archive_batch=self._archive_batch,
                ),
            )
            self._live[stream] = live
        recordings = live.filter.process_batch(times, values)
        live.sink.write(recordings)
        if recordings:
            self._notify(stream, recordings, sealed=False)
        return len(recordings)

    def observe(self, stream: str, time: float, value) -> int:
        """Feed one measurement (convenience wrapper around :meth:`append`)."""
        return self.append(stream, [time], np.atleast_2d(np.asarray(value, dtype=float)))

    async def aappend_stream(
        self,
        stream: str,
        source,
        *,
        executor=None,
    ) -> Tuple[int, int]:
        """Drain an async chunk source through the *live* :meth:`append` path.

        The live twin of :meth:`aingest`: each ``(times, values)`` chunk of
        ``source`` (any :class:`~repro.runtime.async_source.AsyncSource`,
        typically a :class:`~repro.runtime.async_source.QueueAsyncSource`
        a server pushes into) feeds the stream's live filter, so queries see
        the in-flight state between chunks and recording listeners fire per
        chunk — unlike the bulk path, which only registers the stream once
        it completes.  The stream is left live; :meth:`seal` ends it.

        Args:
            stream: Target stream name.
            source: Async iterable of ``(times, values)`` chunk pairs.
            executor: Optional ``concurrent.futures`` executor; when given,
                each chunk's :meth:`append` runs in it via
                ``loop.run_in_executor`` so the event loop never blocks on
                the session lock or store I/O.

        Returns:
            ``(points, recordings)`` totals drained from the source.
        """
        points = 0
        recordings = 0
        loop = asyncio.get_running_loop() if executor is not None else None
        async for times, values in source:
            if executor is None:
                recordings += self.append(stream, times, values)
            else:
                recordings += await loop.run_in_executor(
                    executor, self.append, stream, times, values
                )
            points += len(times)
        return points, recordings

    def add_recording_listener(self, callback: RecordingListener) -> None:
        """Register ``callback(stream, recordings, sealed)`` on live writes.

        Fired by :meth:`append` after each chunk's emitted recordings reach
        the sink (so a listener-triggered query already sees them) and by
        :meth:`seal` with the end-of-stream recordings and ``sealed=True``.
        Listeners back the server's tail subscriptions — each call carries
        exactly the new segments, in emission order.
        """
        with self._mutex:
            self._listeners.append(callback)

    def remove_recording_listener(self, callback: RecordingListener) -> None:
        """Deregister a listener (no-op when it was never added)."""
        with self._mutex:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

    def _notify(self, stream: str, recordings: Sequence[Recording], sealed: bool) -> None:
        for callback in tuple(self._listeners):
            try:
                callback(stream, recordings, sealed)
            except Exception:
                # An observer must never fail the write path: the recordings
                # are already archived when listeners run, and a subscriber
                # hub tearing down mid-notification is routine at shutdown.
                pass

    @_synchronized
    def detach(self, stream: str) -> FilterState:
        """Hand off a live stream without finishing it (worker migration).

        Buffered recordings are archived, the live filter is snapshotted and
        dropped from this session — *without* emitting its end-of-stream
        recordings, so the store is left exactly at the snapshot.  Another
        session (or process) passes the returned state to :meth:`restore`
        and continues bit-identically to an uninterrupted run.

        Raises:
            KeyError: If the stream has no live filter.
        """
        self._check_open()
        try:
            live = self._live[stream]
        except KeyError:
            raise KeyError(f"stream {stream!r} has no live writer") from None
        live.sink.flush()
        state = live.filter.snapshot()
        del self._live[stream]
        return state

    @_synchronized
    def seal(self, stream: str) -> Optional[StoredStream]:
        """Finish ``stream``'s live filter and archive everything it held.

        Returns:
            The stream's catalog entry, or ``None`` when the stream never
            produced a recording.

        Raises:
            KeyError: If the stream has no live filter.
        """
        self._check_open()
        try:
            live = self._live.pop(stream)
        except KeyError:
            raise KeyError(f"stream {stream!r} has no live writer") from None
        recordings = live.filter.finish()
        live.sink.write(recordings)
        live.sink.flush()
        self._notify(stream, recordings, sealed=True)
        return self._store.describe(stream) if stream in self._store else None

    @_synchronized
    def flush(self) -> None:
        """Archive every live buffer and persist the store catalog.

        Does *not* finish the live filters — their in-flight segments stay
        open (that is :meth:`seal`).  Idempotent: recordings are archived
        exactly once however often this is called.
        """
        self._check_open()
        for live in self._live.values():
            live.sink.flush_records()
        self._store.flush()

    # ------------------------------------------------------------------ #
    # Queries (stored + live, uniformly)
    # ------------------------------------------------------------------ #
    @_synchronized
    def read(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Recording]:
        """Recordings of ``stream`` over ``[start, end]`` — stored and live.

        Follows the store's range semantics (the last recording before
        ``start`` and the first after ``end`` are kept so the approximation
        covers the whole range).  For a live stream the result additionally
        includes the buffered recordings and the filter's in-flight segment
        (read from a snapshot; the live filter is not disturbed) — exactly
        the recordings a seal-then-read would return.

        Raises:
            KeyError: If the stream is neither stored nor live.
        """
        self._check_open()
        live = self._live.get(stream)
        stored = self._store.read(stream, start, end) if stream in self._store else []
        if live is None:
            if stream not in self._store:
                raise KeyError(f"unknown stream {stream!r}")
            return stored
        tail = list(live.sink.pending) + self._in_flight(live)
        if not tail:
            return stored
        merged = stored + tail
        times = np.fromiter((r.time for r in merged), dtype=float, count=len(merged))
        return [merged[index] for index in range_indices(times, start, end)]

    def query(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Approximation:
        """The stream's approximation over ``[start, end]``, live included.

        Every original data point is within ε of the returned
        approximation — the paper's precision guarantee survives storage,
        range pruning and the live merge.
        """
        return reconstruct(self._read_for_query(stream, start, end))

    @_synchronized
    def aggregate(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        window: Optional[float] = None,
        step: Optional[float] = None,
        dimension: int = 0,
    ) -> Union[RangeAggregate, List[RangeAggregate]]:
        """Min / max / time-weighted mean / integral over ``[start, end]``.

        Bounds default to the stream's span (live tail included).  With
        ``window`` given, returns tumbling-window aggregates covering the
        range instead of one aggregate; add ``step`` for rolling windows
        that advance by ``step`` (overlapping when ``step < window``,
        sampled hops when ``step > window``).

        Stored streams are answered through the block-summary planner
        (:mod:`repro.queries.planner`): whole blocks inside the range
        contribute their pre-aggregated summary and only boundary blocks are
        decoded — rolling windows slide over those summaries incrementally
        instead of re-aggregating each window.  The live tail (buffered
        recordings plus the snapshot-read in-flight segment) joins the plan
        as a virtual trailing block, so live and sealed streams answer
        identically.

        Raises:
            ValueError: If ``step`` is given without ``window``.
        """
        self._check_open()
        if step is not None and window is None:
            raise ValueError("step requires window")
        if stream in self._store:
            tail = self._query_tail(stream)
            if window is not None:
                return plan_window_aggregates(
                    self._store, stream, window, start, end, dimension,
                    step=step, tail=tail,
                )
            return plan_range_aggregate(
                self._store, stream, start, end, dimension, tail=tail
            )
        recordings = self._read_for_query(stream, start, end)
        lo, hi = self._bounds(recordings, start, end)
        approximation = reconstruct(recordings)
        if window is not None:
            return window_aggregates(
                approximation, lo, hi, window, dimension=dimension, step=step
            )
        return range_aggregate(approximation, lo, hi, dimension=dimension)

    @_synchronized
    def zoom(
        self,
        stream: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        max_points: int = DEFAULT_MAX_POINTS,
        dimension: int = 0,
    ) -> List[ZoomCell]:
        """A budget-bounded overview of ``[start, end]`` — live included.

        Returns at most ``max_points`` :class:`~repro.queries.pyramid.ZoomCell`
        (min / max / mean / integral / covered duration each) in time order.
        Stored streams answer from the persisted zoom pyramid
        (:mod:`repro.queries.pyramid`): the finest level whose cell count
        fits the budget is read and only the viewport's edge cells descend
        to finer levels, so panning and zooming a dashboard never decodes
        more than the two blocks the viewport cuts.  Live-only streams (and
        stores without summaries) fall back to uniform bins over the decoded
        approximation.
        """
        self._check_open()
        if stream in self._store:
            return plan_zoom(
                self._store, stream, start, end,
                max_points=max_points, dimension=dimension,
                tail=self._query_tail(stream),
            )
        recordings = self._read_for_query(stream, start, end)
        lo, hi = self._bounds(recordings, start, end)
        return zoom_cells(reconstruct(recordings), lo, hi, max_points, dimension)

    @_synchronized
    def crossings(
        self,
        stream: str,
        threshold: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
        *,
        dimension: int = 0,
    ) -> List[float]:
        """Times at which the stream's approximation crosses ``threshold``."""
        approximation = reconstruct(self._read_for_query(stream, start, end))
        return threshold_crossings(
            approximation, threshold, start=start, end=end, dimension=dimension
        )

    @_synchronized
    def resample(
        self,
        stream: str,
        step: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the stream's approximation on a regular ``step`` grid."""
        self._check_open()
        if stream in self._store:
            return plan_resample(
                self._store, stream, step, start, end, tail=self._query_tail(stream)
            )
        recordings = self._read_for_query(stream, start, end)
        lo, hi = self._bounds(recordings, start, end)
        return _resample(reconstruct(recordings), lo, hi, step)

    def _query_tail(self, stream: str) -> List[Recording]:
        """The live recordings a query must merge after the stored log."""
        live = self._live.get(stream)
        if live is None:
            return []
        return list(live.sink.pending) + self._in_flight(live)

    def _read_for_query(
        self, stream: str, start: Optional[float], end: Optional[float]
    ) -> List[Recording]:
        recordings = self.read(stream, start, end)
        if not recordings:
            raise ValueError(f"stream {stream!r} has no recordings to query")
        return recordings

    @staticmethod
    def _bounds(
        recordings: Sequence[Recording], start: Optional[float], end: Optional[float]
    ) -> Tuple[float, float]:
        lo = float(recordings[0].time) if start is None else float(start)
        hi = float(recordings[-1].time) if end is None else float(end)
        return lo, hi

    @staticmethod
    def _in_flight(live: _LiveStream) -> List[Recording]:
        """The recordings the live filter would emit if sealed right now.

        Snapshot-read: the filter's :class:`~repro.core.state.FilterState`
        is restored into a throwaway clone whose ``finish()`` produces the
        end-of-stream recordings; the live filter keeps running untouched.
        """
        if live.filter.points_processed == 0 or live.filter.finished:
            return []
        clone = restore_filter(live.filter.snapshot())
        return clone.finish()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @_synchronized
    def snapshot(
        self, directory: Optional[Union[str, Path, CheckpointManager]] = None
    ) -> Dict[str, FilterState]:
        """Freeze every live stream's filter state.

        Buffered recordings are archived first (so the store holds exactly
        the recordings emitted before the snapshot), then each live filter
        is snapshotted.  With ``directory`` given, each snapshot is also
        persisted as an atomic :class:`IngestCheckpoint` (the store synced
        first) that :meth:`restore` — or a fresh session — can resume from.

        Returns:
            ``{stream: FilterState}`` for every live stream.
        """
        self._check_open()
        self.flush()
        manager: Optional[CheckpointManager] = None
        if directory is not None:
            manager = (
                directory
                if isinstance(directory, CheckpointManager)
                else CheckpointManager(directory)
            )
        states: Dict[str, FilterState] = {}
        for name in sorted(self._live):
            live = self._live[name]
            states[name] = live.filter.snapshot()
            if manager is not None:
                if name in self._store:
                    self._store.sync(name)
                stored = (
                    self._store.describe(name).recordings if name in self._store else 0
                )
                manager.save(
                    IngestCheckpoint(
                        stream=name,
                        filter_state=states[name],
                        points_ingested=live.filter.points_processed,
                        recordings_stored=stored,
                        chunk_size=self._ingest_spec.chunk_size,
                        complete=False,
                    )
                )
        return states

    @_synchronized
    def restore(
        self,
        source: Union[Mapping[str, FilterState], str, Path, CheckpointManager],
        streams: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Reinstate live filters from a :meth:`snapshot`.

        ``source`` is either the mapping :meth:`snapshot` returned (an
        in-memory handoff; the store is not touched) or a checkpoint
        directory / :class:`CheckpointManager` — there each stream is also
        rolled back to its checkpointed recording count, so recordings
        archived after the snapshot are never duplicated.  Restored filters
        continue bit-identically to the uninterrupted run.

        Args:
            source: Snapshot mapping or checkpoint directory.
            streams: Restrict a directory restore to these streams
                (default: every checkpoint in the directory; completed
                ones are skipped).

        Returns:
            The names of the streams now live, sorted.

        Raises:
            ValueError: If a stream already has a live writer.
            KeyError: If a requested stream has no checkpoint.
        """
        self._check_open()
        if isinstance(source, Mapping):
            if streams is not None:
                source = {name: source[name] for name in streams}
            self._check_not_live(source)
            for name in sorted(source):
                self._install_live(name, restore_filter(source[name]))
            return sorted(source)
        manager = (
            source if isinstance(source, CheckpointManager) else CheckpointManager(source)
        )
        if streams is None:
            checkpoints = manager.list()
        else:
            checkpoints = []
            for name in streams:
                checkpoint = manager.load(name)
                if checkpoint is None:
                    raise KeyError(f"no checkpoint for stream {name!r}")
                checkpoints.append(checkpoint)
        checkpoints = [
            checkpoint
            for checkpoint in checkpoints
            if not checkpoint.complete and checkpoint.filter_state is not None
        ]
        # Validate everything BEFORE the first store mutation: a conflict
        # discovered halfway through would otherwise leave streams already
        # truncated back to their checkpoints — destroyed recordings — with
        # the restore failed.
        self._check_not_live(checkpoint.stream for checkpoint in checkpoints)
        for checkpoint in checkpoints:
            if checkpoint.stream not in self._store and checkpoint.recordings_stored > 0:
                raise ValueError(
                    f"checkpoint for {checkpoint.stream!r} expects "
                    f"{checkpoint.recordings_stored} stored recordings but the "
                    "store does not know the stream"
                )
        restored: List[str] = []
        for checkpoint in checkpoints:
            name = checkpoint.stream
            if name in self._store:
                self._store.truncate_stream(name, checkpoint.recordings_stored)
            self._install_live(name, restore_filter(checkpoint.filter_state))
            restored.append(name)
        self._store.flush()
        return sorted(restored)

    def _check_not_live(self, names: Iterable[str]) -> None:
        conflicting = sorted(name for name in names if name in self._live)
        if conflicting:
            raise ValueError(
                f"stream(s) {', '.join(conflicting)} already have a live writer"
            )

    def _install_live(self, stream: str, stream_filter: StreamFilter) -> None:
        if stream in self._live:
            raise ValueError(f"stream {stream!r} already has a live writer")
        epsilon = stream_filter.epsilon
        self._live[stream] = _LiveStream(
            filter=stream_filter,
            sink=StoreSink(
                self._store,
                stream,
                epsilon=None if epsilon is None else epsilon.epsilons,
                archive_batch=self._archive_batch,
            ),
        )

    @_synchronized
    def compact(self, stream: Optional[str] = None) -> Dict[str, Tuple[int, int]]:
        """Merge undersized index blocks (one stream, or every stream)."""
        self._check_open()
        return self._store.compact(stream)

    @_synchronized
    def close(self) -> None:
        """Seal every live stream and flush the store.  Idempotent."""
        if self._closed:
            return
        for name in list(self._live):
            self.seal(name)
        self._store.close()
        self._closed = True

    def __enter__(self) -> "StreamDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_filter_spec(self) -> FilterSpec:
        if self._filter_spec is None:
            raise ValueError(
                "no filter configured: open the session with filter=FilterSpec(...) "
                "or pass filter= to this call"
            )
        return self._filter_spec

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the session has been closed")

    def _check_writable(self) -> None:
        # Fail live writes *before* anything is buffered — a read-only
        # session would otherwise only notice at archive/close time.
        if self.read_only:
            raise PermissionError(
                f"session on {str(self._path)!r} is open read-only (mode='r')"
            )
