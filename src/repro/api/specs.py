"""Typed, validated configuration specs for the :class:`StreamDB` session.

The session façade accepts its configuration as three small frozen
dataclasses instead of loose keyword soup:

* :class:`FilterSpec` — which filter compresses a stream and at what
  precision (absolute ε or a percentage of the signal range, resolved
  lazily against the workload),
* :class:`StorageSpec` — how the backing store is laid out (shard count,
  byte-level backend, block-index granularity),
* :class:`IngestSpec` — how workloads are driven through the engines
  (chunking, worker processes, checkpointing cadence).

Every spec validates at construction, so a bad configuration fails before
any store directory is created or any worker process is spawned.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.base import StreamFilter
from repro.core.epsilon import ErrorBound, epsilon_from_percent
from repro.core.registry import FILTER_REGISTRY, available_filters, create_filter
from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE
from repro.runtime.ingest import DEFAULT_CHECKPOINT_EVERY
from repro.storage import StoreLike, open_store

__all__ = ["FilterSpec", "StorageSpec", "IngestSpec", "UNSET"]

EpsilonLike = Union[float, Sequence[float], ErrorBound]


class _Unset:
    """Singleton marking 'no per-call override' (distinct from ``None``,
    which explicitly disables an optional setting such as ``checkpoint``)."""

    _instance = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


#: Default for per-call override keywords: keep the session spec's value.
UNSET: Any = _Unset()


@dataclass(frozen=True)
class FilterSpec:
    """Which filter compresses a stream, and at what precision.

    Exactly one of ``epsilon`` (absolute width, scalar or per-dimension)
    and ``epsilon_percent`` (width as a percentage of the signal's value
    range, the form the paper's evaluation sweeps) must be given.  A
    percentage is resolved lazily — against the first workload the spec is
    applied to — via :meth:`resolve`.

    Attributes:
        name: Registered filter name (``"swing"``, ``"slide"``, …).
        epsilon: Absolute precision width.
        epsilon_percent: Precision width as % of the signal's value range.
        max_lag: Optional ``m_max_lag`` bound forwarded to the filter.
        options: Extra keyword options forwarded to the filter factory.
    """

    name: str = "slide"
    epsilon: Optional[EpsilonLike] = None
    epsilon_percent: Optional[float] = None
    max_lag: Optional[int] = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in FILTER_REGISTRY:
            raise ValueError(
                f"unknown filter {self.name!r}; available: {', '.join(available_filters())}"
            )
        if (self.epsilon is None) == (self.epsilon_percent is None):
            raise ValueError("give exactly one of epsilon or epsilon_percent")
        if self.epsilon is not None and not isinstance(self.epsilon, ErrorBound):
            # Validate the widths now — the spec's contract is that a bad
            # configuration fails before any store directory is created —
            # using the same rules (finite, non-negative, 1-D, non-empty)
            # the filters apply via ErrorBound.
            try:
                widths = np.atleast_1d(np.asarray(self.epsilon, dtype=float))
            except (TypeError, ValueError):
                raise ValueError(f"epsilon is not numeric: {self.epsilon!r}") from None
            ErrorBound(widths)
        if self.epsilon_percent is not None and self.epsilon_percent <= 0.0:
            raise ValueError(f"epsilon_percent must be positive, got {self.epsilon_percent}")
        if self.max_lag is not None and self.max_lag < 2:
            raise ValueError("max_lag must be at least 2 data points")
        object.__setattr__(self, "options", dict(self.options))

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(self, values=None) -> EpsilonLike:
        """Return the absolute precision width this spec stands for.

        Args:
            values: The workload's values, required when the spec was given
                as ``epsilon_percent`` (the percentage is taken of this
                signal's value range).

        Raises:
            ValueError: If ``epsilon_percent`` needs resolving but no
                workload values are available (e.g. a deferred-loader
                parallel ingest) — give an absolute ``epsilon`` there.
        """
        if self.epsilon is not None:
            return self.epsilon
        if values is None:
            raise ValueError(
                f"FilterSpec(epsilon_percent={self.epsilon_percent}) needs workload "
                "values to resolve against; give an absolute epsilon for workloads "
                "that are not materialized up front"
            )
        return epsilon_from_percent(self.epsilon_percent, np.asarray(values, dtype=float))

    def epsilon_list(self, values=None) -> list:
        """The resolved width as a plain list (the store catalog's format)."""
        resolved = self.resolve(values)
        resolved = getattr(resolved, "epsilons", resolved)  # unwrap an ErrorBound
        return [float(v) for v in np.atleast_1d(resolved)]

    def filter_kwargs(self) -> Dict[str, Any]:
        """Constructor keywords beyond ε (``max_lag`` plus ``options``)."""
        kwargs = dict(self.options)
        if self.max_lag is not None:
            kwargs["max_lag"] = self.max_lag
        return kwargs

    def create(self, values=None) -> StreamFilter:
        """Build a fresh, configured filter instance."""
        return create_filter(self.name, self.resolve(values), **self.filter_kwargs())


@dataclass(frozen=True)
class StorageSpec:
    """How the session's backing store is laid out.

    Attributes:
        shards: Shard the store across this many segment stores (``None``:
            a plain unsharded store; must match an existing sharded store).
        backend: Storage backend registry name (default block-log).
        block_records: Records per index block, forwarded to the backend.
        autoflush: Persist the catalog on every mutation instead of batched
            on :meth:`~repro.api.session.StreamDB.flush`/``close`` (the
            session default is batched persistence).
        mode: ``"w"`` (default) opens the store writable; ``"r"`` opens a
            read-only handle of an *existing* store — every mutating call
            raises :class:`PermissionError`.
        snapshot: With ``mode="r"``, pin the catalog generation at open
            time: reads serve a consistent point-in-time view even while a
            live ingester appends in another process
            (:meth:`~repro.storage.segment_store.SegmentStore.refresh`
            re-pins on demand).
        durable: fsync every catalog journal append and checkpoint (the
            default favours the seed's I/O profile; crash *consistency*
            holds either way, this upgrades crash *durability*).
    """

    shards: Optional[int] = None
    backend: Optional[str] = None
    block_records: Optional[int] = None
    autoflush: bool = False
    mode: str = "w"
    snapshot: bool = False
    durable: bool = False

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.block_records is not None and self.block_records < 1:
            raise ValueError(f"block_records must be positive, got {self.block_records}")
        if self.mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {self.mode!r}")
        if self.snapshot and self.mode != "r":
            raise ValueError("snapshot readers require mode='r'")

    def open(self, directory: Union[str, Path]) -> StoreLike:
        """Open (or create) the store this spec describes at ``directory``."""
        options: Dict[str, Any] = {"autoflush": self.autoflush}
        if self.backend is not None:
            options["backend"] = self.backend
        if self.block_records is not None:
            options["block_records"] = self.block_records
        if self.mode != "w":
            options["mode"] = self.mode
            options["snapshot"] = self.snapshot
        if self.durable:
            options["durable"] = True
        return open_store(directory, shards=self.shards, **options)


@dataclass(frozen=True)
class IngestSpec:
    """How workloads are driven through the ingestion engines.

    Attributes:
        chunk_size: Points per chunk on the vectorized batch path.
        workers: Worker processes for multi-stream (or split-dimension)
            ingestion; ``1`` runs inline.
        split_dimensions: Store a d-dimensional workload as one stream per
            dimension (``NAME/d0..NAME/d{d-1}``), the layout parallel
            ingestion partitions across workers.
        checkpoint: Checkpoint directory; ``None`` disables checkpointing.
        checkpoint_every: Chunks between checkpoints.
        resume: Resume each stream from its checkpoint when one exists.
    """

    chunk_size: int = DEFAULT_CHUNK_SIZE
    workers: int = 1
    split_dimensions: bool = False
    checkpoint: Optional[Union[str, Path]] = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    resume: bool = False

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be positive, got {self.checkpoint_every}")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume=True requires a checkpoint directory")

    def merged(self, **overrides) -> "IngestSpec":
        """A copy with the given overrides applied (re-validated).

        Overrides left at :data:`UNSET` keep this spec's value; an explicit
        ``None`` disables an optional setting (``checkpoint=None`` turns a
        session-default checkpoint off for one call).
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown ingest option(s): {', '.join(sorted(unknown))}")
        changes = {}
        for key, value in overrides.items():
            if value is UNSET:
                continue
            if value is None and key != "checkpoint":
                # Only `checkpoint` is nullable; for every other setting
                # None keeps meaning "no override" (the historical calling
                # convention).
                continue
            changes[key] = value
        return replace(self, **changes) if changes else self
