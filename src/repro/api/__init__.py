"""Public session API: one façade over filters, ingestion, storage, queries.

:func:`repro.open` returns a :class:`~repro.api.session.StreamDB` session —
the one public way to run the paper's end-to-end flow (ε-bounded filtering,
archival, precision-guaranteed querying).  Configuration travels as typed
specs (:class:`~repro.api.specs.FilterSpec`,
:class:`~repro.api.specs.StorageSpec`, :class:`~repro.api.specs.IngestSpec`)
validated before anything touches disk.
"""

from repro.api.session import DEFAULT_ARCHIVE_BATCH, StreamDB, open
from repro.api.specs import FilterSpec, IngestSpec, StorageSpec

# `open` is importable but deliberately NOT in __all__ — a star import
# must never shadow the builtin open().
__all__ = [
    "StreamDB",
    "FilterSpec",
    "StorageSpec",
    "IngestSpec",
    "DEFAULT_ARCHIVE_BATCH",
]
