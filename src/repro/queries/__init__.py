"""Query processing directly over compressed approximations.

The paper's setting stores the *recordings* rather than the raw points in a
Data Stream Management System; downstream continuous queries then run against
the reconstructed approximation.  This subpackage provides the query-side
toolkit: time-range selection, windowed aggregates (min / max / mean /
integral) evaluated analytically from the line segments, threshold-crossing
detection, and resampling back to a regular grid.

All results carry the same ε guarantee as the approximation itself: an
aggregate computed from the approximation differs from the aggregate of the
original signal by at most ε (for min/max/mean/resampling) because every
original point is within ε of the approximation.
"""

from repro.queries.aggregates import (
    integral,
    range_aggregate,
    resample,
    rolling_edges,
    threshold_crossings,
    window_aggregates,
)
from repro.queries.planner import (
    TOLERANCE,
    StreamQueryPlan,
    plan_range_aggregate,
    plan_resample,
    plan_window_aggregates,
)
from repro.queries.pyramid import ZoomCell, plan_zoom, zoom_cells
from repro.queries.stored import (
    stored_range_aggregate,
    stored_resample,
    stored_threshold_crossings,
    stored_window_aggregates,
    stored_zoom,
)

__all__ = [
    "range_aggregate",
    "window_aggregates",
    "rolling_edges",
    "integral",
    "threshold_crossings",
    "resample",
    "TOLERANCE",
    "StreamQueryPlan",
    "plan_range_aggregate",
    "plan_window_aggregates",
    "plan_resample",
    "ZoomCell",
    "plan_zoom",
    "zoom_cells",
    "stored_range_aggregate",
    "stored_window_aggregates",
    "stored_threshold_crossings",
    "stored_resample",
    "stored_zoom",
]
