"""Queries over streams ingested into a :class:`SegmentStore`.

These helpers close the loop of the paper's architecture: the batch pipeline
(:mod:`repro.pipeline`) compresses a stream into recordings and appends them
to a store; the functions here reconstruct the stored approximation for the
requested time range only (the store's block index prunes the read to the
overlapping blocks, keeping one recording before the range so the covering
segments are complete) and delegate to the analytic query toolkit in
:mod:`repro.queries.aggregates`.  Every helper accepts a plain
:class:`SegmentStore` or a :class:`~repro.storage.ShardedStore`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.queries.aggregates import (
    RangeAggregate,
    range_aggregate,
    resample,
    threshold_crossings,
    window_aggregates,
)
from repro.storage import StoreLike

__all__ = [
    "stored_range_aggregate",
    "stored_window_aggregates",
    "stored_threshold_crossings",
    "stored_resample",
]


def stored_range_aggregate(
    store: StoreLike,
    name: str,
    start: float,
    end: float,
    dimension: int = 0,
) -> RangeAggregate:
    """Aggregate one stored stream over ``[start, end]``."""
    approximation = store.reconstruct(name, start, end)
    return range_aggregate(approximation, start, end, dimension=dimension)


def stored_window_aggregates(
    store: StoreLike,
    name: str,
    window: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
) -> List[RangeAggregate]:
    """Tumbling-window aggregates of one stored stream."""
    entry = store.describe(name)
    start = entry.first_time if start is None else start
    end = entry.last_time if end is None else end
    approximation = store.reconstruct(name, start, end)
    return window_aggregates(approximation, start, end, window, dimension=dimension)


def stored_threshold_crossings(
    store: StoreLike,
    name: str,
    threshold: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
):
    """Threshold crossings of one stored stream."""
    approximation = store.reconstruct(name, start, end)
    return threshold_crossings(approximation, threshold, start=start, end=end, dimension=dimension)


def stored_resample(
    store: StoreLike,
    name: str,
    step: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample one stored stream onto a regular time grid."""
    entry = store.describe(name)
    start = entry.first_time if start is None else start
    end = entry.last_time if end is None else end
    approximation = store.reconstruct(name, start, end)
    return resample(approximation, start, end, step)
