"""Queries over streams ingested into a :class:`SegmentStore`.

These helpers close the loop of the paper's architecture: the batch pipeline
(:mod:`repro.pipeline`) compresses a stream into recordings and appends them
to a store; the functions here answer analytic queries over the stored
approximation.  Aggregates route through the block-summary planner
(:mod:`repro.queries.planner`), which composes pre-aggregated block summaries
and decodes only the blocks a range boundary straddles — stores without
summaries (seed catalogs, non-summarising backends) transparently fall back
to decoding the range and aggregating in memory, so results are identical
either way (within :data:`~repro.queries.planner.TOLERANCE`).  Every helper
accepts a plain :class:`SegmentStore` or a
:class:`~repro.storage.ShardedStore`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.queries.aggregates import RangeAggregate, threshold_crossings
from repro.queries.planner import (
    plan_range_aggregate,
    plan_resample,
    plan_window_aggregates,
)
from repro.queries.pyramid import DEFAULT_MAX_POINTS, ZoomCell, plan_zoom
from repro.storage import StoreLike

__all__ = [
    "stored_range_aggregate",
    "stored_window_aggregates",
    "stored_threshold_crossings",
    "stored_resample",
    "stored_zoom",
]


def stored_range_aggregate(
    store: StoreLike,
    name: str,
    start: float,
    end: float,
    dimension: int = 0,
) -> RangeAggregate:
    """Aggregate one stored stream over ``[start, end]``."""
    return plan_range_aggregate(store, name, start, end, dimension)


def stored_window_aggregates(
    store: StoreLike,
    name: str,
    window: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
    *,
    step: Optional[float] = None,
) -> List[RangeAggregate]:
    """Windowed aggregates of one stored stream.

    Tumbling windows by default; pass ``step`` for rolling windows that
    advance by ``step`` (overlapping when ``step < window``, sampled hops
    when ``step > window``).
    """
    return plan_window_aggregates(store, name, window, start, end, dimension, step=step)


def stored_zoom(
    store: StoreLike,
    name: str,
    start: Optional[float] = None,
    end: Optional[float] = None,
    *,
    max_points: int = DEFAULT_MAX_POINTS,
    dimension: int = 0,
) -> List[ZoomCell]:
    """Budget-bounded zoom view of one stored stream (see :func:`plan_zoom`)."""
    return plan_zoom(store, name, start, end, max_points=max_points, dimension=dimension)


def stored_threshold_crossings(
    store: StoreLike,
    name: str,
    threshold: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
):
    """Threshold crossings of one stored stream."""
    approximation = store.reconstruct(name, start, end)
    return threshold_crossings(approximation, threshold, start=start, end=end, dimension=dimension)


def stored_resample(
    store: StoreLike,
    name: str,
    step: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample one stored stream onto a regular time grid."""
    return plan_resample(store, name, step, start, end)
