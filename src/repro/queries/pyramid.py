"""Multi-resolution zoom over the block-summary pyramid.

A dashboard zoom wants "what does ``[start, end]`` look like in at most N
points" — cheap at any scale, without decoding the log.  The storage layer
persists a pyramid of pre-folded summaries
(:func:`repro.storage.summaries.build_pyramid`): level 0 is the block index,
each higher level folds :data:`~repro.storage.summaries.PYRAMID_BASE`
consecutive cells of the level below *including the bridge pieces between
them*, so one cell's aggregates are exact over its whole span.

:func:`plan_zoom` picks the finest level whose viewport-overlapping cell
count fits the budget, emits the fully-contained cells straight from their
summaries, and descends only at the two viewport edges — down to a clipped
level-0 block at most, so a zoom reads O(cells) summaries and decodes at
most the two blocks the viewport boundaries cut.  Live-tail recordings ride
along as one virtual trailing cell on every level.  Streams without a
usable pyramid (non-summarising backends, seed catalogs on read-only
stores) fall back to uniform bins over the decoded approximation
(:func:`zoom_cells`), marked ``level = -1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.approximation.reconstruct import reconstruct
from repro.core.types import Recording
from repro.queries.aggregates import _segments_of, clip_aggregate, window_edges
from repro.queries.planner import (
    PlannerFallback,
    StreamQueryPlan,
    _reference_bounds,
    _reference_recordings,
)
from repro.storage.summaries import END_CODE, PYRAMID_BASE, bridge_piece

__all__ = ["ZoomCell", "plan_zoom", "zoom_cells", "DEFAULT_MAX_POINTS"]

#: Default zoom budget: cells returned per viewport.
DEFAULT_MAX_POINTS = 256


@dataclass(frozen=True)
class ZoomCell:
    """One cell of a zoomed view: aggregates over ``[start, end]``.

    Attributes:
        start: Where the cell's material coverage starts.
        end: Where it ends (``start == end`` for a single-point cell).
        minimum: Minimum of the approximation over the cell.
        maximum: Maximum over the cell.
        mean: Time-weighted mean (midpoint of the extrema when the cell
            covers no duration).
        integral: Integral over the cell.
        covered: Duration actually covered by pieces inside the cell.
        level: Pyramid level the cell came from (0 = one block; higher =
            coarser folds; -1 = decode-path fallback bin).
    """

    start: float
    end: float
    minimum: float
    maximum: float
    mean: float
    integral: float
    covered: float
    level: int


def _mean_of(minimum: float, maximum: float, area: float, covered: float) -> float:
    return area / covered if covered > 0.0 else 0.5 * (minimum + maximum)


class _CellState:
    """A cell being assembled: summary (or clip) aggregates plus any bridges
    stitched onto it afterwards."""

    __slots__ = ("start", "end", "minimum", "maximum", "area", "covered", "level")

    def __init__(self, start, end, minimum, maximum, area, covered, level):
        self.start = start
        self.end = end
        self.minimum = minimum
        self.maximum = maximum
        self.area = area
        self.covered = covered
        self.level = level

    def fold_piece(self, piece, lo: float, hi: float, dimension: int) -> None:
        """Fold one bridge piece, clipped to ``[lo, hi]``, into this cell.

        Uses the same closed-interval clip as the decode reference, so a
        stitched cell stays bit-comparable to a clip over its extent.
        """
        t0, x0, t1, x1 = piece
        minimum, maximum, area, covered = clip_aggregate(
            np.array([t0]),
            np.array([float(x0[dimension])]),
            np.array([t1]),
            np.array([float(x1[dimension])]),
            lo,
            hi,
        )
        if minimum == float("inf"):
            return
        self.minimum = min(self.minimum, minimum)
        self.maximum = max(self.maximum, maximum)
        self.area += area
        self.covered += covered
        self.start = min(self.start, max(lo, t0))
        self.end = max(self.end, min(hi, t1))

    def finish(self) -> ZoomCell:
        return ZoomCell(
            self.start,
            self.end,
            self.minimum,
            self.maximum,
            _mean_of(self.minimum, self.maximum, self.area, self.covered),
            self.area,
            self.covered,
            self.level,
        )


def _summary_state(summary: dict, dimension: int, level: int) -> Optional[_CellState]:
    """A fully-contained cell, straight from its pre-aggregated summary."""
    span = summary.get("span")
    if span is None:
        return None
    return _CellState(
        float(span[0]),
        float(span[1]),
        float(summary["min"][dimension]),
        float(summary["max"][dimension]),
        float(summary["integral"][dimension]),
        float(summary["covered"]),
        level,
    )


class _ZoomLevels:
    """Per-level cell tables (times, summaries) with the tail appended.

    Level 0 is the plan's block row (stored blocks plus the virtual tail
    block); higher levels are the persisted pyramid cells with the same
    tail cell appended, so the descent treats live recordings like any
    other trailing cell.  ``stored[level]`` counts the cells that have real
    pyramid children (everything before the tail).
    """

    def __init__(self, plan: StreamQueryPlan, pyramid: List[List[list]]) -> None:
        self._plan = plan
        summaries = plan._summaries
        has_tail = len(summaries) > plan._real_blocks
        self.lo: List[np.ndarray] = [np.asarray(plan._starts)]
        self.hi: List[np.ndarray] = [np.asarray(plan._ends)]
        self.summaries: List[List[dict]] = [list(summaries)]
        self.stored: List[int] = [plan._real_blocks]
        for cells in pyramid:
            lo = [float(cell[0]) for cell in cells]
            hi = [float(cell[1]) for cell in cells]
            level_summaries = [cell[2] for cell in cells]
            if has_tail:
                lo.append(float(plan._starts[-1]))
                hi.append(float(plan._ends[-1]))
                level_summaries.append(summaries[-1])
            self.lo.append(np.asarray(lo))
            self.hi.append(np.asarray(hi))
            self.summaries.append(level_summaries)
            self.stored.append(len(cells))

    def __len__(self) -> int:
        return len(self.summaries)

    def children(self, level: int, cell: int) -> Tuple[int, int]:
        """Child cell range of ``cell`` at ``level - 1`` (index arithmetic)."""
        below = len(self.summaries[level - 1])
        if cell < self.stored[level]:
            return cell * PYRAMID_BASE, min((cell + 1) * PYRAMID_BASE, self.stored[level - 1])
        return self.stored[level - 1], below  # the tail cell's only child: itself

    def clip_block(
        self, block: int, start: float, end: float, dimension: int
    ) -> Optional[_CellState]:
        """A viewport-cut level-0 cell: decode (cached) and clip the block."""
        span = self.summaries[0][block].get("span")
        if span is None:
            return None
        minimum, maximum, area, covered = self._plan._clip_block(
            block, start, end, dimension
        )
        if minimum == float("inf"):
            return None
        return _CellState(
            max(start, float(span[0])),
            min(end, float(span[1])),
            minimum,
            maximum,
            area,
            covered,
            0,
        )

    def boundaries(
        self, level: int, cell: int
    ) -> Tuple[Optional[Tuple[float, list]], Optional[Tuple[float, list]]]:
        """The cell's first and last record (with times), for bridging."""
        summary = self.summaries[level][cell]
        first, last = summary.get("first"), summary.get("last")
        lo, hi = float(self.lo[level][cell]), float(self.hi[level][cell])
        return (
            None if first is None else (lo, first),
            None if last is None else (hi, last),
        )


def _zoom(
    plan: StreamQueryPlan,
    pyramid: List[List[list]],
    start: float,
    end: float,
    max_points: int,
    dimension: int,
) -> List[ZoomCell]:
    levels = _ZoomLevels(plan, pyramid)
    # Finest level whose overlapping cells fit the budget, keeping two slots
    # for the edge descents; the coarsest level always fits (≤ 2 cells).
    chosen = len(levels) - 1
    for level in range(len(levels)):
        p = int(np.searchsorted(levels.hi[level], start, side="left"))
        q = int(np.searchsorted(levels.lo[level], end, side="right"))
        if q - p <= max_points - 2 or level == len(levels) - 1:
            chosen = level
            break
    lo, hi = levels.lo[chosen], levels.hi[chosen]
    p = int(np.searchsorted(hi, start, side="left"))  # first overlapping cell
    q = int(np.searchsorted(lo, end, side="right"))  # cells starting in view
    ci = int(np.searchsorted(lo, start, side="left"))  # first cell fully inside
    cj = int(np.searchsorted(hi, end, side="right"))  # cells ending inside

    # Every visited cell becomes an entry (zone, state, first, last): the
    # assembled aggregates (None when the cell holds no pieces) plus its
    # boundary records.  Entries are in time order; consecutive entries'
    # records are adjacent in the stream, so the piece between them — the
    # bridge neither cell's own summary covers — can be rebuilt exactly and
    # stitched onto a neighbouring cell.
    entries: List[tuple] = []

    def visit(level: int, cell: int, zone: str) -> None:
        cell_lo = float(levels.lo[level][cell])
        cell_hi = float(levels.hi[level][cell])
        first, last = levels.boundaries(level, cell)
        summary = levels.summaries[level][cell]
        span = summary.get("span")
        span0 = None if span is None else float(span[0])
        if cell_hi < start or cell_lo > end:
            # Out of view (a skipped sibling of a descended edge cell), but
            # its boundary records keep the bridge chain adjacent — the
            # stitch clips its bridges to the viewport.
            entries.append((zone, None, first, last, span0))
        elif span is None:
            # No pieces anywhere in the cell (its children are just as
            # empty): keep it as a link in the bridge chain only.
            entries.append((zone, None, first, last, span0))
        elif cell_lo >= start and cell_hi <= end:
            entries.append(
                (zone, _summary_state(summary, dimension, level), first, last, span0)
            )
        elif level == 0:
            entries.append(
                (zone, levels.clip_block(cell, start, end, dimension), first, last, span0)
            )
        else:
            child_lo, child_hi = levels.children(level, cell)
            for child in range(child_lo, child_hi):
                visit(level - 1, child, zone)

    for cell in range(p, min(ci, q)):
        visit(chosen, cell, "left")
    interior_lo, interior_hi = max(ci, p), min(max(cj, ci), q)
    for cell in range(interior_lo, interior_hi):
        visit(chosen, cell, "interior")
    for cell in range(max(cj, ci, p), q):
        visit(chosen, cell, "right")

    # The stream-final unmatched START/HOLD record is a zero-length piece no
    # block summary or pyramid cell covers (``pair_pieces`` leaves trailing
    # records to its caller; the planner's composed clip adds it globally).
    # When the viewport reaches the stream end, its value must fold into the
    # cell that owns that instant.
    final_touch = None
    final = plan._summaries[-1].get("last")
    if final is not None and int(final[0]) != END_CODE:
        t_final = float(plan._ends[-1])
        if start <= t_final <= end:
            value = np.asarray(final[1:], dtype=float)
            final_touch = (t_final, value, t_final, value)

    # A piece straddling a viewport edge (records on both sides) belongs to
    # the nearest in-view cell, clipped: chain in the out-of-view neighbour
    # cells' boundary records so those bridges get stitched too.
    if p > 0:
        _, last = levels.boundaries(chosen, p - 1)
        entries.insert(0, ("pre", None, None, last, None))
    if q < len(levels.summaries[chosen]):
        first, _ = levels.boundaries(chosen, q)
        entries.append(("post", None, first, None, None))

    def stitch(selected: List[tuple]) -> List[_CellState]:
        out: List[_CellState] = []
        pending: List[tuple] = []  # bridges seen before any material cell
        current: Optional[_CellState] = None
        previous_last: Optional[Tuple[float, list]] = None
        for _, state, first, last, span0 in selected:
            if previous_last is not None and first is not None:
                piece = bridge_piece(
                    previous_last[1], previous_last[0], first[1], first[0]
                )
                if piece is not None:
                    if current is not None:
                        current.fold_piece(piece, start, end, dimension)
                        # Closed-interval clips see the values at a shared
                        # boundary from BOTH sides (a hold stream jumps
                        # there): the bridge's end value belongs to the
                        # right cell too, and the right cell's first piece
                        # touches the left cell when both end exactly at
                        # the boundary.
                        bridge_end = float(piece[2])
                        if state is not None and start <= bridge_end <= end:
                            state.fold_piece(piece, bridge_end, bridge_end, dimension)
                        if span0 is not None and span0 == bridge_end == first[0]:
                            touch = np.asarray(first[1][1:], dtype=float)
                            current.fold_piece(
                                (first[0], touch, first[0], touch), start, end, dimension
                            )
                    elif state is not None:
                        state.fold_piece(piece, start, end, dimension)
                    else:
                        pending.append(piece)
            if state is not None:
                for piece in pending:
                    state.fold_piece(piece, start, end, dimension)
                pending.clear()
                out.append(state)
                current = state
            previous_last = last
        return out

    material = sum(1 for entry in entries if entry[1] is not None)
    if material <= max_points:
        states = _apply_final_touch(stitch(entries), final_touch, dimension, chosen)
        return [state.finish() for state in states]

    # Edge descent overflowed the budget: fold each edge side into one exact
    # clipped cell (bridges included via the plan's composed clip), keeping
    # the result ≤ interior + 2 ≤ max_points cells.
    positions = [index for index, entry in enumerate(entries) if entry[0] == "interior"]
    if not positions:
        return _collapsed(plan, start, end, dimension, chosen)
    interior = [entries[index] for index in positions]
    middle = stitch(interior)
    # The boundary bridges live inside the collapse clips, but their touch
    # values at the shared boundary belong to the interior edge cells too
    # (closed-interval clip semantics — see stitch above).
    first_entry, last_entry = interior[0], interior[-1]
    before = entries[positions[0] - 1] if positions[0] > 0 else None
    after = entries[positions[-1] + 1] if positions[-1] + 1 < len(entries) else None
    if before is not None and before[3] is not None and first_entry[2] is not None:
        piece = bridge_piece(
            before[3][1], before[3][0], first_entry[2][1], first_entry[2][0]
        )
        if piece is not None and first_entry[1] is not None:
            bridge_end = float(piece[2])
            if start <= bridge_end <= end:
                first_entry[1].fold_piece(piece, bridge_end, bridge_end, dimension)
    if after is not None and after[2] is not None and last_entry[3] is not None:
        piece = bridge_piece(
            last_entry[3][1], last_entry[3][0], after[2][1], after[2][0]
        )
        if piece is not None and last_entry[1] is not None:
            bridge_start = float(piece[0])
            if start <= bridge_start <= end:
                last_entry[1].fold_piece(piece, bridge_start, bridge_start, dimension)
    boundary_lo = float(lo[interior_lo])
    boundary_hi = float(hi[interior_hi - 1])
    if final_touch is not None and float(final_touch[0]) <= boundary_hi:
        # The stream ends inside (or exactly at the edge of) the interior
        # run; past boundary_hi the right-collapse clip covers it instead.
        _apply_final_touch(middle, final_touch, dimension, chosen)
    return (
        _collapsed(plan, start, boundary_lo, dimension, chosen)
        + [state.finish() for state in middle]
        + _collapsed(plan, boundary_hi, end, dimension, chosen)
    )


def _apply_final_touch(
    states: List[_CellState], touch, dimension: int, level: int
) -> List[_CellState]:
    """Fold the stream-final zero-length piece into the cell owning it.

    The touch extends the last cell through any trailing gap (there are no
    pieces between the last material cell and the stream end, so the
    extended cell still clips identically); a viewport holding nothing but
    the final record becomes a single point cell.
    """
    if touch is None:
        return states
    t = float(touch[0])
    target = None
    for state in reversed(states):
        if state.start <= t <= state.end:
            target = state
            break
    if target is None and states:
        target = states[-1]
    if target is None:
        target = _CellState(t, t, float("inf"), float("-inf"), 0.0, 0.0, level)
        states.append(target)
    target.fold_piece(touch, t, t, dimension)
    return states


def _collapsed(
    plan: StreamQueryPlan, lo: float, hi: float, dimension: int, level: int
) -> List[ZoomCell]:
    minimum, maximum, area, covered = plan._clipped(lo, hi, dimension)
    if minimum == float("inf"):
        return []
    return [
        ZoomCell(
            lo, hi, minimum, maximum, _mean_of(minimum, maximum, area, covered),
            area, covered, level,
        )
    ]


def zoom_cells(
    approximation: Approximation,
    start: float,
    end: float,
    max_points: int,
    dimension: int = 0,
) -> List[ZoomCell]:
    """Reference zoom: uniform bins clipped against the decoded pieces.

    The decode-path fallback (and the live-only-stream path): the viewport
    splits into ``max_points`` equal bins, each aggregating the pieces it
    overlaps; empty bins (interior gaps) are omitted.  Cells carry
    ``level = -1`` so callers can tell a fallback answer from a pyramid one.
    """
    if end < start:
        raise ValueError("end must not precede start")
    t0, x0, t1, x1 = _segments_of(approximation, dimension)
    if end == start:
        minimum, maximum, area, covered = clip_aggregate(t0, x0, t1, x1, start, end)
        if minimum == float("inf"):
            return []
        return [ZoomCell(start, end, minimum, maximum, 0.5 * (minimum + maximum), area, covered, -1)]
    edges = window_edges(start, end, (end - start) / max_points)
    cells: List[ZoomCell] = []
    for index in range(len(edges) - 1):
        bin_lo, bin_hi = float(edges[index]), float(edges[index + 1])
        minimum, maximum, area, covered = clip_aggregate(t0, x0, t1, x1, bin_lo, bin_hi)
        if minimum == float("inf"):
            continue
        cells.append(
            ZoomCell(
                bin_lo, bin_hi, minimum, maximum,
                _mean_of(minimum, maximum, area, covered), area, covered, -1,
            )
        )
    return cells


def plan_zoom(
    store,
    name: str,
    start: Optional[float] = None,
    end: Optional[float] = None,
    *,
    max_points: int = DEFAULT_MAX_POINTS,
    dimension: int = 0,
    tail: Optional[Sequence[Recording]] = None,
) -> List[ZoomCell]:
    """Budget-bounded zoom over a stored stream (plus optional live tail).

    Returns at most ``max_points`` :class:`ZoomCell` in time order covering
    ``[start, end]`` (defaults: the stream's span).  Fully-covered interior
    cells come straight from the persisted pyramid — no block is decoded
    except the ≤ 2 the viewport edges cut.  Falls back to
    :func:`zoom_cells` over the decoded approximation when the stream has
    no usable pyramid.

    Raises:
        KeyError: If the stream does not exist.
        ValueError: If ``max_points < 4`` or ``end < start``.
    """
    if max_points < 4:
        raise ValueError(f"max_points must be at least 4, got {max_points}")
    if start is not None and end is not None and end < start:
        raise ValueError("end must not precede start")
    try:
        plan = StreamQueryPlan(store, name, tail)
        try:
            pyramid = store.pyramid_levels(name)
        except (AttributeError, NotImplementedError) as error:
            raise PlannerFallback(str(error)) from None
        lo, hi = plan.time_bounds()
        return _zoom(
            plan,
            pyramid,
            lo if start is None else float(start),
            hi if end is None else float(end),
            max_points,
            dimension,
        )
    except PlannerFallback:
        recordings = _reference_recordings(store, name, start, end, tail)
        approximation = reconstruct(recordings)
        lo, hi = _reference_bounds(recordings, start, end)
        return zoom_cells(approximation, lo, hi, max_points, dimension)
