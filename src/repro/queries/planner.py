"""Segment-native query planner over the block-summary index.

The stored read path answers an aggregate query by decoding every record in
the range, materialising :class:`~repro.core.types.Recording` objects,
reconstructing an approximation and only then aggregating.  For wide ranges
that decode dominates the query time even though the aggregate of a block
whose pieces lie fully inside the range is already known — the storage layer
maintains a per-block summary (:mod:`repro.storage.summaries`) holding the
block's piece integral, extrema, covered duration and boundary records.

:class:`StreamQueryPlan` composes those summaries directly:

* blocks whose piece span lies fully inside the query range contribute their
  pre-aggregated summary — no decode;
* the (at most two) blocks a range boundary straddles are decoded and their
  pieces clipped, exactly as the in-memory path clips;
* *bridge* pieces between adjacent blocks are rebuilt from the summaries'
  boundary records, so block granularity never changes the answer;
* live in-flight recordings are treated as one virtual trailing block.

The composed result matches the decode path (``store.read`` →
``reconstruct`` → :func:`~repro.queries.aggregates.range_aggregate`) exactly
up to float summation order — :data:`TOLERANCE` documents the relative slack
tests assert under.  Query shapes the fast path cannot prove equivalent
(streams without summaries — e.g. seed-format catalogs on read-only stores or
non-block backends — degenerate record patterns, point queries) raise
:class:`PlannerFallback` internally and are transparently answered by the
reference decode path, so every store keeps answering correctly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.approximation.reconstruct import reconstruct
from repro.core.types import Recording
from repro.queries.aggregates import (
    RangeAggregate,
    clip_aggregate,
    line_aggregate,
    range_aggregate,
    resample,
    resample_grid,
    rolling_edges,
    window_aggregates,
    window_edges,
)
from repro.storage.backends.base import RECORD_KINDS, range_indices
from repro.storage.summaries import (
    END_CODE,
    HOLD_CODE,
    START_CODE,
    block_summary,
    pair_pieces,
    summarize_block,
)

__all__ = [
    "TOLERANCE",
    "PlannerFallback",
    "StreamQueryPlan",
    "plan_range_aggregate",
    "plan_window_aggregates",
    "plan_resample",
]

#: Relative tolerance within which summary-composed aggregates match the
#: decode path.  The two paths evaluate identical piece arithmetic; they can
#: differ only in float summation order (per-block partial sums vs one global
#: sum), which stays far inside this bound for realistic block counts.
TOLERANCE = 1e-9

#: Streams with fewer blocks than this answer through the decode path — the
#: planner's bookkeeping only pays off once summaries let it skip real work.
MIN_PLANNER_BLOCKS = 4


class PlannerFallback(Exception):
    """Internal signal: answer this query via the reference decode path."""


def _tail_arrays(
    tail: Sequence[Recording], dimensions: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    kinds = np.array([RECORD_KINDS[r.kind] for r in tail], dtype=np.uint8)
    times = np.array([r.time for r in tail], dtype=float)
    values = np.vstack([np.atleast_1d(np.asarray(r.value, dtype=float)) for r in tail])
    if values.shape[1] != dimensions:
        raise PlannerFallback("tail dimensionality mismatch")
    return kinds, times, values


class StreamQueryPlan:
    """Aggregate-query plan for one stored stream (plus optional live tail).

    Holds the stream's block-summary index, a per-block decode cache shared
    by every query answered through the plan (one plan serves a whole
    tumbling-window sweep), and the per-dimension composed arrays the
    fast path clips against.

    Raises:
        PlannerFallback: When the stream has no usable summary index (seed
            catalogs before backfill, non-summarising backends, empty
            streams) — callers answer via the decode path instead.
        KeyError: If the stream does not exist.
    """

    def __init__(
        self,
        store,
        name: str,
        tail: Optional[Sequence[Recording]] = None,
    ) -> None:
        entry = store.describe(name)
        self._store = store
        self._name = name
        self._dimensions = entry.dimensions
        try:
            blocks = store.summary_range(name)
        except (AttributeError, NotImplementedError) as error:
            raise PlannerFallback(str(error)) from None
        self._summaries: List[dict] = []
        starts: List[float] = []
        ends: List[float] = []
        counts: List[int] = []
        for block in blocks:
            summary = block_summary(block)
            if summary is None:
                raise PlannerFallback("stream has blocks without summaries")
            self._summaries.append(summary)
            starts.append(float(block[2]))
            ends.append(float(block[3]))
            counts.append(int(block[1]))
        self._real_blocks = len(blocks)
        #: block index -> decoded ``(kinds, times, values)`` (all columns)
        self._decoded: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: block index -> ``(kinds, times)`` only (column-pruned fetch)
        self._kt_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        #: ``(block index, dimension)`` -> one value column
        self._col_cache: Dict[Tuple[int, int], np.ndarray] = {}
        if tail:
            kinds, times, values = _tail_arrays(tail, self._dimensions)
            if np.any(np.diff(times) <= 0.0) or (ends and times[0] <= ends[-1]):
                raise PlannerFallback("live tail is not strictly after the stored log")
            self._decoded[len(counts)] = (kinds, times, values)
            self._summaries.append(summarize_block(kinds, times, values))
            starts.append(float(times[0]))
            ends.append(float(times[-1]))
            counts.append(len(times))
        if not counts:
            raise PlannerFallback("stream has no records")
        boundary_kinds = {int(s["first"][0]) for s in self._summaries}
        boundary_kinds |= {int(s["last"][0]) for s in self._summaries}
        if HOLD_CODE in boundary_kinds and len(boundary_kinds) > 1:
            # Mixed HOLD/segment records cannot reconstruct; let the decode
            # path raise the reference ValueError.
            raise PlannerFallback("stream mixes HOLD and segment records")
        self._hold_stream = boundary_kinds == {HOLD_CODE}
        self._starts = np.asarray(starts)
        self._ends = np.asarray(ends)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._record_count = int(self._offsets[-1])
        self._compose_cache: Dict[int, dict] = {}
        #: ``(block index, dimension)`` -> paired piece endpoint arrays
        #: (``t0, x0, t1, x1``, the x's one column) of the decoded block
        self._pieces_cache: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        self._atoms_cache: Dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # Stream geometry
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Signal dimensions of the planned stream."""
        return self._dimensions

    def time_bounds(self) -> Tuple[float, float]:
        """First and last record time (live tail included)."""
        return float(self._starts[0]), float(self._ends[-1])

    # ------------------------------------------------------------------ #
    # Record access (block decode cache)
    # ------------------------------------------------------------------ #
    def _decode(self, index: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cached = self._decoded.get(index)
        if cached is not None:
            return cached
        decoded = self._fetch(index, None)
        values = decoded[2].reshape(len(decoded[1]), self._dimensions)
        decoded = (decoded[0], decoded[1], values)
        self._decoded[index] = decoded
        return decoded

    def _fetch(
        self, index: int, dims: Optional[Tuple[int, ...]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One block from the store, column-projected when ``dims`` is given.

        Duck-typed stores whose ``read_block_arrays`` predates the ``dims``
        parameter get a full fetch plus an in-memory slice instead.
        """
        try:
            if dims is None:
                return self._store.read_block_arrays(self._name, index, index + 1)
            try:
                return self._store.read_block_arrays(
                    self._name, index, index + 1, dims=dims
                )
            except TypeError:
                kinds, times, values = self._store.read_block_arrays(
                    self._name, index, index + 1
                )
                values = values.reshape(len(times), self._dimensions)[:, list(dims)]
                return kinds, times, values
        except (AttributeError, NotImplementedError) as error:
            raise PlannerFallback(str(error)) from None

    def _kt(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One block's ``(kinds, times)`` without touching its value columns.

        1-dimensional streams go through the full decode cache — pruning a
        single column saves nothing and the full block serves later value
        probes.
        """
        cached = self._decoded.get(index)
        if cached is not None:
            return cached[0], cached[1]
        if self._dimensions == 1:
            decoded = self._decode(index)
            return decoded[0], decoded[1]
        kt = self._kt_cache.get(index)
        if kt is None:
            kinds, times, _ = self._fetch(index, ())
            kt = (kinds, times)
            self._kt_cache[index] = kt
        return kt

    def _column(self, index: int, dimension: int) -> np.ndarray:
        """One block's single value column (pruned fetch on wide streams)."""
        cached = self._decoded.get(index)
        if cached is not None:
            return cached[2][:, dimension]
        if self._dimensions == 1:
            return self._decode(index)[2][:, dimension]
        key = (index, dimension)
        column = self._col_cache.get(key)
        if column is None:
            _, _, values = self._fetch(index, (dimension,))
            column = values[:, 0]
            self._col_cache[key] = column
        return column

    def _record(self, index: int) -> Tuple[int, float, np.ndarray]:
        block = int(np.searchsorted(self._offsets, index, side="right")) - 1
        kinds, times, values = self._decode(block)
        local = index - int(self._offsets[block])
        return int(kinds[local]), float(times[local]), values[local]

    def _record_scalar(self, index: int, dimension: int) -> Tuple[int, float, float]:
        """Like :meth:`_record` but for one dimension, via pruned fetches."""
        block = int(np.searchsorted(self._offsets, index, side="right")) - 1
        kinds, times = self._kt(block)
        local = index - int(self._offsets[block])
        return (
            int(kinds[local]),
            float(times[local]),
            float(self._column(block, dimension)[local]),
        )

    def _first_at_or_after(self, time: float) -> int:
        """Global index of the first record with ``time >= t`` (count if none)."""
        block = int(np.searchsorted(self._ends, time, side="left"))
        if block >= len(self._ends):
            return self._record_count
        if time <= self._starts[block]:
            return int(self._offsets[block])
        times = self._kt(block)[1]
        return int(self._offsets[block]) + int(np.searchsorted(times, time, side="left"))

    def _first_after(self, time: float) -> Optional[int]:
        """Global index of the first record with ``time > t`` (None if none)."""
        block = int(np.searchsorted(self._ends, time, side="right"))
        if block >= len(self._ends):
            return None
        if time < self._starts[block]:
            return int(self._offsets[block])
        times = self._kt(block)[1]
        return int(self._offsets[block]) + int(np.searchsorted(times, time, side="right"))

    # ------------------------------------------------------------------ #
    # Piece resolution at the subset boundaries
    # ------------------------------------------------------------------ #
    def _first_piece(
        self, head: int, after: Optional[int], dimension: int
    ) -> Tuple[float, float, float, float]:
        """First piece of the records a ``[start, end]`` read would return.

        Mirrors :func:`~repro.approximation.reconstruct.reconstruct` over the
        record subset ``[head, after]``: the first pair forming a piece wins;
        a subset ending in an unmatched ``START``/``HOLD`` contributes a
        trailing zero-length piece.  At most two pairs need inspection (two
        consecutive gap pairs are impossible).
        """
        last_index = after if after is not None else self._record_count - 1
        index = head
        for _ in range(3):
            if index + 1 > last_index:
                kind, time, value = self._record_scalar(last_index, dimension)
                if kind == END_CODE:
                    raise PlannerFallback("subset has no pieces")
                return time, value, time, value
            k0, t0, v0 = self._record_scalar(index, dimension)
            k1, t1, v1 = self._record_scalar(index + 1, dimension)
            if k1 == END_CODE and k0 != HOLD_CODE:
                return t0, v0, t1, v1
            if k0 == START_CODE and k1 == START_CODE:
                return t0, v0, t0, v0
            if k0 == HOLD_CODE and k1 == HOLD_CODE:
                return t0, v0, t1, v0
            index += 1  # gap pair — the next pair cannot be another gap
        raise PlannerFallback("could not resolve the subset's first piece")

    def _last_piece(self, dimension: int) -> Tuple[float, float, float, float]:
        """The stream's final piece (for extending past the stream end)."""
        kind, time, value = self._record_scalar(self._record_count - 1, dimension)
        if kind in (START_CODE, HOLD_CODE):
            return time, value, time, value
        if self._record_count < 2:
            raise PlannerFallback("single-record stream ends in SEGMENT_END")
        k0, t0, v0 = self._record_scalar(self._record_count - 2, dimension)
        if k0 == HOLD_CODE:
            raise PlannerFallback("mixed HOLD/segment records at the stream end")
        return t0, v0, time, value

    # ------------------------------------------------------------------ #
    # Per-dimension composed arrays
    # ------------------------------------------------------------------ #
    def _compose(self, dimension: int) -> dict:
        cached = self._compose_cache.get(dimension)
        if cached is not None:
            return cached
        if not 0 <= dimension < self._dimensions:
            raise PlannerFallback(f"dimension {dimension} out of range")
        span0, span1, covered, integrals, minima, maxima, indices = [], [], [], [], [], [], []
        for index, summary in enumerate(self._summaries):
            span = summary.get("span")
            if span is None:
                continue
            span0.append(float(span[0]))
            span1.append(float(span[1]))
            covered.append(float(summary["covered"]))
            integrals.append(float(summary["integral"][dimension]))
            minima.append(float(summary["min"][dimension]))
            maxima.append(float(summary["max"][dimension]))
            indices.append(index)
        # Bridge pieces between adjacent blocks, from boundary records only.
        bt0, bx0, bt1, bx1 = [], [], [], []
        for index in range(len(self._summaries) - 1):
            left, right = self._summaries[index]["last"], self._summaries[index + 1]["first"]
            lk, rk = int(left[0]), int(right[0])
            lt, rt = float(self._ends[index]), float(self._starts[index + 1])
            lx, rx = float(left[1 + dimension]), float(right[1 + dimension])
            if rk == END_CODE and lk != HOLD_CODE:
                piece = (lt, lx, rt, rx)
            elif lk == START_CODE and rk == START_CODE:
                piece = (lt, lx, lt, lx)
            elif lk == HOLD_CODE and rk == HOLD_CODE:
                piece = (lt, lx, rt, lx)
            else:
                continue  # SEGMENT_END → SEGMENT_START: a gap
            bt0.append(piece[0])
            bx0.append(piece[1])
            bt1.append(piece[2])
            bx1.append(piece[3])
        # The stream-final unmatched START/HOLD record is a zero-length piece.
        final = self._summaries[-1]["last"]
        if int(final[0]) in (START_CODE, HOLD_CODE):
            bt0.append(float(self._ends[-1]))
            bx0.append(float(final[1 + dimension]))
            bt1.append(float(self._ends[-1]))
            bx1.append(float(final[1 + dimension]))
        composed = {
            "span0": np.asarray(span0),
            "span1": np.asarray(span1),
            "covered": np.asarray(covered),
            "integral": np.asarray(integrals),
            "min": np.asarray(minima),
            "max": np.asarray(maxima),
            "index": np.asarray(indices, dtype=np.intp),
            "bridges": (
                np.asarray(bt0),
                np.asarray(bx0),
                np.asarray(bt1),
                np.asarray(bx1),
            ),
        }
        self._compose_cache[dimension] = composed
        return composed

    # ------------------------------------------------------------------ #
    # Subset evaluation
    # ------------------------------------------------------------------ #
    def _subset_bounds(self, start: float, end: float) -> Tuple[int, Optional[int]]:
        """Record-index bounds of the subset ``store.read(start, end)`` keeps.

        ``head`` is the record just before the first record at-or-after
        ``start``; ``after`` the first record past ``end`` (None at the
        stream end).  These mirror the storage layer's ``range_indices``.
        """
        head_index = self._first_at_or_after(start)
        head = head_index - 1 if head_index > 0 else 0
        after = self._first_after(end)
        return head, after

    def _value_at(
        self, time: float, head: int, after: Optional[int], dimension: int
    ) -> float:
        """One dimension of :meth:`_value_row_at` (the aggregates' gap probe).

        Resolved through pruned per-column fetches, so a single-dimension
        aggregate on a wide stream never faults the other columns in.
        """
        return float(self._value_probe(time, head, after, dimension))

    def _value_row_at(
        self, time: float, head: int, after: Optional[int]
    ) -> np.ndarray:
        """``Approximation.value_at`` over the record subset ``[head, after]``.

        For piece-wise linear streams this is the first subset piece (in
        order) whose end is at-or-after ``time``, clamped to the last piece
        past the stream end; for piece-wise constant streams the last step
        at-or-before ``time``.  Both evaluate exactly as the reconstructed
        subset approximation would; all dimensions are returned at once.
        """
        return np.asarray(self._value_probe(time, head, after, None), dtype=float)

    def _value_probe(
        self, time: float, head: int, after: Optional[int], dimension: Optional[int]
    ):
        """Shared body of :meth:`_value_at` / :meth:`_value_row_at`.

        ``dimension=None`` reads whole records (full decode) and returns a
        row; an index reads one column (pruned fetch) and returns a float.
        The piece arithmetic is identical either way.
        """
        if dimension is None:
            record = self._record
        else:
            def record(index: int):
                return self._record_scalar(index, dimension)
        last_index = after if after is not None else self._record_count - 1
        if self._hold_stream:
            past = self._first_after(time)
            index = (past if past is not None else self._record_count) - 1
            index = min(max(index, head), last_index)
            return record(index)[2]
        anchor = self._first_at_or_after(time)
        for index in (anchor - 1, anchor, anchor + 1):
            if index < head:
                continue
            if index + 1 > last_index:
                break
            k0, t0, v0 = record(index)
            k1, t1, v1 = record(index + 1)
            if k1 == END_CODE and k0 != HOLD_CODE:
                if t1 >= time:
                    if t1 > t0:
                        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
                    return v0
            elif k0 == START_CODE and k1 == START_CODE:
                if t0 >= time:
                    return v0
        # Past every subset piece: clamp to the last piece and extrapolate.
        kind, _, value = record(last_index)
        if kind != END_CODE:
            return value  # trailing zero-length piece
        if last_index - 1 < head:
            raise PlannerFallback("subset has no pieces")
        k0, t0, v0 = record(last_index - 1)
        _, t1, v1 = record(last_index)
        if k0 == HOLD_CODE:
            raise PlannerFallback("mixed HOLD/segment records in the subset")
        if t1 > t0:
            return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        return v0

    def _clipped(
        self, start: float, end: float, dimension: int
    ) -> Tuple[float, float, float, float]:
        """``(min, max, integral, covered)`` of the stream's pieces ∩ range.

        Fully-contained blocks contribute their pre-aggregated summary;
        straddled blocks are decoded and clipped; bridge pieces come from
        the summaries' boundary records.
        """
        composed = self._compose(dimension)
        minimum, maximum, area, covered = float("inf"), float("-inf"), 0.0, 0.0
        overlap = (composed["span1"] >= start) & (composed["span0"] <= end)
        contained = overlap & (composed["span0"] >= start) & (composed["span1"] <= end)
        if contained.any():
            minimum = min(minimum, float(composed["min"][contained].min()))
            maximum = max(maximum, float(composed["max"][contained].max()))
            area += float(composed["integral"][contained].sum())
            covered += float(composed["covered"][contained].sum())
        for block in composed["index"][overlap & ~contained]:
            part = self._clip_block(int(block), start, end, dimension)
            minimum, maximum, area, covered = _merge(
                (minimum, maximum, area, covered), part
            )
        bridges = composed["bridges"]
        if bridges[0].size:
            part = clip_aggregate(*bridges, start, end)
            minimum, maximum, area, covered = _merge(
                (minimum, maximum, area, covered), part
            )
        return minimum, maximum, area, covered

    def _block_pieces(
        self, index: int, dimension: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One block's paired piece endpoints in one dimension, cached.

        Pairing depends only on kinds and times, so the pieces are built
        from a pruned single-column fetch — a straddled-block clip on a
        wide columnar stream never reads the untouched columns.
        """
        key = (index, dimension)
        cached = self._pieces_cache.get(key)
        if cached is None:
            kinds, times = self._kt(index)
            column = self._column(index, dimension)
            t0, x0, t1, x1 = pair_pieces(kinds, times, column.reshape(-1, 1))
            cached = (t0, x0[:, 0], t1, x1[:, 0])
            self._pieces_cache[key] = cached
        return cached

    def _clip_block(
        self, index: int, start: float, end: float, dimension: int
    ) -> Tuple[float, float, float, float]:
        """``(min, max, integral, covered)`` of one block's pieces ∩ range.

        The piece arrays are binary-search restricted to the overlapping run
        before clipping, so a rolling sweep's per-window cost stays
        proportional to the pieces a window edge actually cuts.
        """
        t0, x0, t1, x1 = self._block_pieces(index, dimension)
        lo = int(np.searchsorted(t1, start, side="left"))
        hi = int(np.searchsorted(t0, end, side="right"))
        if hi <= lo:
            return float("inf"), float("-inf"), 0.0, 0.0
        return clip_aggregate(
            t0[lo:hi], x0[lo:hi], t1[lo:hi], x1[lo:hi], start, end
        )

    # ------------------------------------------------------------------ #
    # Atom track (rolling-window composer)
    # ------------------------------------------------------------------ #
    def _atoms(self, dimension: int) -> dict:
        """The stream's material extent as sorted non-overlapping *atoms*.

        An atom is either a block's summarised piece span or one bridge
        piece between adjacent blocks — together they partition exactly the
        pieces :meth:`_clipped` aggregates.  Atoms are sorted by ``(start,
        end)``; since their interiors are disjoint both endpoint arrays end
        up non-decreasing, which is what lets the rolling composer advance
        four monotone pointers instead of rescanning.  Prefix sums over
        integral/covered give any contained run in O(1).
        """
        cached = self._atoms_cache.get(dimension)
        if cached is not None:
            return cached
        composed = self._compose(dimension)
        bt0, bx0, bt1, bx1 = composed["bridges"]
        blocks = composed["index"].shape[0]
        a0 = np.concatenate([composed["span0"], bt0])
        a1 = np.concatenate([composed["span1"], bt1])
        integral = np.concatenate([composed["integral"], 0.5 * (bx0 + bx1) * (bt1 - bt0)])
        covered = np.concatenate([composed["covered"], bt1 - bt0])
        minima = np.concatenate([composed["min"], np.minimum(bx0, bx1)])
        maxima = np.concatenate([composed["max"], np.maximum(bx0, bx1)])
        # Block index of summary atoms; -1 marks a bridge atom, whose own
        # endpoint values ride along for partial-overlap clipping.
        block = np.concatenate(
            [composed["index"], np.full(bt0.shape[0], -1, dtype=np.intp)]
        )
        x0 = np.concatenate([np.zeros(blocks), bx0])
        x1 = np.concatenate([np.zeros(blocks), bx1])
        order = np.lexsort((a1, a0))
        cached = {
            "a0": a0[order],
            "a1": a1[order],
            "min": minima[order],
            "max": maxima[order],
            "block": block[order],
            "x0": x0[order],
            "x1": x1[order],
            "prefix_integral": np.concatenate([[0.0], np.cumsum(integral[order])]),
            "prefix_covered": np.concatenate([[0.0], np.cumsum(covered[order])]),
        }
        self._atoms_cache[dimension] = cached
        return cached

    def _clip_atom(
        self, atoms: dict, index: int, start: float, end: float, dimension: int
    ) -> Tuple[float, float, float, float]:
        """Clip one atom to ``[start, end]`` (decoding only summary atoms)."""
        block = int(atoms["block"][index])
        if block >= 0:
            return self._clip_block(block, start, end, dimension)
        return clip_aggregate(
            np.array([float(atoms["a0"][index])]),
            np.array([float(atoms["x0"][index])]),
            np.array([float(atoms["a1"][index])]),
            np.array([float(atoms["x1"][index])]),
            start,
            end,
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def _aggregate(
        self,
        start: float,
        end: float,
        dimension: int,
        head: int,
        after: Optional[int],
        first_piece: Tuple[float, float, float, float],
    ) -> RangeAggregate:
        """Aggregate ``[start, end]`` against the record subset ``[head, after]``.

        The subset (and its resolved first piece) is the one the enclosing
        query's bounds select — for a tumbling-window sweep that is the
        *outer* range's subset shared by every window, matching how the
        decode path reconstructs once and aggregates each window against
        that single approximation.
        """
        if end == start:
            value = self._value_at(start, head, after, dimension)
            return RangeAggregate(start, end, value, value, value, 0.0)
        minimum, maximum, area, covered = self._clipped(start, end, dimension)
        if start < first_piece[0]:
            extension = line_aggregate(first_piece, start, min(first_piece[0], end))
            minimum, maximum, area, covered = _merge(
                (minimum, maximum, area, covered), extension
            )
        span_end = float(self._ends[-1])
        if after is None and end > span_end:
            extension = line_aggregate(self._last_piece(dimension), max(span_end, start), end)
            minimum, maximum, area, covered = _merge(
                (minimum, maximum, area, covered), extension
            )
        if covered <= 0.0:
            # Entirely inside an interior gap: the trapezoid between the
            # subset-extrapolated boundary values, as the decode path does.
            value_start = self._value_at(start, head, after, dimension)
            value_end = self._value_at(end, head, after, dimension)
            minimum = min(value_start, value_end)
            maximum = max(value_start, value_end)
            area = 0.5 * (value_start + value_end) * (end - start)
            covered = end - start
        return RangeAggregate(start, end, minimum, maximum, area / covered, area)

    def range_aggregate(self, start: float, end: float, dimension: int = 0) -> RangeAggregate:
        """``RangeAggregate`` over ``[start, end]``, matching the decode path.

        The clipping/extension semantics are those documented on
        :func:`~repro.queries.aggregates.range_aggregate`, applied to the
        record subset a ``store.read(name, start, end)`` would return.
        """
        if end < start:
            raise ValueError("end must not precede start")
        head, after = self._subset_bounds(start, end)
        first_piece = self._first_piece(head, after, dimension)
        return self._aggregate(start, end, dimension, head, after, first_piece)

    def window_aggregates(
        self,
        start: float,
        end: float,
        window: float,
        dimension: int = 0,
        step: Optional[float] = None,
    ) -> List[RangeAggregate]:
        """Tumbling or rolling window aggregates; one shared plan/decode cache.

        Every window aggregates against the *outer* range's record subset —
        head/tail extensions belong to the outer boundaries only, and a
        window inside an interior gap degrades to the boundary trapezoid —
        mirroring the decode path, which reads ``[start, end]`` once and
        windows over that single approximation.  With a ``step`` the windows
        overlap (or hop) and are answered by the incremental
        :meth:`rolling_aggregates` composer.
        """
        if step is not None:
            return self.rolling_aggregates(start, end, window, step, dimension)
        if window <= 0.0:
            raise ValueError("window must be positive")
        if end < start:
            raise ValueError("end must not precede start")
        edges = window_edges(start, end, window)
        if not len(edges):
            return []
        head, after = self._subset_bounds(start, end)
        first_piece = self._first_piece(head, after, dimension)
        return [
            self._aggregate(
                float(edges[i]), float(edges[i + 1]), dimension, head, after, first_piece
            )
            for i in range(len(edges) - 1)
        ]

    def rolling_aggregates(
        self, start: float, end: float, window: float, step: float, dimension: int = 0
    ) -> List[RangeAggregate]:
        """Rolling-window aggregates via the incremental sliding composer.

        Windows come from :func:`~repro.queries.aggregates.rolling_edges`.
        Instead of re-clipping the whole composed extent per window (the
        tumbling path's O(windows × blocks)), the sweep maintains:

        * four monotone pointers into the sorted atom track
          (:meth:`_atoms`) — the contained run ``[i, j)`` and the overlap
          run ``[p, q)`` only ever advance as the window slides right;
        * prefix sums of atom integral/covered — any contained run composes
          in O(1) (add-on-the-right / subtract-on-the-left in closed form);
        * monotonic deques over atom extrema — sliding min/max in O(1)
          amortised per window.

        Only the ≤ 2 atoms a window edge cuts are clipped for real, and a
        cut summary atom decodes its block once into the shared cache, so a
        whole sweep costs O(blocks + windows).  Semantics (outer-subset
        extensions, gap trapezoids, closed-interval extrema) match
        :meth:`_aggregate` window for window.
        """
        if window <= 0.0:
            raise ValueError("window must be positive")
        if step <= 0.0:
            raise ValueError("step must be positive")
        if end < start:
            raise ValueError("end must not precede start")
        lows, highs = rolling_edges(start, end, window, step)
        count = lows.shape[0]
        if not count:
            return []
        head, after = self._subset_bounds(start, end)
        first_piece = self._first_piece(head, after, dimension)
        atoms = self._atoms(dimension)
        a0, a1 = atoms["a0"], atoms["a1"]
        minima, maxima = atoms["min"], atoms["max"]
        prefix_area, prefix_covered = atoms["prefix_integral"], atoms["prefix_covered"]
        total = a0.shape[0]
        span_end = float(self._ends[-1])
        first_start = first_piece[0]
        # Pointer targets for every window at once (same search the pointers
        # replay incrementally; computing them vectorised keeps the python
        # loop to deque upkeep and boundary clips).
        i_all = np.searchsorted(a0, lows, side="left")
        p_all = np.searchsorted(a1, lows, side="left")
        j_all = np.searchsorted(a1, highs, side="right")
        q_all = np.searchsorted(a0, highs, side="right")
        min_track: deque = deque()
        max_track: deque = deque()
        pushed = 0
        results: List[RangeAggregate] = []
        for w in range(count):
            w_lo, w_hi = float(lows[w]), float(highs[w])
            if w_hi == w_lo:
                value = self._value_at(w_lo, head, after, dimension)
                results.append(RangeAggregate(w_lo, w_hi, value, value, value, 0.0))
                continue
            i, j = int(i_all[w]), int(j_all[w])
            p, q = int(p_all[w]), int(q_all[w])
            while pushed < j:  # add-on-the-right
                while min_track and minima[min_track[-1]] >= minima[pushed]:
                    min_track.pop()
                min_track.append(pushed)
                while max_track and maxima[max_track[-1]] <= maxima[pushed]:
                    max_track.pop()
                max_track.append(pushed)
                pushed += 1
            while min_track and min_track[0] < i:  # subtract-on-the-left
                min_track.popleft()
            while max_track and max_track[0] < i:
                max_track.popleft()
            minimum, maximum, area, covered = float("inf"), float("-inf"), 0.0, 0.0
            if j > i:  # the fully-contained run, in O(1) from the prefixes
                minimum = float(minima[min_track[0]])
                maximum = float(maxima[max_track[0]])
                area = float(prefix_area[j] - prefix_area[i])
                covered = float(prefix_covered[j] - prefix_covered[i])
            # Edge atoms the window cuts: [p, i) on the left and, skipping
            # anything already counted, [max(i, j), q) on the right.
            for index in range(p, i):
                part = self._clip_atom(atoms, index, w_lo, w_hi, dimension)
                minimum, maximum, area, covered = _merge(
                    (minimum, maximum, area, covered), part
                )
            for index in range(max(i, j), q):
                part = self._clip_atom(atoms, index, w_lo, w_hi, dimension)
                minimum, maximum, area, covered = _merge(
                    (minimum, maximum, area, covered), part
                )
            if w_lo < first_start:
                extension = line_aggregate(first_piece, w_lo, min(first_start, w_hi))
                minimum, maximum, area, covered = _merge(
                    (minimum, maximum, area, covered), extension
                )
            if after is None and w_hi > span_end:
                extension = line_aggregate(
                    self._last_piece(dimension), max(span_end, w_lo), w_hi
                )
                minimum, maximum, area, covered = _merge(
                    (minimum, maximum, area, covered), extension
                )
            if covered <= 0.0:
                value_start = self._value_at(w_lo, head, after, dimension)
                value_end = self._value_at(w_hi, head, after, dimension)
                minimum = min(value_start, value_end)
                maximum = max(value_start, value_end)
                area = 0.5 * (value_start + value_end) * (w_hi - w_lo)
                covered = w_hi - w_lo
            results.append(
                RangeAggregate(w_lo, w_hi, minimum, maximum, area / covered, area)
            )
        return results

    # ------------------------------------------------------------------ #
    # Resample
    # ------------------------------------------------------------------ #
    def resample(
        self, start: float, end: float, step: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the stream on a regular grid, decoding only touched blocks.

        Each grid value resolves through the block index: a point falling
        between two blocks interpolates straight from the summaries'
        boundary records (no decode at all), a point inside a block decodes
        that block once into the shared cache.  Blocks no grid point lands
        in are never read — the win over the decode path, which reads every
        block in the range regardless of the grid.  Grids at least as dense
        as the records fall back (the vectorised decode path is faster
        there and the planner could not skip any block anyway).
        """
        if step <= 0.0:
            raise ValueError("step must be positive")
        if end < start:
            raise ValueError("end must not precede start")
        times = resample_grid(start, end, step)
        head, after = self._subset_bounds(start, end)
        last = after if after is not None else self._record_count - 1
        if times.shape[0] >= max(last - head + 1, 1):
            raise PlannerFallback("grid at least as dense as the stored records")
        values = np.empty((times.shape[0], self._dimensions))
        for position in range(times.shape[0]):
            values[position] = self._grid_row(float(times[position]), head, after)
        return times, values

    def _grid_row(self, time: float, head: int, after: Optional[int]) -> np.ndarray:
        """One grid value; summary boundary records answer inter-block times."""
        block = int(np.searchsorted(self._ends, time, side="left"))
        if 0 < block < len(self._summaries):
            left_time = float(self._ends[block - 1])
            right_time = float(self._starts[block])
            if left_time < time < right_time:
                left = self._summaries[block - 1]["last"]
                right = self._summaries[block]["first"]
                left_kind, right_kind = int(left[0]), int(right[0])
                if right_kind == END_CODE and left_kind != HOLD_CODE:
                    x0 = np.asarray(left[1:], dtype=float)
                    x1 = np.asarray(right[1:], dtype=float)
                    return x0 + (x1 - x0) * (time - left_time) / (right_time - left_time)
                if left_kind == HOLD_CODE and right_kind == HOLD_CODE:
                    return np.asarray(left[1:], dtype=float)
                # A gap (or zero-length) bridge: the next piece answers —
                # resolve through the record path below.
        return self._value_row_at(time, head, after)


def _merge(
    a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]
) -> Tuple[float, float, float, float]:
    return min(a[0], b[0]), max(a[1], b[1]), a[2] + b[2], a[3] + b[3]


# ---------------------------------------------------------------------- #
# Reference decode path (fallback + resample)
# ---------------------------------------------------------------------- #
def _reference_recordings(
    store,
    name: str,
    start: Optional[float],
    end: Optional[float],
    tail: Optional[Sequence[Recording]],
) -> List[Recording]:
    """The record subset the planner models, via a real decode.

    Mirrors ``StreamDB.read``: the stored range read merged with the live
    tail, re-subset with the store's range semantics.
    """
    stored = store.read(name, start, end)
    if not tail:
        return stored
    merged = stored + list(tail)
    times = np.fromiter((r.time for r in merged), dtype=float, count=len(merged))
    return [merged[index] for index in range_indices(times, start, end)]


def _reference_bounds(
    recordings: Sequence[Recording], start: Optional[float], end: Optional[float]
) -> Tuple[float, float]:
    lo = float(recordings[0].time) if start is None else float(start)
    hi = float(recordings[-1].time) if end is None else float(end)
    return lo, hi


def _build_plan(
    store,
    name: str,
    tail: Optional[Sequence[Recording]],
    min_blocks: int,
) -> StreamQueryPlan:
    plan = StreamQueryPlan(store, name, tail)
    if plan._real_blocks < min_blocks:
        raise PlannerFallback("stream too small for summary composition")
    return plan


def plan_range_aggregate(
    store,
    name: str,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
    *,
    tail: Optional[Sequence[Recording]] = None,
    min_blocks: int = MIN_PLANNER_BLOCKS,
) -> RangeAggregate:
    """Range aggregate of a stored stream via the block-summary planner.

    Bounds default to the stream's span (tail included).  Falls back to the
    decode path whenever the summary index cannot answer provably — the
    result is the same either way, within :data:`TOLERANCE`.
    """
    try:
        plan = _build_plan(store, name, tail, min_blocks)
        lo, hi = plan.time_bounds()
        return plan.range_aggregate(
            lo if start is None else start, hi if end is None else end, dimension
        )
    except PlannerFallback:
        recordings = _reference_recordings(store, name, start, end, tail)
        approximation = reconstruct(recordings)
        lo, hi = _reference_bounds(recordings, start, end)
        return range_aggregate(approximation, lo, hi, dimension=dimension)


def plan_window_aggregates(
    store,
    name: str,
    window: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
    *,
    step: Optional[float] = None,
    tail: Optional[Sequence[Recording]] = None,
    min_blocks: int = MIN_PLANNER_BLOCKS,
) -> List[RangeAggregate]:
    """Window aggregates via the planner (decode-path fallback).

    ``step=None`` gives tumbling windows; with a ``step`` the windows start
    every ``step`` time units (overlapping when ``step < window``) and are
    answered by the incremental rolling composer.
    """
    try:
        plan = _build_plan(store, name, tail, min_blocks)
        lo, hi = plan.time_bounds()
        return plan.window_aggregates(
            lo if start is None else start,
            hi if end is None else end,
            window,
            dimension,
            step=step,
        )
    except PlannerFallback:
        recordings = _reference_recordings(store, name, start, end, tail)
        approximation = reconstruct(recordings)
        lo, hi = _reference_bounds(recordings, start, end)
        return window_aggregates(
            approximation, lo, hi, window, dimension=dimension, step=step
        )


def plan_resample(
    store,
    name: str,
    step: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    *,
    tail: Optional[Sequence[Recording]] = None,
    min_blocks: int = MIN_PLANNER_BLOCKS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample a stored stream onto a regular grid.

    Sparse grids (fewer points than stored records) resolve each value
    through the block-summary index — inter-block points interpolate from
    boundary records, in-block points decode just their block (see
    :meth:`StreamQueryPlan.resample`).  Dense grids, and streams the
    planner cannot prove equivalent, fall back to the reference decode
    path; the values match within :data:`TOLERANCE` either way.
    """
    if step <= 0.0:
        raise ValueError("step must be positive")
    try:
        plan = _build_plan(store, name, tail, min_blocks)
        lo, hi = plan.time_bounds()
        return plan.resample(
            lo if start is None else float(start),
            hi if end is None else float(end),
            step,
        )
    except PlannerFallback:
        recordings = _reference_recordings(store, name, start, end, tail)
        approximation = reconstruct(recordings)
        lo, hi = _reference_bounds(recordings, start, end)
        return resample(approximation, lo, hi, step)
