"""Analytic aggregates over piece-wise approximations.

For a piece-wise *linear* approximation the usual monitoring aggregates can
be computed exactly from the segment endpoints — no resampling needed:

* the minimum / maximum over a time range is attained at a segment endpoint
  or at a range boundary;
* the time-weighted mean is the integral of the trapezoids divided by the
  range length;
* threshold crossings are the roots of ``segment(t) = threshold``.

Piece-wise *constant* approximations are handled through the same interface
(each held value is a zero-slope segment).

Because every original data point is within ε of the approximation, the
min / max / mean computed here differ from the corresponding aggregates of
the original signal by at most ε per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.approximation.piecewise import (
    Approximation,
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)

__all__ = [
    "RangeAggregate",
    "range_aggregate",
    "window_aggregates",
    "integral",
    "threshold_crossings",
    "resample",
]


@dataclass(frozen=True)
class RangeAggregate:
    """Aggregates of one dimension of an approximation over ``[start, end]``.

    Attributes:
        start: Start of the queried time range.
        end: End of the queried time range.
        minimum: Minimum of the approximation over the range.
        maximum: Maximum of the approximation over the range.
        mean: Time-weighted mean of the approximation over the range.
        integral: Integral of the approximation over the range.
    """

    start: float
    end: float
    minimum: float
    maximum: float
    mean: float
    integral: float


def _segments_of(
    approximation: Approximation, dimension: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten an approximation into ``(t0, x0, t1, x1)`` endpoint arrays.

    Each position describes one piece for the requested dimension; every
    aggregate below computes over these arrays instead of looping pieces.
    """
    if isinstance(approximation, PiecewiseLinearApproximation):
        segments = approximation.segments
        count = len(segments)
        t0 = np.empty(count)
        x0 = np.empty(count)
        t1 = np.empty(count)
        x1 = np.empty(count)
        for index, segment in enumerate(segments):
            t0[index] = segment.start_time
            x0[index] = segment.start_value[dimension]
            t1[index] = segment.end_time
            x1[index] = segment.end_value[dimension]
        return t0, x0, t1, x1
    if isinstance(approximation, PiecewiseConstantApproximation):
        steps = np.asarray(approximation.steps, dtype=float)
        values = approximation.values_at(steps)[:, dimension]
        ends = np.empty_like(steps)
        ends[:-1] = steps[1:]
        ends[-1] = steps[-1]
        return steps, values, ends, values
    raise TypeError(f"unsupported approximation type: {type(approximation)!r}")


def range_aggregate(
    approximation: Approximation, start: float, end: float, dimension: int = 0
) -> RangeAggregate:
    """Min / max / mean / integral of one dimension over ``[start, end]``.

    The query range is clipped to the approximation's span; times outside it
    are evaluated by extending the first/last piece (consistent with
    :meth:`Approximation.value_at`).

    Raises:
        ValueError: If ``end < start``.
    """
    return _aggregate_over(
        approximation, _segments_of(approximation, dimension), start, end, dimension
    )


def _aggregate_over(
    approximation: Approximation,
    pieces: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    start: float,
    end: float,
    dimension: int,
) -> RangeAggregate:
    """Aggregate pre-flattened endpoint arrays over one ``[start, end]`` range."""
    if end < start:
        raise ValueError("end must not precede start")
    if end == start:
        value = float(approximation.value_at(start)[dimension])
        return RangeAggregate(start, end, value, value, value, 0.0)

    t0, x0, t1, x1 = pieces
    lo = np.maximum(t0, start)
    hi = np.minimum(t1, end)
    overlap = hi >= lo
    minimum = float("inf")
    maximum = float("-inf")
    total_area = 0.0
    covered = 0.0
    if overlap.any():
        t0c, x0c, t1c, x1c = t0[overlap], x0[overlap], t1[overlap], x1[overlap]
        loc, hic = lo[overlap], hi[overlap]
        duration = t1c - t0c
        # Zero-duration pieces hold their start value; avoid the 0/0.
        safe = np.where(duration > 0.0, duration, 1.0)
        value_lo = np.where(duration > 0.0, x0c + (x1c - x0c) * (loc - t0c) / safe, x0c)
        value_hi = np.where(duration > 0.0, x0c + (x1c - x0c) * (hic - t0c) / safe, x0c)
        minimum = float(np.minimum(value_lo, value_hi).min())
        maximum = float(np.maximum(value_lo, value_hi).max())
        spans = hic - loc
        total_area = float((0.5 * (value_lo + value_hi) * spans).sum())
        covered = float(spans.sum())

    # Handle query ranges sticking out of the approximation's span: evaluate
    # the boundary values so min/max/mean stay defined.
    for boundary in (start, end):
        value = float(approximation.value_at(boundary)[dimension])
        minimum = min(minimum, value)
        maximum = max(maximum, value)
    if covered <= 0.0:
        # Entirely outside the span: treat as the boundary evaluation held
        # over the range.
        value_start = float(approximation.value_at(start)[dimension])
        value_end = float(approximation.value_at(end)[dimension])
        total_area = 0.5 * (value_start + value_end) * (end - start)
        covered = end - start

    mean = total_area / covered
    return RangeAggregate(start, end, minimum, maximum, mean, total_area)


def window_aggregates(
    approximation: Approximation,
    start: float,
    end: float,
    window: float,
    dimension: int = 0,
) -> List[RangeAggregate]:
    """Tumbling-window aggregates covering ``[start, end]``.

    Args:
        approximation: The compressed signal.
        start: Start of the first window.
        end: End of the query range (the last window may be shorter).
        window: Window length (must be positive).
        dimension: Signal dimension to aggregate.
    """
    if window <= 0.0:
        raise ValueError("window must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    # The endpoint arrays are shared across all windows — flattening the
    # approximation once instead of once per window.
    pieces = _segments_of(approximation, dimension)
    results = []
    cursor = start
    while cursor < end:
        upper = min(cursor + window, end)
        results.append(_aggregate_over(approximation, pieces, cursor, upper, dimension))
        cursor = upper
    return results


def integral(approximation: Approximation, start: float, end: float, dimension: int = 0) -> float:
    """Integral of the approximation over ``[start, end]`` (one dimension)."""
    return range_aggregate(approximation, start, end, dimension).integral


def threshold_crossings(
    approximation: Approximation,
    threshold: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
) -> List[float]:
    """Times at which the approximation crosses ``threshold``.

    Only genuine sign changes are reported (touching the threshold without
    crossing does not count); crossings are clipped to the closed interval
    ``[start, end]`` when given (a crossing exactly at a boundary is kept).
    """
    t0, x0, t1, x1 = _segments_of(approximation, dimension)
    # A genuine crossing needs the endpoints strictly on opposite sides of
    # the threshold; merely touching it does not count.
    crossing_mask = (t1 != t0) & ((x0 - threshold) * (x1 - threshold) < 0.0)
    if not crossing_mask.any():
        return []
    t0c, x0c, t1c, x1c = (
        t0[crossing_mask],
        x0[crossing_mask],
        t1[crossing_mask],
        x1[crossing_mask],
    )
    # Linear interpolation of the crossing time within each piece.
    crossings = t0c + (threshold - x0c) / (x1c - x0c) * (t1c - t0c)
    if start is not None:
        crossings = crossings[crossings >= start]
    if end is not None:
        crossings = crossings[crossings <= end]
    return sorted(float(crossing) for crossing in crossings)


def resample(
    approximation: Approximation,
    start: float,
    end: float,
    step: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the approximation on a regular grid (all dimensions).

    Returns:
        ``(times, values)`` with ``values`` of shape ``(n, d)``.

    Raises:
        ValueError: If ``step`` is not positive or the range is empty.
    """
    if step <= 0.0:
        raise ValueError("step must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    times = np.arange(start, end + step / 2.0, step)
    return times, approximation.values_at(times)
