"""Analytic aggregates over piece-wise approximations.

For a piece-wise *linear* approximation the usual monitoring aggregates can
be computed exactly from the segment endpoints — no resampling needed:

* the minimum / maximum over a time range is attained at a segment endpoint
  or at a range boundary;
* the time-weighted mean is the integral of the trapezoids divided by the
  range length;
* threshold crossings are the roots of ``segment(t) = threshold``.

Piece-wise *constant* approximations are handled through the same interface
(each held value is a zero-slope segment).

Because every original data point is within ε of the approximation, the
min / max / mean computed here differ from the corresponding aggregates of
the original signal by at most ε per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.approximation.piecewise import (
    Approximation,
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)

__all__ = [
    "RangeAggregate",
    "range_aggregate",
    "window_aggregates",
    "integral",
    "threshold_crossings",
    "resample",
    "clip_aggregate",
    "line_aggregate",
    "window_edges",
    "rolling_edges",
    "resample_grid",
]

#: Tolerance absorbing float round-off when sizing window/resample grids
#: from a count: ``(end - start) / width`` within this of an integer is
#: treated as exact.
_GRID_SLACK = 1e-9


@dataclass(frozen=True)
class RangeAggregate:
    """Aggregates of one dimension of an approximation over ``[start, end]``.

    Attributes:
        start: Start of the queried time range.
        end: End of the queried time range.
        minimum: Minimum of the approximation over the range.
        maximum: Maximum of the approximation over the range.
        mean: Time-weighted mean of the approximation over the range.
        integral: Integral of the approximation over the range.
    """

    start: float
    end: float
    minimum: float
    maximum: float
    mean: float
    integral: float


def _segments_of(
    approximation: Approximation, dimension: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten an approximation into ``(t0, x0, t1, x1)`` endpoint arrays.

    Each position describes one piece for the requested dimension; every
    aggregate below computes over these arrays instead of looping pieces.
    """
    if isinstance(approximation, PiecewiseLinearApproximation):
        segments = approximation.segments
        count = len(segments)
        t0 = np.empty(count)
        x0 = np.empty(count)
        t1 = np.empty(count)
        x1 = np.empty(count)
        for index, segment in enumerate(segments):
            t0[index] = segment.start_time
            x0[index] = segment.start_value[dimension]
            t1[index] = segment.end_time
            x1[index] = segment.end_value[dimension]
        return t0, x0, t1, x1
    if isinstance(approximation, PiecewiseConstantApproximation):
        steps = np.asarray(approximation.steps, dtype=float)
        values = approximation.values_at(steps)[:, dimension]
        ends = np.empty_like(steps)
        ends[:-1] = steps[1:]
        ends[-1] = steps[-1]
        return steps, values, ends, values
    raise TypeError(f"unsupported approximation type: {type(approximation)!r}")


def clip_aggregate(
    t0: np.ndarray,
    x0: np.ndarray,
    t1: np.ndarray,
    x1: np.ndarray,
    start: float,
    end: float,
) -> Tuple[float, float, float, float]:
    """``(minimum, maximum, integral, covered)`` of pieces clipped to a range.

    The vectorized clip arithmetic shared by the in-memory aggregates and the
    stored-stream query planner: each piece described by the 1-dimensional
    endpoint arrays contributes the part of itself inside ``[start, end]``
    (zero-duration pieces contribute to the extrema when they lie inside).
    ``minimum``/``maximum`` are ``±inf`` when no piece overlaps.
    """
    lo = np.maximum(t0, start)
    hi = np.minimum(t1, end)
    overlap = hi >= lo
    if not overlap.any():
        return float("inf"), float("-inf"), 0.0, 0.0
    t0c, x0c, t1c, x1c = t0[overlap], x0[overlap], t1[overlap], x1[overlap]
    loc, hic = lo[overlap], hi[overlap]
    duration = t1c - t0c
    # Zero-duration pieces hold their start value; avoid the 0/0.
    safe = np.where(duration > 0.0, duration, 1.0)
    value_lo = np.where(duration > 0.0, x0c + (x1c - x0c) * (loc - t0c) / safe, x0c)
    value_hi = np.where(duration > 0.0, x0c + (x1c - x0c) * (hic - t0c) / safe, x0c)
    minimum = float(np.minimum(value_lo, value_hi).min())
    maximum = float(np.maximum(value_lo, value_hi).max())
    spans = hic - loc
    total_area = float((0.5 * (value_lo + value_hi) * spans).sum())
    covered = float(spans.sum())
    return minimum, maximum, total_area, covered


def line_aggregate(
    piece: Tuple[float, float, float, float], lo: float, hi: float
) -> Tuple[float, float, float, float]:
    """``(minimum, maximum, integral, covered)`` of a piece's extended line.

    Evaluates the line through ``piece = (t0, x0, t1, x1)`` over ``[lo, hi]``
    *without* clipping to the piece — this is the boundary-extension
    arithmetic for query ranges sticking out of an approximation's span
    (zero-duration pieces extend as their constant value, consistent with
    :meth:`~repro.core.types.Segment.value_at`).
    """
    t0, x0, t1, x1 = piece
    slope = (x1 - x0) / (t1 - t0) if t1 > t0 else 0.0
    value_lo = x0 + slope * (lo - t0)
    value_hi = x0 + slope * (hi - t0)
    width = hi - lo
    return (
        min(value_lo, value_hi),
        max(value_lo, value_hi),
        0.5 * (value_lo + value_hi) * width,
        width,
    )


def range_aggregate(
    approximation: Approximation, start: float, end: float, dimension: int = 0
) -> RangeAggregate:
    """Min / max / mean / integral of one dimension over ``[start, end]``.

    Clipping/extension semantics (shared with the stored-stream planner in
    :mod:`repro.queries.planner`): all four aggregates are computed over the
    *covered* portion of the range — the pieces clipped to ``[start, end]``,
    plus the first/last piece extended linearly over the part of the range
    outside the approximation's span (consistent with how
    :meth:`Approximation.value_at` extrapolates there).  Time spent in
    interior gaps between disconnected pieces contributes nothing; a range
    falling entirely inside one gap degrades to the trapezoid between the
    extrapolated boundary values.

    Raises:
        ValueError: If ``end < start``.
    """
    return _aggregate_over(
        approximation, _segments_of(approximation, dimension), start, end, dimension
    )


def _aggregate_over(
    approximation: Approximation,
    pieces: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    start: float,
    end: float,
    dimension: int,
) -> RangeAggregate:
    """Aggregate pre-flattened endpoint arrays over one ``[start, end]`` range.

    Implements the covered-portion semantics documented on
    :func:`range_aggregate`: min/max/mean/integral all see the clipped pieces
    plus the out-of-span extensions, so the four aggregates are mutually
    consistent (the seed implementation let min/max see extrapolated boundary
    values that mean/integral ignored).
    """
    if end < start:
        raise ValueError("end must not precede start")
    if end == start:
        value = float(approximation.value_at(start)[dimension])
        return RangeAggregate(start, end, value, value, value, 0.0)

    t0, x0, t1, x1 = pieces
    minimum, maximum, total_area, covered = clip_aggregate(t0, x0, t1, x1, start, end)
    if t0.shape[0]:
        span_start = float(t0[0])
        span_end = float(t1.max())
        if start < span_start:
            piece = (float(t0[0]), float(x0[0]), float(t1[0]), float(x1[0]))
            extension = line_aggregate(piece, start, min(span_start, end))
            minimum, maximum, total_area, covered = _merge_aggregates(
                (minimum, maximum, total_area, covered), extension
            )
        if end > span_end:
            piece = (float(t0[-1]), float(x0[-1]), float(t1[-1]), float(x1[-1]))
            extension = line_aggregate(piece, max(span_end, start), end)
            minimum, maximum, total_area, covered = _merge_aggregates(
                (minimum, maximum, total_area, covered), extension
            )
    if covered <= 0.0:
        # Entirely inside an interior gap: degrade to the trapezoid between
        # the extrapolated boundary evaluations.
        value_start = float(approximation.value_at(start)[dimension])
        value_end = float(approximation.value_at(end)[dimension])
        minimum = min(value_start, value_end)
        maximum = max(value_start, value_end)
        total_area = 0.5 * (value_start + value_end) * (end - start)
        covered = end - start

    mean = total_area / covered
    return RangeAggregate(start, end, minimum, maximum, mean, total_area)


def _merge_aggregates(
    a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]
) -> Tuple[float, float, float, float]:
    """Combine two ``(minimum, maximum, integral, covered)`` tuples."""
    return (min(a[0], b[0]), max(a[1], b[1]), a[2] + b[2], a[3] + b[3])


def window_edges(start: float, end: float, window: float) -> np.ndarray:
    """Tumbling-window edge times over ``[start, end]``.

    Returns ``n + 1`` edges where ``n = ceil((end - start) / window)`` (within
    :data:`_GRID_SLACK` of exact division counts as exact).  Each edge is
    computed as ``start + index * window`` — not by accumulating a float
    cursor — so window boundaries are identical no matter how the range is
    split, and the final edge is pinned to ``end`` exactly (the last window
    may be shorter).  Returns an empty array when ``end <= start``.
    """
    if end <= start:
        return np.empty(0)
    count = max(int(np.ceil((end - start) / window - _GRID_SLACK)), 1)
    edges = start + np.arange(count + 1) * window
    edges[-1] = end
    return edges


def rolling_edges(
    start: float, end: float, window: float, step: float
) -> Tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of the rolling windows over ``[start, end]``.

    Window ``i`` is ``[start + i * step, min(start + i * step + window, end)]``
    — index arithmetic like :func:`window_edges`, so boundaries never drift.
    Enough windows are emitted for the last one to reach ``end`` (its start is
    always strictly before ``end``); with ``step == window`` the windows are
    exactly the tumbling windows of :func:`window_edges`.  A hop larger than
    the window is allowed and leaves gaps between windows.  Returns empty
    arrays when ``end <= start``.
    """
    if end <= start:
        return np.empty(0), np.empty(0)
    count = 1 + max(int(np.ceil((end - start - window) / step - _GRID_SLACK)), 0)
    starts = start + np.arange(count) * step
    starts = starts[starts < end]
    return starts, np.minimum(starts + window, end)


def window_aggregates(
    approximation: Approximation,
    start: float,
    end: float,
    window: float,
    dimension: int = 0,
    step: Optional[float] = None,
) -> List[RangeAggregate]:
    """Tumbling or rolling window aggregates covering ``[start, end]``.

    Window boundaries come from :func:`window_edges` / :func:`rolling_edges`
    (index arithmetic, not a running float cursor), so they match the
    stored-stream planner bit for bit and never drift over long ranges.

    Args:
        approximation: The compressed signal.
        start: Start of the first window.
        end: End of the query range (the last window may be shorter).
        window: Window length (must be positive).
        dimension: Signal dimension to aggregate.
        step: Hop between consecutive window starts; ``None`` (the default)
            means tumbling windows (``step == window``).  A step smaller than
            the window yields overlapping (rolling) windows.
    """
    if window <= 0.0:
        raise ValueError("window must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    if step is not None and step <= 0.0:
        raise ValueError("step must be positive")
    # The endpoint arrays are shared across all windows — flattening the
    # approximation once instead of once per window.
    pieces = _segments_of(approximation, dimension)
    if step is None:
        edges = window_edges(start, end, window)
        bounds = zip(edges[:-1], edges[1:])
    else:
        starts, ends = rolling_edges(start, end, window, step)
        bounds = zip(starts, ends)
    return [
        _aggregate_over(approximation, pieces, float(lo), float(hi), dimension)
        for lo, hi in bounds
    ]


def integral(approximation: Approximation, start: float, end: float, dimension: int = 0) -> float:
    """Integral of the approximation over ``[start, end]`` (one dimension)."""
    return range_aggregate(approximation, start, end, dimension).integral


def threshold_crossings(
    approximation: Approximation,
    threshold: float,
    start: Optional[float] = None,
    end: Optional[float] = None,
    dimension: int = 0,
) -> List[float]:
    """Times at which the approximation crosses ``threshold``.

    Only genuine sign changes are reported (touching the threshold without
    crossing does not count); crossings are clipped to the closed interval
    ``[start, end]`` when given (a crossing exactly at a boundary is kept).
    """
    t0, x0, t1, x1 = _segments_of(approximation, dimension)
    # A genuine crossing needs the endpoints strictly on opposite sides of
    # the threshold; merely touching it does not count.
    crossing_mask = (t1 != t0) & ((x0 - threshold) * (x1 - threshold) < 0.0)
    if not crossing_mask.any():
        return []
    t0c, x0c, t1c, x1c = (
        t0[crossing_mask],
        x0[crossing_mask],
        t1[crossing_mask],
        x1[crossing_mask],
    )
    # Linear interpolation of the crossing time within each piece.
    crossings = t0c + (threshold - x0c) / (x1c - x0c) * (t1c - t0c)
    if start is not None:
        crossings = crossings[crossings >= start]
    if end is not None:
        crossings = crossings[crossings <= end]
    return sorted(float(crossing) for crossing in crossings)


def resample_grid(start: float, end: float, step: float) -> np.ndarray:
    """Regular sample grid over ``[start, end]``, clipped to the range.

    Returns ``n + 1`` times where ``n = floor((end - start) / step)`` (within
    :data:`_GRID_SLACK` of the next integer counts as reaching it).  The grid
    never emits a time past ``end``: each point is ``start + index * step``
    clamped to ``end``, so when the range divides evenly the final point is
    ``end`` exactly instead of a round-off overshoot.
    """
    count = int(np.floor((end - start) / step + _GRID_SLACK))
    return np.minimum(start + np.arange(count + 1) * step, end)


def resample(
    approximation: Approximation,
    start: float,
    end: float,
    step: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the approximation on a regular grid (all dimensions).

    The grid comes from :func:`resample_grid`: sized by integer count rather
    than ``np.arange(start, end + step / 2, step)``, which overshot ``end``
    when float round-off nudged the last accumulated time below the cut-off
    (e.g. a step of 0.07 over ``[0, 0.7]`` used to emit 0.7000000000000001).

    Returns:
        ``(times, values)`` with ``values`` of shape ``(n, d)``.

    Raises:
        ValueError: If ``step`` is not positive or the range is empty.
    """
    if step <= 0.0:
        raise ValueError("step must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    times = resample_grid(start, end, step)
    return times, approximation.values_at(times)
