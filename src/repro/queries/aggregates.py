"""Analytic aggregates over piece-wise approximations.

For a piece-wise *linear* approximation the usual monitoring aggregates can
be computed exactly from the segment endpoints — no resampling needed:

* the minimum / maximum over a time range is attained at a segment endpoint
  or at a range boundary;
* the time-weighted mean is the integral of the trapezoids divided by the
  range length;
* threshold crossings are the roots of ``segment(t) = threshold``.

Piece-wise *constant* approximations are handled through the same interface
(each held value is a zero-slope segment).

Because every original data point is within ε of the approximation, the
min / max / mean computed here differ from the corresponding aggregates of
the original signal by at most ε per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.approximation.piecewise import (
    Approximation,
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)

__all__ = [
    "RangeAggregate",
    "range_aggregate",
    "window_aggregates",
    "integral",
    "threshold_crossings",
    "resample",
]


@dataclass(frozen=True)
class RangeAggregate:
    """Aggregates of one dimension of an approximation over ``[start, end]``.

    Attributes:
        start: Start of the queried time range.
        end: End of the queried time range.
        minimum: Minimum of the approximation over the range.
        maximum: Maximum of the approximation over the range.
        mean: Time-weighted mean of the approximation over the range.
        integral: Integral of the approximation over the range.
    """

    start: float
    end: float
    minimum: float
    maximum: float
    mean: float
    integral: float


def _segments_of(approximation: Approximation, dimension: int) -> List[Tuple[float, float, float, float]]:
    """Flatten an approximation into ``(t0, x0, t1, x1)`` pieces for one dimension."""
    if isinstance(approximation, PiecewiseLinearApproximation):
        return [
            (
                segment.start_time,
                float(segment.start_value[dimension]),
                segment.end_time,
                float(segment.end_value[dimension]),
            )
            for segment in approximation.segments
        ]
    if isinstance(approximation, PiecewiseConstantApproximation):
        steps = list(approximation.steps)
        pieces = []
        for index, start in enumerate(steps):
            value = float(approximation.value_at(start)[dimension])
            end = steps[index + 1] if index + 1 < len(steps) else start
            pieces.append((start, value, end, value))
        return pieces
    raise TypeError(f"unsupported approximation type: {type(approximation)!r}")


def _piece_overlap(piece, start: float, end: float):
    """Clip a piece to ``[start, end]``; return None when disjoint."""
    t0, x0, t1, x1 = piece
    lo, hi = max(t0, start), min(t1, end)
    if hi < lo:
        return None

    def value(t: float) -> float:
        if t1 == t0:
            return x0
        return x0 + (x1 - x0) * (t - t0) / (t1 - t0)

    return lo, value(lo), hi, value(hi)


def range_aggregate(
    approximation: Approximation, start: float, end: float, dimension: int = 0
) -> RangeAggregate:
    """Min / max / mean / integral of one dimension over ``[start, end]``.

    The query range is clipped to the approximation's span; times outside it
    are evaluated by extending the first/last piece (consistent with
    :meth:`Approximation.value_at`).

    Raises:
        ValueError: If ``end < start``.
    """
    if end < start:
        raise ValueError("end must not precede start")
    if end == start:
        value = float(approximation.value_at(start)[dimension])
        return RangeAggregate(start, end, value, value, value, 0.0)

    minimum = float("inf")
    maximum = float("-inf")
    total_area = 0.0
    covered = 0.0
    pieces = _segments_of(approximation, dimension)
    for piece in pieces:
        clipped = _piece_overlap(piece, start, end)
        if clipped is None:
            continue
        lo, value_lo, hi, value_hi = clipped
        minimum = min(minimum, value_lo, value_hi)
        maximum = max(maximum, value_lo, value_hi)
        total_area += 0.5 * (value_lo + value_hi) * (hi - lo)
        covered += hi - lo

    # Handle query ranges sticking out of the approximation's span: evaluate
    # the boundary values so min/max/mean stay defined.
    for boundary in (start, end):
        value = float(approximation.value_at(boundary)[dimension])
        minimum = min(minimum, value)
        maximum = max(maximum, value)
    if covered <= 0.0:
        # Entirely outside the span: treat as the boundary evaluation held
        # over the range.
        value_start = float(approximation.value_at(start)[dimension])
        value_end = float(approximation.value_at(end)[dimension])
        total_area = 0.5 * (value_start + value_end) * (end - start)
        covered = end - start

    mean = total_area / covered
    return RangeAggregate(start, end, minimum, maximum, mean, total_area)


def window_aggregates(
    approximation: Approximation,
    start: float,
    end: float,
    window: float,
    dimension: int = 0,
) -> List[RangeAggregate]:
    """Tumbling-window aggregates covering ``[start, end]``.

    Args:
        approximation: The compressed signal.
        start: Start of the first window.
        end: End of the query range (the last window may be shorter).
        window: Window length (must be positive).
        dimension: Signal dimension to aggregate.
    """
    if window <= 0.0:
        raise ValueError("window must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    results = []
    cursor = start
    while cursor < end:
        upper = min(cursor + window, end)
        results.append(range_aggregate(approximation, cursor, upper, dimension))
        cursor = upper
    return results


def integral(approximation: Approximation, start: float, end: float, dimension: int = 0) -> float:
    """Integral of the approximation over ``[start, end]`` (one dimension)."""
    return range_aggregate(approximation, start, end, dimension).integral


def threshold_crossings(
    approximation: Approximation,
    threshold: float,
    start: float = None,
    end: float = None,
    dimension: int = 0,
) -> List[float]:
    """Times at which the approximation crosses ``threshold``.

    Only genuine sign changes are reported (touching the threshold without
    crossing does not count); crossings are clipped to ``[start, end]`` when
    given.
    """
    crossings: List[float] = []
    for t0, x0, t1, x1 in _segments_of(approximation, dimension):
        if t1 == t0:
            continue
        # A genuine crossing needs the endpoints strictly on opposite sides of
        # the threshold; merely touching it does not count.
        if (x0 - threshold) * (x1 - threshold) >= 0.0:
            continue
        # Linear interpolation of the crossing time within the piece.
        fraction = (threshold - x0) / (x1 - x0)
        crossing = t0 + fraction * (t1 - t0)
        if start is not None and crossing < start:
            continue
        if end is not None and crossing > end:
            continue
        crossings.append(float(crossing))
    return sorted(crossings)


def resample(
    approximation: Approximation,
    start: float,
    end: float,
    step: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the approximation on a regular grid (all dimensions).

    Returns:
        ``(times, values)`` with ``values`` of shape ``(n, d)``.

    Raises:
        ValueError: If ``step`` is not positive or the range is empty.
    """
    if step <= 0.0:
        raise ValueError("step must be positive")
    if end < start:
        raise ValueError("end must not precede start")
    times = np.arange(start, end + step / 2.0, step)
    return times, approximation.values_at(times)
