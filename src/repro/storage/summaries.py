"""Per-block pre-aggregated summaries of the record log.

The block index already lets a range read prune the *decode* to the
overlapping blocks; the summaries defined here let aggregate queries skip
the decode entirely for blocks fully inside the query range.  Each summary
pre-aggregates the *pieces* spanned by consecutive records within one block
(never the bridge piece crossing into the neighbouring block — the stored
endpoint records let the query planner form those at query time):

* ``(SEGMENT_START | SEGMENT_END, SEGMENT_END)`` — a linear piece between
  the two recordings (the swing/slide segment, connected or not);
* ``(SEGMENT_END, SEGMENT_START)`` — a gap, no piece;
* ``(SEGMENT_START, SEGMENT_START)`` — a zero-length piece at the earlier
  recording (a single transmitted point);
* ``(HOLD, HOLD)`` — a constant piece holding the earlier value.

This mirrors :func:`repro.approximation.reconstruct.segments_from_recordings`
exactly, so integrals/extrema composed from summaries agree with the decode
path up to float summation order.

A summary is a JSON-safe dict stored as the fifth element of the block's
catalog entry::

    {"covered": float,          # total piece duration inside the block
     "integral": [d floats],    # per-dimension trapezoid integral
     "min": [d floats] | None,  # per-dimension piece minima (None: no pieces)
     "max": [d floats] | None,
     "span": [t0, t1] | None,   # first piece start / last piece end
     "first": [kind, v...],     # the block's first record (time = min_time)
     "last": [kind, v...]}      # the block's last record (time = max_time)

``first``/``last`` carry the boundary records so bridge pieces between any
two adjacent blocks are computable without touching the log.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "START_CODE",
    "END_CODE",
    "HOLD_CODE",
    "PYRAMID_BASE",
    "pair_pieces",
    "summarize_block",
    "extend_summary",
    "block_summary",
    "bridge_piece",
    "block_cells",
    "blocks_summarized",
    "merge_cells",
    "build_pyramid",
    "update_pyramid",
]

#: Wire codes (see ``repro.storage.backends.base.RECORD_KINDS``).
START_CODE, END_CODE, HOLD_CODE = 0, 1, 2

Pieces = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def pair_pieces(kinds: np.ndarray, times: np.ndarray, values: np.ndarray) -> Pieces:
    """Material pieces between consecutive records, in record order.

    Returns ``(t0, x0, t1, x1)`` endpoint arrays with ``x0``/``x1`` of shape
    ``(pieces, d)``.  Gap pairs (``END`` followed by ``START``) contribute
    nothing; the stream-final zero-length piece of a trailing ``START`` /
    ``HOLD`` is the caller's concern (it depends on records not yet seen).
    """
    count = times.shape[0]
    d = values.shape[1] if values.ndim == 2 else 1
    if count < 2:
        return (
            np.empty(0),
            np.empty((0, d)),
            np.empty(0),
            np.empty((0, d)),
        )
    values = values.reshape(count, d)
    k0, k1 = kinds[:-1], kinds[1:]
    linear = (k1 == END_CODE) & (k0 != HOLD_CODE)
    zero = (k0 == START_CODE) & (k1 == START_CODE)
    hold = (k0 == HOLD_CODE) & (k1 == HOLD_CODE)
    keep = linear | zero | hold
    t0 = times[:-1][keep]
    t1 = np.where(zero, times[:-1], times[1:])[keep]
    x0 = values[:-1][keep]
    x1 = np.where(linear[:, None], values[1:], values[:-1])[keep]
    return t0, x0, t1, x1


def _record_field(kinds: np.ndarray, values: np.ndarray, index: int) -> List[float]:
    return [int(kinds[index])] + [float(v) for v in np.atleast_1d(values[index])]


def _accumulate(summary: dict, pieces: Pieces) -> None:
    """Fold piece aggregates into ``summary`` in place."""
    t0, x0, t1, x1 = pieces
    if t0.shape[0] == 0:
        return
    widths = t1 - t0
    integral = (0.5 * (x0 + x1) * widths[:, None]).sum(axis=0)
    minimum = np.minimum(x0, x1).min(axis=0)
    maximum = np.maximum(x0, x1).max(axis=0)
    summary["covered"] = float(summary["covered"] + widths.sum())
    summary["integral"] = [
        float(a + b) for a, b in zip(summary["integral"], integral)
    ]
    if summary["min"] is None:
        summary["min"] = [float(v) for v in minimum]
        summary["max"] = [float(v) for v in maximum]
        summary["span"] = [float(t0[0]), float(t1[-1])]
    else:
        summary["min"] = [float(min(a, b)) for a, b in zip(summary["min"], minimum)]
        summary["max"] = [float(max(a, b)) for a, b in zip(summary["max"], maximum)]
        summary["span"] = [summary["span"][0], float(t1[-1])]


def summarize_block(kinds: np.ndarray, times: np.ndarray, values: np.ndarray) -> dict:
    """Build the summary of one block from its decoded records."""
    count = times.shape[0]
    d = values.shape[1] if values.ndim == 2 else 1
    values = np.asarray(values, dtype=float).reshape(count, d)
    summary = {
        "covered": 0.0,
        "integral": [0.0] * d,
        "min": None,
        "max": None,
        "span": None,
        "first": _record_field(kinds, values, 0),
        "last": _record_field(kinds, values, count - 1),
    }
    _accumulate(summary, pair_pieces(kinds, times, values))
    return summary


def extend_summary(
    summary: dict,
    previous_time: float,
    kinds: np.ndarray,
    times: np.ndarray,
    values: np.ndarray,
) -> None:
    """Extend a block's summary with records appended to that block.

    ``previous_time`` is the block's ``max_time`` before the append; the
    stored ``last`` record supplies the left neighbour of the first new
    pair, so incremental maintenance sees every intra-block pair exactly
    once.
    """
    count = times.shape[0]
    if count == 0:
        return
    d = len(summary["integral"])
    values = np.asarray(values, dtype=float).reshape(count, d)
    last = summary["last"]
    joined_kinds = np.concatenate([[int(last[0])], np.asarray(kinds, dtype=int)])
    joined_times = np.concatenate([[float(previous_time)], times])
    joined_values = np.vstack([np.asarray(last[1:], dtype=float), values])
    _accumulate(summary, pair_pieces(joined_kinds, joined_times, joined_values))
    summary["last"] = _record_field(kinds, values, count - 1)


def block_summary(block: list) -> Optional[dict]:
    """The summary of a catalog block entry (``None`` when not built yet)."""
    return block[4] if len(block) > 4 else None


# --------------------------------------------------------------------------- #
# Multi-resolution zoom pyramid
# --------------------------------------------------------------------------- #
# A pyramid cell is ``[min_time, max_time, summary]`` — the same summary dict
# as a block's, covering a contiguous run of children.  Level 0 is the block
# index itself; each higher level folds :data:`PYRAMID_BASE` consecutive cells
# of the level below (cell ``c`` covers children ``[c * base, (c + 1) * base)``
# — pure index arithmetic, so no child range needs to be stored).  Unlike the
# per-block summaries, a parent cell folds the *bridge pieces between its
# children* too, so its aggregates are exact over its whole span and a zoom
# query can answer from one cell without touching the children.

#: Fan-out between consecutive pyramid levels.
PYRAMID_BASE = 8


def bridge_piece(
    left_record: List[float],
    left_time: float,
    right_record: List[float],
    right_time: float,
) -> Optional[Tuple[float, np.ndarray, float, np.ndarray]]:
    """The material piece between two adjacent boundary records, if any.

    ``left_record``/``right_record`` are summary ``last``/``first`` fields
    (``[kind, v...]``).  The pairing rules mirror :func:`pair_pieces` (and the
    planner's bridge composition): ``*→END`` is the linear segment piece,
    ``START→START`` a zero-length piece at the left record, ``HOLD→HOLD`` the
    held constant, anything else a gap (``None``).
    """
    left_kind, right_kind = int(left_record[0]), int(right_record[0])
    left_values = np.asarray(left_record[1:], dtype=float)
    if right_kind == END_CODE and left_kind != HOLD_CODE:
        return (
            float(left_time),
            left_values,
            float(right_time),
            np.asarray(right_record[1:], dtype=float),
        )
    if left_kind == START_CODE and right_kind == START_CODE:
        return float(left_time), left_values, float(left_time), left_values
    if left_kind == HOLD_CODE and right_kind == HOLD_CODE:
        return float(left_time), left_values, float(right_time), left_values
    return None


def _fold_summary(merged: dict, summary: dict) -> None:
    """Fold a child summary's pre-aggregated values into ``merged`` in place."""
    merged["covered"] = float(merged["covered"] + summary["covered"])
    merged["integral"] = [
        float(a + b) for a, b in zip(merged["integral"], summary["integral"])
    ]
    if summary["span"] is None:
        return
    if merged["min"] is None:
        merged["min"] = list(summary["min"])
        merged["max"] = list(summary["max"])
        merged["span"] = list(summary["span"])
    else:
        merged["min"] = [float(min(a, b)) for a, b in zip(merged["min"], summary["min"])]
        merged["max"] = [float(max(a, b)) for a, b in zip(merged["max"], summary["max"])]
        merged["span"] = [merged["span"][0], float(summary["span"][1])]


def merge_cells(cells: List[list]) -> list:
    """Fold consecutive child cells into one parent cell.

    Children are folded left to right, with the bridge piece between each
    consecutive pair accumulated in between — a deterministic order, so an
    incrementally maintained pyramid is bit-identical to a cold rebuild.
    """
    if not cells:
        raise ValueError("cannot merge zero cells")
    d = len(cells[0][2]["integral"])
    merged = {
        "covered": 0.0,
        "integral": [0.0] * d,
        "min": None,
        "max": None,
        "span": None,
        "first": list(cells[0][2]["first"]),
        "last": list(cells[-1][2]["last"]),
    }
    previous: Optional[list] = None
    for cell in cells:
        t_lo, t_hi, summary = cell[0], cell[1], cell[2]
        if previous is not None:
            piece = bridge_piece(previous[2]["last"], previous[1], summary["first"], t_lo)
            if piece is not None:
                t0, x0, t1, x1 = piece
                _accumulate(
                    merged,
                    (
                        np.array([t0]),
                        x0.reshape(1, d),
                        np.array([t1]),
                        x1.reshape(1, d),
                    ),
                )
        _fold_summary(merged, summary)
        previous = cell
    return [float(cells[0][0]), float(cells[-1][1]), merged]


def block_cells(blocks: List[list]) -> List[list]:
    """Level-0 pyramid cells (``[min_time, max_time, summary]``) of an index."""
    return [[block[2], block[3], block[4]] for block in blocks]


def blocks_summarized(blocks: List[list]) -> bool:
    """Whether every block of an index carries a summary."""
    return all(block_summary(block) is not None for block in blocks)


def build_pyramid(cells: List[list], base: int = PYRAMID_BASE) -> List[List[list]]:
    """Build all pyramid levels above the given level-0 cells.

    Levels are emitted finest first; each has ``ceil(previous / base)`` cells.
    Building stops once a level has a single cell (an empty or single-cell
    level 0 yields no levels at all).
    """
    if base < 2:
        raise ValueError("pyramid base must be at least 2")
    levels: List[List[list]] = []
    previous = cells
    while len(previous) > 1:
        level = [
            merge_cells(previous[lo : lo + base]) for lo in range(0, len(previous), base)
        ]
        levels.append(level)
        previous = level
    return levels


def update_pyramid(
    levels: List[List[list]],
    cells: List[list],
    first_changed: int,
    base: int = PYRAMID_BASE,
) -> List[List[list]]:
    """Refresh a pyramid in place after level-0 cells changed.

    Every cell whose child range reaches index ``first_changed`` or beyond is
    recomputed from its children from scratch (same fold as
    :func:`build_pyramid`, so the result is bit-identical to a cold rebuild);
    cells strictly before it are left untouched.  Handles growth and
    shrinkage of the underlying cell list alike.
    """
    if base < 2:
        raise ValueError("pyramid base must be at least 2")
    previous = cells
    changed = max(int(first_changed), 0)
    depth = 0
    while len(previous) > 1:
        changed //= base
        if depth == len(levels):
            levels.append([])
        level = levels[depth]
        # A stale (shorter) level just gets more of itself recomputed.
        changed = min(changed, len(level))
        del level[changed:]
        for lo in range(changed * base, len(previous), base):
            level.append(merge_cells(previous[lo : lo + base]))
        previous = level
        depth += 1
    del levels[depth:]
    return levels
