"""Columnar mmap-readable log backend.

Each index block is laid out as contiguous per-column arrays instead of
interleaved row records::

    +--------+-----------------+------------+-----+--------------+-----+
    | header | times  f8 × n   | kinds u1×n | pad | value col 0  | ... |
    | 32 B   | 8n bytes        | n bytes    |     | f8 × n       |     |
    +--------+-----------------+------------+-----+--------------+-----+

The 32-byte header (magic, record count, dimensions, min/max time) makes
the log self-describing, so recovery can walk an unindexed tail without
the catalog.  ``pad`` zero-fills to the next 8-byte boundary; every block
starts 8-aligned because its total size is a multiple of 8, so each column
is an aligned, contiguous ``float64`` run.  Column offsets are derived
arithmetically from the catalog block entry ``[byte_offset, record_count,
min_time, max_time, summary]`` — the entry shape is identical to the
block-log backend's, so catalogs differ only in the byte layout they
describe.

Reads open the log through one cached :class:`np.memmap` per path and
return **zero-copy views** wherever the requested span lives in a single
block: no per-record decode, no row→column transpose, and with ``dims=``
only the touched value columns are ever faulted in.  Multi-block reads
concatenate the per-block column views (one copy, still no row decode).

Mutation safety for live views (the memmap-handle hygiene contract):

* Appends only ever extend the file — existing offsets never move, so
  views handed out earlier stay valid.
* Every shrinking or rewriting mutation (``truncate``, ``compact``)
  builds a staging file and swaps it in with :func:`os.replace`.  Arrays
  returned from earlier reads keep their ``mmap`` (and thus the *old*
  inode) alive through the numpy ``base`` chain, so they remain readable
  after the swap; the next read stats the path, sees a new inode, and
  remaps.
* ``recover`` may truncate in place, but only bytes past the indexed
  extent (torn garbage no view can reference).

Unlike the block-log backend, appends never top up a partial trailing
block — every batch becomes fresh immutable blocks (the Parquet
row-group discipline).  That keeps appends strictly append-only (a crash
mid-append can tear only the new tail, never a block a reader holds) at
the cost of fragmentation under tiny batches, which ``compact`` repairs.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.testing import faults
from repro.storage.backends.base import (
    DimsLike,
    StorageBackend,
    block_window,
    range_bounds,
    register_backend,
    resolve_dims,
)
from repro.storage.backends.block_log import DEFAULT_BLOCK_RECORDS
from repro.storage.summaries import block_summary, summarize_block

__all__ = ["ColumnarBackend"]

#: Block header: magic, record count (u4), dimensions (u4), 4 pad bytes,
#: min_time, max_time.  32 bytes, so headers never disturb 8-alignment.
_HEADER = struct.Struct("<4sII4xdd")
_MAGIC = b"RCB1"
_HEADER_BYTES = _HEADER.size
assert _HEADER_BYTES == 32

#: Bytes copied per loop iteration when staging a rewrite.
_COPY_CHUNK = 4 << 20


def _payload_bytes(count: int, dimensions: int) -> int:
    """Bytes of column data after the header: times + kinds + pad + values."""
    pad = (-count) % 8
    return 8 * count + count + pad + 8 * count * dimensions


def _block_bytes(count: int, dimensions: int) -> int:
    """Total on-disk bytes of one block (always a multiple of 8)."""
    return _HEADER_BYTES + _payload_bytes(count, dimensions)


def _encode_block(kinds: np.ndarray, times: np.ndarray, values: np.ndarray) -> bytes:
    """Serialize one block column by column — no row materialization."""
    count = times.shape[0]
    dimensions = values.shape[1]
    parts = [
        _HEADER.pack(_MAGIC, count, dimensions, float(times[0]), float(times[-1])),
        np.ascontiguousarray(times, dtype="<f8").tobytes(),
        np.ascontiguousarray(kinds, dtype=np.uint8).tobytes(),
        b"\x00" * ((-count) % 8),
    ]
    for column in range(dimensions):
        parts.append(np.ascontiguousarray(values[:, column], dtype="<f8").tobytes())
    return b"".join(parts)


@register_backend
class ColumnarBackend(StorageBackend):
    """Per-block columnar layout with zero-copy memmap reads.

    Args:
        block_records: Maximum records per block.
    """

    name = "columnar"
    version = 1

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS) -> None:
        if block_records < 1:
            raise ValueError(f"block_records must be positive, got {block_records}")
        self.block_records = block_records
        # Path -> (inode, size, map).  Revalidated by stat on every read, so
        # appends (same inode, larger size) and atomic rewrites (new inode)
        # both trigger a remap without explicit invalidation.
        self._maps: Dict[Path, Tuple[int, int, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        path: Path,
        entry,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        count = times.shape[0]
        if count == 0:
            return
        values = values.reshape(count, entry.dimensions)
        offset = path.stat().st_size if path.exists() else 0
        parts: List[bytes] = []
        taken = 0
        with open(path, "ab") as log:
            while taken < count:
                stop = min(taken + self.block_records, count)
                block_kinds = kinds[taken:stop]
                block_times = times[taken:stop]
                block_values = values[taken:stop]
                parts.append(_encode_block(block_kinds, block_times, block_values))
                entry.blocks.append(
                    [
                        offset,
                        stop - taken,
                        float(block_times[0]),
                        float(block_times[-1]),
                        summarize_block(block_kinds, block_times, block_values),
                    ]
                )
                offset += len(parts[-1])
                taken = stop
            faults.write(log, b"".join(parts), path=path)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _mmap(self, path: Path) -> Optional[np.ndarray]:
        """Cached read-only map of ``path``, revalidated against stat.

        Returns a plain ``ndarray`` view of the underlying ``np.memmap``
        (kept alive in the cache and reachable through ``.base``): slicing a
        plain ndarray skips the memmap subclass's ``__array_finalize__``,
        which would otherwise dominate multi-block gathers.
        """
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            self._maps.pop(path, None)
            return None
        if stat.st_size == 0:
            self._maps.pop(path, None)
            return None
        cached = self._maps.get(path)
        if cached is not None and cached[0] == stat.st_ino and cached[1] == stat.st_size:
            return cached[2]
        flat = np.memmap(path, dtype=np.uint8, mode="r").view(np.ndarray)
        self._maps[path] = (stat.st_ino, stat.st_size, flat)
        return flat

    def _block_columns(
        self,
        mm: np.ndarray,
        offset: int,
        count: int,
        dimensions: int,
        sel: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
        """Views of one block's kinds, times, and selected value columns."""
        times_at = offset + _HEADER_BYTES
        kinds_at = times_at + 8 * count
        cols_at = kinds_at + count + ((-count) % 8)
        times = mm[times_at : times_at + 8 * count].view("<f8")
        kinds = mm[kinds_at : kinds_at + count]
        columns = sel if sel is not None else range(dimensions)
        cols = [
            mm[cols_at + 8 * count * j : cols_at + 8 * count * (j + 1)].view("<f8")
            for j in columns
        ]
        return kinds, times, cols

    def _empty(self, dimensions: int, sel: Optional[Tuple[int, ...]]):
        width = dimensions if sel is None else len(sel)
        return (
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=float),
            np.empty((0, width), dtype=float),
        )

    def _gather(
        self,
        path: Path,
        entry,
        lo: int,
        hi: int,
        sel: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
        """Kinds, times, and selected columns of blocks ``[lo, hi)``.

        Single block: pure memmap views.  Multiple blocks: one concatenate
        per column (still no row decode).
        """
        blocks = entry.blocks[lo:hi]
        mm = self._mmap(path)
        if mm is None:
            raise FileNotFoundError(f"columnar log missing or empty: {path}")
        if len(blocks) == 1:
            block = blocks[0]
            return self._block_columns(mm, block[0], block[1], entry.dimensions, sel)
        per_block = [
            self._block_columns(mm, block[0], block[1], entry.dimensions, sel)
            for block in blocks
        ]
        kinds = np.concatenate([part[0] for part in per_block])
        times = np.concatenate([part[1] for part in per_block])
        width = len(per_block[0][2])
        cols = [
            np.concatenate([part[2][j] for part in per_block]) for j in range(width)
        ]
        return kinds, times, cols

    @staticmethod
    def _stack(cols: List[np.ndarray], length: int) -> np.ndarray:
        """Assemble selected columns into an ``(n, k)`` value matrix.

        A single column reshapes to a view; zero columns give an empty
        matrix; multiple columns pay one stack copy.
        """
        if len(cols) == 1:
            return cols[0].reshape(-1, 1)
        if not cols:
            return np.empty((length, 0), dtype=float)
        return np.stack(cols, axis=1)

    def read_arrays(
        self,
        path: Path,
        entry,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        sel = resolve_dims(dims, entry.dimensions)
        blocks = entry.blocks
        if not blocks:
            return self._empty(entry.dimensions, sel)
        lo, hi = block_window(blocks, start, end)
        kinds, times, cols = self._gather(path, entry, lo, hi, sel)
        a, b = range_bounds(times, start, end)
        if a != 0 or b != times.shape[0]:
            kinds = kinds[a:b]
            times = times[a:b]
            cols = [col[a:b] for col in cols]
        return kinds, times, self._stack(cols, times.shape[0])

    def read_blocks(
        self, path: Path, entry, lo: int, hi: int, dims: DimsLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        sel = resolve_dims(dims, entry.dimensions)
        lo = max(lo, 0)
        hi = min(hi, len(entry.blocks))
        if hi <= lo:
            return self._empty(entry.dimensions, sel)
        kinds, times, cols = self._gather(path, entry, lo, hi, sel)
        return kinds, times, self._stack(cols, times.shape[0])

    def ensure_summaries(self, path: Path, entry) -> bool:
        """Backfill summaries on blocks that lost theirs (robustness only —
        this backend writes a summary with every block)."""
        changed = False
        for index, block in enumerate(entry.blocks):
            if block_summary(block) is not None:
                continue
            kinds, times, values = self.read_blocks(path, entry, index, index + 1)
            summary = summarize_block(kinds, times, values)
            if len(block) > 4:
                block[4] = summary
            else:
                block.append(summary)
            changed = True
        return changed

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def truncate(self, path: Path, entry, keep_records: int) -> None:
        """Keep the first ``keep_records`` records, via atomic rewrite.

        Whole kept blocks are copied verbatim; a straddled block is
        re-encoded from its kept prefix with a fresh summary.  The staged
        file replaces the log so live mmap views keep their old inode.
        """
        kept: List[list] = []
        remaining = keep_records
        boundary: Optional[Tuple[int, int]] = None
        for index, block in enumerate(entry.blocks):
            if remaining <= 0:
                break
            if block[1] <= remaining:
                kept.append(list(block))
                remaining -= block[1]
            else:
                boundary = (index, remaining)
                remaining = 0
        if not path.exists():
            entry.blocks = kept
            return
        staging = path.with_name(path.name + ".staging")
        out_offset = 0
        with open(path, "rb") as log, open(staging, "wb") as out:
            for block in kept:
                size = _block_bytes(block[1], entry.dimensions)
                self._copy_range(log, out, block[0], size, path=staging)
                block[0] = out_offset
                out_offset += size
            if boundary is not None:
                index, keep = boundary
                kinds, times, cols = self._gather(path, entry, index, index + 1, None)
                values = self._stack(cols, times.shape[0])
                kinds = np.array(kinds[:keep])
                times = np.array(times[:keep], dtype=float)
                values = np.array(values[:keep], dtype=float)
                faults.write(out, _encode_block(kinds, times, values), path=staging)
                kept.append(
                    [
                        out_offset,
                        keep,
                        float(times[0]),
                        float(times[-1]),
                        summarize_block(kinds, times, values),
                    ]
                )
            faults.fsync(out, path=staging)
        faults.replace(staging, path)
        faults.fsync_dir(path.parent)
        self._maps.pop(path, None)
        entry.blocks = kept

    def compact(self, path: Path, entry) -> bool:
        """Merge fragmented blocks into dense ``block_records``-sized ones.

        Returns ``False`` when the log is already packed and every block is
        full (bar the trailing one).  Otherwise rewrites the whole log into
        a staging file and swaps it in atomically, so live reads keep the
        old inode (see the module docstring).
        """
        blocks = entry.blocks
        if not blocks:
            return False
        if self._is_packed(blocks, entry.dimensions) and self._blocks_sized(blocks):
            return False
        staging = path.with_name(path.name + ".staging")
        rebuilt: List[list] = []
        out_offset = 0
        pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pending_count = 0

        def flush_full(out, *, final: bool) -> None:
            nonlocal pending, pending_count, out_offset
            while pending_count >= self.block_records or (final and pending_count):
                span = min(self.block_records, pending_count)
                kinds = np.concatenate([part[0] for part in pending])[:span]
                times = np.concatenate([part[1] for part in pending])[:span]
                values = np.concatenate([part[2] for part in pending])[:span]
                leftover_k = np.concatenate([part[0] for part in pending])[span:]
                leftover_t = np.concatenate([part[1] for part in pending])[span:]
                leftover_v = np.concatenate([part[2] for part in pending])[span:]
                payload = _encode_block(kinds, times, values)
                faults.write(out, payload, path=staging)
                rebuilt.append(
                    [
                        out_offset,
                        span,
                        float(times[0]),
                        float(times[-1]),
                        summarize_block(kinds, times, values),
                    ]
                )
                out_offset += len(payload)
                pending = (
                    [(leftover_k, leftover_t, leftover_v)] if leftover_k.size else []
                )
                pending_count -= span

        with open(staging, "wb") as out:
            for index in range(len(blocks)):
                kinds, times, cols = self._gather(path, entry, index, index + 1, None)
                values = self._stack(cols, times.shape[0])
                pending.append(
                    (np.array(kinds), np.array(times, dtype=float), np.array(values))
                )
                pending_count += kinds.shape[0]
                flush_full(out, final=False)
            flush_full(out, final=True)
            faults.fsync(out, path=staging)
        faults.replace(staging, path)
        faults.fsync_dir(path.parent)
        self._maps.pop(path, None)
        entry.blocks = rebuilt
        return True

    def _is_packed(self, blocks: List[list], dimensions: int) -> bool:
        """Whether the indexed blocks form one contiguous run from offset 0."""
        offset = 0
        for block in blocks:
            if block[0] != offset:
                return False
            offset += _block_bytes(block[1], dimensions)
        return True

    def _blocks_sized(self, blocks: List[list]) -> bool:
        """Whether every block but the trailing one is full."""
        for index, block in enumerate(blocks):
            if index == len(blocks) - 1:
                if block[1] > self.block_records:
                    return False
            elif block[1] != self.block_records:
                return False
        return True

    @staticmethod
    def _copy_range(src, dst, offset: int, size: int, path: Optional[Path] = None) -> None:
        src.seek(offset)
        remaining = size
        while remaining:
            chunk = src.read(min(_COPY_CHUNK, remaining))
            if not chunk:
                raise IOError("columnar log shorter than its index")
            faults.write(dst, chunk, path=path)
            remaining -= len(chunk)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def block_extent(self, entry, block: list) -> int:
        return block[0] + _block_bytes(block[1], entry.dimensions)

    def recover(self, path: Path, entry) -> bool:
        """Reconcile the catalog index with the log bytes on disk.

        Keeps the longest catalog prefix whose blocks sit contiguously from
        offset 0 and fully on disk, walks any unindexed tail through the
        self-describing block headers (re-deriving index entries and
        summaries), and truncates torn trailing bytes in place — they are
        past the indexed extent, so no live view can reference them.  A
        block torn mid-write is dropped whole: columnar granularity is the
        block, not the record.
        """
        on_disk = path.stat().st_size if path.exists() else 0
        changed = False
        kept: List[list] = []
        extent = 0
        for block in entry.blocks:
            size = _block_bytes(block[1], entry.dimensions)
            if (
                block[0] != extent
                or extent + size > on_disk
                or not self._header_matches(path, block, entry.dimensions)
            ):
                changed = True
                break
            kept.append(block)
            extent += size
        if len(kept) != len(entry.blocks):
            entry.blocks = kept
            changed = True
        # Walk the unindexed tail through block headers.
        while extent + _HEADER_BYTES <= on_disk:
            with open(path, "rb") as log:
                log.seek(extent)
                header = log.read(_HEADER_BYTES)
            magic, count, dimensions, min_time, max_time = _HEADER.unpack(header)
            if (
                magic != _MAGIC
                or dimensions != entry.dimensions
                or count < 1
                or extent + _block_bytes(count, dimensions) > on_disk
            ):
                break
            entry.blocks.append([extent, count, min_time, max_time, None])
            kinds, times, values = self.read_blocks(
                path, entry, len(entry.blocks) - 1, len(entry.blocks)
            )
            entry.blocks[-1][2] = float(times[0])
            entry.blocks[-1][3] = float(times[-1])
            entry.blocks[-1][4] = summarize_block(kinds, times, values)
            extent += _block_bytes(count, entry.dimensions)
            changed = True
        if extent < on_disk:
            with open(path, "rb+") as log:
                faults.truncate(log, extent, path=path)
            self._maps.pop(path, None)
            changed = True
        if entry.refresh_from_blocks():
            changed = True
        return changed

    @staticmethod
    def _header_matches(path: Path, block: list, dimensions: int) -> bool:
        """Whether the on-disk header at a catalog block's offset agrees.

        A catalog index can outlive mid-file corruption (the write-ahead
        journal preserves it across crashes), so the prefix scan verifies
        each indexed block's self-describing header instead of trusting
        offsets alone.
        """
        with open(path, "rb") as log:
            log.seek(block[0])
            header = log.read(_HEADER_BYTES)
        if len(header) != _HEADER_BYTES:
            return False
        magic, count, dims, _, _ = _HEADER.unpack(header)
        return magic == _MAGIC and count == block[1] and dims == dimensions
