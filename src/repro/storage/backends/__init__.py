"""Pluggable byte-level backends for the segment store.

* :mod:`~repro.storage.backends.base` — the :class:`StorageBackend`
  interface, the shared record wire format, and the backend registry.
* :mod:`~repro.storage.backends.block_log` — the default
  :class:`BlockLogBackend`: append-only logs with a per-block time index,
  binary-search range pruning and vectorized ``np.frombuffer`` decode.
* :mod:`~repro.storage.backends.columnar` — :class:`ColumnarBackend`:
  per-block column arrays read zero-copy through ``np.memmap``, with
  column-pruned (``dims=``) decodes for aggregate queries.
"""

from repro.storage.backends.base import (
    KIND_BY_CODE,
    RECORD_KINDS,
    DimsLike,
    StorageBackend,
    available_backends,
    get_backend,
    range_indices,
    record_dtype,
    record_size,
    register_backend,
)
from repro.storage.backends.block_log import DEFAULT_BLOCK_RECORDS, BlockLogBackend
from repro.storage.backends.columnar import ColumnarBackend

__all__ = [
    "RECORD_KINDS",
    "KIND_BY_CODE",
    "DimsLike",
    "record_dtype",
    "record_size",
    "range_indices",
    "StorageBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "BlockLogBackend",
    "ColumnarBackend",
    "DEFAULT_BLOCK_RECORDS",
]
