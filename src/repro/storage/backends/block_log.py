"""Block-indexed append-only log backend.

The log keeps the seed's packed record format but the catalog additionally
holds a *block index* per stream: a list of ``[byte_offset, record_count,
min_time, max_time, summary]`` entries, one per block of at most
``block_records`` consecutive records.  Because recordings are appended in
time order, blocks partition the log into non-overlapping time spans, so a
range read can

* binary-search the block bounds to find the overlapping blocks,
* read exactly that contiguous byte span from the file, and
* decode it in one shot with :func:`np.frombuffer` and a structured dtype

instead of decoding the whole log with a per-record ``struct.unpack`` loop.

The ``summary`` element pre-aggregates the pieces spanned by the block's
records (see :mod:`repro.storage.summaries`) so aggregate queries compose
fully-covered blocks without decoding them; it is maintained incrementally
on append/compact/truncate and backfilled lazily (``ensure_summaries``) for
indexes written by earlier versions, whose blocks load with ``None`` in its
place.

The backend also repairs the index on open: seed-era logs with no block
index are scanned once and indexed, appends whose catalog update was lost
are re-indexed from the log tail, and a log truncated mid-record by a crash
is clamped to the last complete record.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.testing import faults
from repro.storage.backends.base import (
    DimsLike,
    StorageBackend,
    block_window,
    range_indices,
    record_dtype,
    record_size,
    register_backend,
    resolve_dims,
)
from repro.storage.summaries import block_summary, extend_summary, summarize_block

__all__ = ["BlockLogBackend", "DEFAULT_BLOCK_RECORDS"]

#: Default records per index block.  Small enough that a pruned range read
#: decodes only a sliver of a large log, large enough that the per-stream
#: index stays tiny (a 50k-recording stream needs ~100 entries).
DEFAULT_BLOCK_RECORDS = 512


@register_backend
class BlockLogBackend(StorageBackend):
    """Append-only log with a per-block time index and vectorized decode.

    Args:
        block_records: Maximum records per index block.
    """

    name = "block-log"

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS) -> None:
        if block_records < 1:
            raise ValueError(f"block_records must be positive, got {block_records}")
        self.block_records = block_records

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        path: Path,
        entry,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        count = times.shape[0]
        if count == 0:
            return
        records = np.empty(count, dtype=record_dtype(entry.dimensions))
        records["kind"] = kinds
        records["time"] = times
        records["values"] = values.reshape(count, entry.dimensions)
        offset = path.stat().st_size if path.exists() else 0
        with open(path, "ab") as log:
            faults.write(log, records.tobytes(), path=path)
        self._extend_index(entry, offset, kinds, times, values.reshape(count, entry.dimensions))

    def _extend_index(
        self,
        entry,
        offset: int,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Grow the block index by ``times.shape[0]`` records at ``offset``."""
        size = record_size(entry.dimensions)
        blocks: List[list] = entry.blocks
        taken = 0
        total = times.shape[0]
        if blocks:
            last = blocks[-1]
            # Top up the trailing block, but only when the new bytes are
            # contiguous with it (they always are unless the index is stale).
            if last[1] < self.block_records and last[0] + last[1] * size == offset:
                taken = min(total, self.block_records - last[1])
                summary = block_summary(last)
                if summary is not None:
                    # The stored `last` record supplies the left neighbour of
                    # the first new pair; a legacy block without a summary
                    # stays unsummarized until ensure_summaries backfills it.
                    extend_summary(summary, last[3], kinds[:taken], times[:taken], values[:taken])
                last[1] += taken
                last[3] = float(times[taken - 1])
        while taken < total:
            span = min(self.block_records, total - taken)
            stop = taken + span
            blocks.append(
                [
                    offset + taken * size,
                    span,
                    float(times[taken]),
                    float(times[stop - 1]),
                    summarize_block(kinds[taken:stop], times[taken:stop], values[taken:stop]),
                ]
            )
            taken += span

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read_arrays(
        self,
        path: Path,
        entry,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        sel = resolve_dims(dims, entry.dimensions)
        dtype = record_dtype(entry.dimensions)
        blocks = entry.blocks
        if not blocks:
            width = entry.dimensions if sel is None else len(sel)
            return (
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=float),
                np.empty((0, width), dtype=float),
            )
        lo, hi = block_window(blocks, start, end)
        byte_lo = blocks[lo][0]
        byte_hi = blocks[hi - 1][0] + blocks[hi - 1][1] * dtype.itemsize
        with open(path, "rb") as log:
            log.seek(byte_lo)
            payload = log.read(byte_hi - byte_lo)
        records = np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
        times = np.array(records["time"], dtype=float)
        keep = range_indices(times, start, end)
        values = np.array(records["values"][keep], dtype=float).reshape(
            keep.shape[0], entry.dimensions
        )
        if sel is not None:
            # Row storage has no pruned decode: slice after the fact so the
            # dims contract matches the columnar backend's native projection.
            values = values[:, list(sel)]
        return np.array(records["kind"][keep]), times[keep], values

    def read_blocks(
        self, path: Path, entry, lo: int, hi: int, dims: DimsLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode index blocks ``[lo, hi)`` verbatim (no range filtering)."""
        sel = resolve_dims(dims, entry.dimensions)
        dtype = record_dtype(entry.dimensions)
        blocks = entry.blocks[max(lo, 0) : hi]
        if not blocks:
            width = entry.dimensions if sel is None else len(sel)
            return (
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=float),
                np.empty((0, width), dtype=float),
            )
        payloads = []
        with open(path, "rb") as log:
            position = None
            for block in blocks:
                if position != block[0]:
                    log.seek(block[0])
                payloads.append(log.read(block[1] * dtype.itemsize))
                position = block[0] + len(payloads[-1])
        payload = b"".join(payloads)
        records = np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
        values = np.array(records["values"], dtype=float).reshape(-1, entry.dimensions)
        if sel is not None:
            values = values[:, list(sel)]
        return (
            np.array(records["kind"]),
            np.array(records["time"], dtype=float),
            values,
        )

    def ensure_summaries(self, path: Path, entry) -> bool:
        """Backfill summaries on blocks loaded from a pre-summary catalog."""
        changed = False
        for block in entry.blocks:
            if block_summary(block) is not None:
                continue
            kinds, times, values = self._read_records(path, entry, block[0], block[1])
            summary = summarize_block(kinds, times, values)
            if len(block) > 4:
                block[4] = summary
            else:
                block.append(summary)
            changed = True
        return changed

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def truncate(self, path: Path, entry, keep_records: int) -> None:
        # Clamp the index first (it may need to read partial-block times from
        # the file), then cut the file where the kept index actually ends —
        # for a packed log that is ``keep_records * size``, and for a
        # corrupt, non-packed index it keeps every byte the index still
        # references instead of cutting into an indexed range.
        size = record_size(entry.dimensions)
        self._truncate_index(path, entry, keep_records)
        if entry.blocks:
            end = entry.blocks[-1][0] + entry.blocks[-1][1] * size
        else:
            end = 0
        if path.exists():
            with open(path, "rb+") as log:
                faults.truncate(log, end, path=path)

    def compact(self, path: Path, entry) -> bool:
        blocks = entry.blocks
        if not blocks:
            return False
        packed = self._is_packed(blocks, entry.dimensions)
        if packed and self._blocks_sized(blocks):
            return False
        dtype = record_dtype(entry.dimensions)
        if packed:
            # The log bytes are already a contiguous run of records (the
            # normal case: appends, truncation and recovery all keep them
            # packed) — only the index is fragmented, so rebuild it from the
            # record times without rewriting identical bytes.  The rebuild
            # streams the log in bounded chunks; _extend_index is
            # incremental, so memory never holds more than one chunk.
            total = sum(block[1] for block in blocks)
            entry.blocks = []
            chunk = max(self.block_records, 1) * 128
            position = 0
            with open(path, "rb") as log:
                while position < total:
                    count = min(chunk, total - position)
                    log.seek(position * dtype.itemsize)
                    payload = log.read(count * dtype.itemsize)
                    records = np.frombuffer(
                        payload, dtype=dtype, count=len(payload) // dtype.itemsize
                    )
                    self._extend_index(
                        entry,
                        position * dtype.itemsize,
                        np.array(records["kind"]),
                        np.array(records["time"], dtype=float),
                        np.array(records["values"], dtype=float).reshape(
                            -1, entry.dimensions
                        ),
                    )
                    position += count
            return True
        # Stale offsets (should not happen, but a corrupt index must not
        # survive compaction): the index is authoritative, so copy exactly
        # the byte ranges it names — block by block, never the unindexed
        # gaps between them — into a packed log and replace the file
        # atomically.  The decoded records are retained per block for the
        # reindex (which rebuilds the summaries too).
        staging = path.with_name(path.name + ".compact")
        retained: List[np.ndarray] = []
        with open(path, "rb") as log, open(staging, "wb") as out:
            for block in blocks:
                log.seek(block[0])
                payload = log.read(block[1] * dtype.itemsize)
                faults.write(out, payload, path=staging)
                retained.append(
                    np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
                )
            faults.fsync(out, path=staging)
        faults.replace(staging, path)
        faults.fsync_dir(path.parent)
        entry.blocks = []
        offset = 0
        for records in retained:
            self._extend_index(
                entry,
                offset,
                np.array(records["kind"]),
                np.array(records["time"], dtype=float),
                np.array(records["values"], dtype=float).reshape(-1, entry.dimensions),
            )
            offset += records.shape[0] * dtype.itemsize
        return True

    def _is_packed(self, blocks: List[list], dimensions: int) -> bool:
        """Whether the indexed bytes form one contiguous run from offset 0."""
        size = record_size(dimensions)
        offset = 0
        for block in blocks:
            if block[0] != offset:
                return False
            offset += block[1] * size
        return True

    def _blocks_sized(self, blocks: List[list]) -> bool:
        """Whether every block is full (the trailing one may be partial)."""
        for index, block in enumerate(blocks):
            if index == len(blocks) - 1:
                if block[1] > self.block_records:
                    return False
            elif block[1] != self.block_records:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def block_extent(self, entry, block: list) -> int:
        return block[0] + block[1] * record_size(entry.dimensions)

    def recover(self, path: Path, entry) -> bool:
        size = record_size(entry.dimensions)
        on_disk_bytes = path.stat().st_size if path.exists() else 0
        on_disk = on_disk_bytes // size
        if on_disk_bytes != on_disk * size:
            # Drop a trailing partial record (crash mid-write).  Later appends
            # go to the file end and reads decode contiguous byte spans, so
            # the garbage bytes must not stay in the middle of the log.
            with open(path, "rb+") as log:
                faults.truncate(log, on_disk * size, path=path)
        indexed = sum(block[1] for block in entry.blocks)
        changed = False
        if indexed > on_disk:
            self._truncate_index(path, entry, on_disk)
            indexed = on_disk
            changed = True
        if on_disk > indexed:
            # Catalog older than the log (lost flush, or a seed-era catalog
            # with no block index): index the unindexed tail.
            tail = self._read_records(path, entry, indexed * size, on_disk - indexed)
            self._extend_index(entry, indexed * size, *tail)
            indexed = on_disk
            changed = True
        if entry.refresh_from_blocks():
            changed = True
        return changed

    def _truncate_index(self, path: Path, entry, keep_records: int) -> None:
        """Clamp the index to the first ``keep_records`` complete records."""
        blocks: List[list] = []
        remaining = keep_records
        for block in entry.blocks:
            if remaining <= 0:
                break
            if block[1] <= remaining:
                blocks.append(list(block))
                remaining -= block[1]
            else:
                # The partial block's summary is rebuilt from the records it
                # actually keeps (pairs of dropped records must not linger).
                kinds, times, values = self._read_records(path, entry, block[0], remaining)
                blocks.append(
                    [
                        block[0],
                        remaining,
                        block[2],
                        float(times[-1]),
                        summarize_block(kinds, times, values),
                    ]
                )
                remaining = 0
        entry.blocks = blocks

    def _read_records(
        self, path: Path, entry, byte_offset: int, count: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        dtype = record_dtype(entry.dimensions)
        with open(path, "rb") as log:
            log.seek(byte_offset)
            payload = log.read(count * dtype.itemsize)
        records = np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
        return (
            np.array(records["kind"]),
            np.array(records["time"], dtype=float),
            np.array(records["values"], dtype=float).reshape(-1, entry.dimensions),
        )
