"""Block-indexed append-only log backend.

The log keeps the seed's packed record format but the catalog additionally
holds a *block index* per stream: a list of ``[byte_offset, record_count,
min_time, max_time]`` entries, one per block of at most ``block_records``
consecutive records.  Because recordings are appended in time order, blocks
partition the log into non-overlapping time spans, so a range read can

* binary-search the block bounds to find the overlapping blocks,
* read exactly that contiguous byte span from the file, and
* decode it in one shot with :func:`np.frombuffer` and a structured dtype

instead of decoding the whole log with a per-record ``struct.unpack`` loop.

The backend also repairs the index on open: seed-era logs with no block
index are scanned once and indexed, appends whose catalog update was lost
are re-indexed from the log tail, and a log truncated mid-record by a crash
is clamped to the last complete record.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.storage.backends.base import (
    StorageBackend,
    range_indices,
    record_dtype,
    record_size,
    register_backend,
)

__all__ = ["BlockLogBackend", "DEFAULT_BLOCK_RECORDS"]

#: Default records per index block.  Small enough that a pruned range read
#: decodes only a sliver of a large log, large enough that the per-stream
#: index stays tiny (a 50k-recording stream needs ~100 entries).
DEFAULT_BLOCK_RECORDS = 512


@register_backend
class BlockLogBackend(StorageBackend):
    """Append-only log with a per-block time index and vectorized decode.

    Args:
        block_records: Maximum records per index block.
    """

    name = "block-log"

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS) -> None:
        if block_records < 1:
            raise ValueError(f"block_records must be positive, got {block_records}")
        self.block_records = block_records

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        path: Path,
        entry,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        count = times.shape[0]
        if count == 0:
            return
        records = np.empty(count, dtype=record_dtype(entry.dimensions))
        records["kind"] = kinds
        records["time"] = times
        records["values"] = values.reshape(count, entry.dimensions)
        offset = path.stat().st_size if path.exists() else 0
        with open(path, "ab") as log:
            log.write(records.tobytes())
        self._extend_index(entry, offset, times)

    def _extend_index(self, entry, offset: int, times: np.ndarray) -> None:
        """Grow the block index by ``times.shape[0]`` records at ``offset``."""
        size = record_size(entry.dimensions)
        blocks: List[list] = entry.blocks
        taken = 0
        total = times.shape[0]
        if blocks:
            last = blocks[-1]
            # Top up the trailing block, but only when the new bytes are
            # contiguous with it (they always are unless the index is stale).
            if last[1] < self.block_records and last[0] + last[1] * size == offset:
                taken = min(total, self.block_records - last[1])
                last[1] += taken
                last[3] = float(times[taken - 1])
        while taken < total:
            span = min(self.block_records, total - taken)
            blocks.append(
                [
                    offset + taken * size,
                    span,
                    float(times[taken]),
                    float(times[taken + span - 1]),
                ]
            )
            taken += span

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read_arrays(
        self,
        path: Path,
        entry,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        dtype = record_dtype(entry.dimensions)
        blocks = entry.blocks
        if not blocks:
            return (
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=float),
                np.empty((0, entry.dimensions), dtype=float),
            )
        lo, hi = self._block_window(blocks, start, end)
        byte_lo = blocks[lo][0]
        byte_hi = blocks[hi - 1][0] + blocks[hi - 1][1] * dtype.itemsize
        with open(path, "rb") as log:
            log.seek(byte_lo)
            payload = log.read(byte_hi - byte_lo)
        records = np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
        times = np.array(records["time"], dtype=float)
        keep = range_indices(times, start, end)
        values = np.array(records["values"][keep], dtype=float).reshape(
            keep.shape[0], entry.dimensions
        )
        return np.array(records["kind"][keep]), times[keep], values

    def _block_window(
        self, blocks: List[list], start: Optional[float], end: Optional[float]
    ) -> Tuple[int, int]:
        """Half-open block range covering a ``[start, end]`` read.

        The window is widened by one block on each side so the context
        records (last before ``start``, first after ``end``) are included.
        """
        count = len(blocks)
        if start is None and end is None:
            return 0, count
        lo, hi = 0, count
        first_candidate = 0
        if start is not None:
            max_times = np.fromiter((block[3] for block in blocks), float, count)
            first_candidate = int(np.searchsorted(max_times, start, side="left"))
            lo = max(0, min(first_candidate, count - 1) - (1 if first_candidate > 0 else 0))
        if end is not None:
            min_times = np.fromiter((block[2] for block in blocks), float, count)
            last = int(np.searchsorted(min_times, end, side="right")) - 1
            # Keep the block after `last` for the covering record, and never
            # shrink below the block holding the first record >= start.
            hi = min(count, max(last + 2, first_candidate + 1, lo + 1))
        return lo, hi

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def truncate(self, path: Path, entry, keep_records: int) -> None:
        # Clamp the index first (it may need to read partial-block times from
        # the file), then cut the file where the kept index actually ends —
        # for a packed log that is ``keep_records * size``, and for a
        # corrupt, non-packed index it keeps every byte the index still
        # references instead of cutting into an indexed range.
        size = record_size(entry.dimensions)
        self._truncate_index(path, entry, keep_records)
        if entry.blocks:
            end = entry.blocks[-1][0] + entry.blocks[-1][1] * size
        else:
            end = 0
        if path.exists():
            with open(path, "rb+") as log:
                log.truncate(end)

    def compact(self, path: Path, entry) -> bool:
        blocks = entry.blocks
        if not blocks:
            return False
        packed = self._is_packed(blocks, entry.dimensions)
        if packed and self._blocks_sized(blocks):
            return False
        dtype = record_dtype(entry.dimensions)
        if packed:
            # The log bytes are already a contiguous run of records (the
            # normal case: appends, truncation and recovery all keep them
            # packed) — only the index is fragmented, so rebuild it from the
            # record times without rewriting identical bytes.  The rebuild
            # streams the log in bounded chunks; _extend_index is
            # incremental, so memory never holds more than one chunk.
            total = sum(block[1] for block in blocks)
            entry.blocks = []
            chunk = max(self.block_records, 1) * 128
            position = 0
            with open(path, "rb") as log:
                while position < total:
                    count = min(chunk, total - position)
                    log.seek(position * dtype.itemsize)
                    payload = log.read(count * dtype.itemsize)
                    records = np.frombuffer(
                        payload, dtype=dtype, count=len(payload) // dtype.itemsize
                    )
                    self._extend_index(
                        entry,
                        position * dtype.itemsize,
                        np.array(records["time"], dtype=float),
                    )
                    position += count
            return True
        # Stale offsets (should not happen, but a corrupt index must not
        # survive compaction): the index is authoritative, so copy exactly
        # the byte ranges it names — block by block, never the unindexed
        # gaps between them — into a packed log and replace the file
        # atomically.  Only the times (8 bytes per record) are retained for
        # the reindex, not the record payloads.
        staging = path.with_name(path.name + ".compact")
        block_times: List[np.ndarray] = []
        with open(path, "rb") as log, open(staging, "wb") as out:
            for byte_offset, count, _, _ in blocks:
                log.seek(byte_offset)
                payload = log.read(count * dtype.itemsize)
                out.write(payload)
                records = np.frombuffer(
                    payload, dtype=dtype, count=len(payload) // dtype.itemsize
                )
                block_times.append(np.array(records["time"], dtype=float))
        os.replace(staging, path)
        entry.blocks = []
        offset = 0
        for times in block_times:
            self._extend_index(entry, offset, times)
            offset += times.shape[0] * dtype.itemsize
        return True

    def _is_packed(self, blocks: List[list], dimensions: int) -> bool:
        """Whether the indexed bytes form one contiguous run from offset 0."""
        size = record_size(dimensions)
        offset = 0
        for byte_offset, count, _, _ in blocks:
            if byte_offset != offset:
                return False
            offset += count * size
        return True

    def _blocks_sized(self, blocks: List[list]) -> bool:
        """Whether every block is full (the trailing one may be partial)."""
        for index, (_, count, _, _) in enumerate(blocks):
            if index == len(blocks) - 1:
                if count > self.block_records:
                    return False
            elif count != self.block_records:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def recover(self, path: Path, entry) -> bool:
        size = record_size(entry.dimensions)
        on_disk_bytes = path.stat().st_size if path.exists() else 0
        on_disk = on_disk_bytes // size
        if on_disk_bytes != on_disk * size:
            # Drop a trailing partial record (crash mid-write).  Later appends
            # go to the file end and reads decode contiguous byte spans, so
            # the garbage bytes must not stay in the middle of the log.
            with open(path, "rb+") as log:
                log.truncate(on_disk * size)
        indexed = sum(block[1] for block in entry.blocks)
        changed = False
        if indexed > on_disk:
            self._truncate_index(path, entry, on_disk)
            indexed = on_disk
            changed = True
        if on_disk > indexed:
            # Catalog older than the log (lost flush, or a seed-era catalog
            # with no block index): index the unindexed tail.
            tail_times = self._read_times(path, entry, indexed * size, on_disk - indexed)
            self._extend_index(entry, indexed * size, tail_times)
            indexed = on_disk
            changed = True
        if entry.refresh_from_blocks():
            changed = True
        return changed

    def _truncate_index(self, path: Path, entry, keep_records: int) -> None:
        """Clamp the index to the first ``keep_records`` complete records."""
        blocks: List[list] = []
        remaining = keep_records
        for offset, count, min_time, max_time in entry.blocks:
            if remaining <= 0:
                break
            if count <= remaining:
                blocks.append([offset, count, min_time, max_time])
                remaining -= count
            else:
                partial_times = self._read_times(path, entry, offset, remaining)
                blocks.append([offset, remaining, min_time, float(partial_times[-1])])
                remaining = 0
        entry.blocks = blocks

    def _read_times(self, path: Path, entry, byte_offset: int, count: int) -> np.ndarray:
        dtype = record_dtype(entry.dimensions)
        with open(path, "rb") as log:
            log.seek(byte_offset)
            payload = log.read(count * dtype.itemsize)
        records = np.frombuffer(payload, dtype=dtype, count=len(payload) // dtype.itemsize)
        return np.array(records["time"], dtype=float)
