"""Storage backend abstraction for the segment store.

A :class:`StorageBackend` owns the on-disk layout of one stream's append-only
log: how record batches are encoded, how the per-stream block index kept in
the catalog is maintained, and how a time-range read decides which bytes to
decode.  :class:`~repro.storage.segment_store.SegmentStore` is a thin facade
over a backend — it manages the catalog (names, dimensions, counts, epsilon)
and delegates every byte-level operation here.

The record wire format is shared by all backends and unchanged from the seed
implementation: one packed ``<Bd{d}d`` record per recording (kind code, time,
``d`` value doubles), so logs written by any earlier version of the library
remain readable.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.core.types import Recording, RecordingKind

__all__ = [
    "DimsLike",
    "RECORD_KINDS",
    "KIND_BY_CODE",
    "record_dtype",
    "record_size",
    "range_indices",
    "range_bounds",
    "resolve_dims",
    "block_window",
    "StorageBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]

#: Column-projection argument: ``None`` (all value columns), one dimension
#: index, or a sequence of dimension indexes.
DimsLike = Union[None, int, Sequence[int]]

#: Wire codes of the recording kinds (stable — part of the log format).
RECORD_KINDS = {
    RecordingKind.SEGMENT_START: 0,
    RecordingKind.SEGMENT_END: 1,
    RecordingKind.HOLD: 2,
}
KIND_BY_CODE = {code: kind for kind, code in RECORD_KINDS.items()}


def record_dtype(dimensions: int) -> np.dtype:
    """Packed structured dtype of one log record (``<Bd{d}d`` equivalent)."""
    return np.dtype([("kind", "u1"), ("time", "<f8"), ("values", "<f8", (dimensions,))])


def record_size(dimensions: int) -> int:
    """Bytes per log record for a ``dimensions``-dimensional stream."""
    return 1 + 8 + 8 * dimensions


def range_bounds(
    times: np.ndarray, start: Optional[float], end: Optional[float]
) -> Tuple[int, int]:
    """Slice bounds ``[lo, hi)`` of the records a ``[start, end]`` read returns.

    The store's range semantics over a sorted time array: the last record
    before ``start`` is kept (so the approximation still covers the range
    start) and the first record after ``end`` is kept (so it covers the range
    end).  The kept subset is always one contiguous run, so a pair of slice
    bounds describes it exactly — which lets zero-copy backends return views
    instead of fancy-indexed copies.
    """
    n = times.shape[0]
    if start is None and end is None:
        return 0, n
    i0 = int(np.searchsorted(times, start, side="left")) if start is not None else 0
    head = i0 - 1 if start is not None and i0 > 0 else i0
    if end is None:
        return head, n
    i1 = int(np.searchsorted(times, end, side="right"))
    after = max(i0, i1)
    return head, min(after + 1, n)


def range_indices(
    times: np.ndarray, start: Optional[float], end: Optional[float]
) -> np.ndarray:
    """Indices of the records a ``[start, end]`` read returns.

    The index-array form of :func:`range_bounds` (the kept subset is always
    contiguous).
    """
    lo, hi = range_bounds(times, start, end)
    return np.arange(lo, hi, dtype=np.intp)


def resolve_dims(dims: DimsLike, dimensions: int) -> Optional[Tuple[int, ...]]:
    """Normalize a column projection against a stream's dimensionality.

    ``None`` selects every value column; an ``int`` selects one; a sequence
    selects the listed columns in the given order (an empty sequence selects
    none — a kinds/times-only read).

    Raises:
        ValueError: If any selected dimension is out of range.
    """
    if dims is None:
        return None
    if isinstance(dims, (int, np.integer)):
        dims = (int(dims),)
    selected = tuple(int(dim) for dim in dims)
    for dim in selected:
        if not 0 <= dim < dimensions:
            raise ValueError(
                f"dimension {dim} out of range for a {dimensions}-dimensional stream"
            )
    return selected


def block_window(
    blocks: List[list], start: Optional[float], end: Optional[float]
) -> Tuple[int, int]:
    """Half-open block range covering a ``[start, end]`` read.

    The window is widened by one block on each side so the context records
    (last before ``start``, first after ``end``) are included.  Shared by the
    block-indexed backends.
    """
    count = len(blocks)
    if start is None and end is None:
        return 0, count
    lo, hi = 0, count
    first_candidate = 0
    if start is not None:
        max_times = np.fromiter((block[3] for block in blocks), float, count)
        first_candidate = int(np.searchsorted(max_times, start, side="left"))
        lo = max(0, min(first_candidate, count - 1) - (1 if first_candidate > 0 else 0))
    if end is not None:
        min_times = np.fromiter((block[2] for block in blocks), float, count)
        last = int(np.searchsorted(min_times, end, side="right")) - 1
        # Keep the block after `last` for the covering record, and never
        # shrink below the block holding the first record >= start.
        hi = min(count, max(last + 2, first_candidate + 1, lo + 1))
    return lo, hi


class StorageBackend(abc.ABC):
    """Byte-level reader/writer of one stream's append-only log.

    Backends receive the log ``path`` and the stream's catalog entry (a
    :class:`~repro.storage.segment_store.StoredStream`); they may mutate the
    entry's ``blocks`` index but never the rest of the catalog metadata.
    """

    #: Registry name, also persisted in the catalog header so a reopened
    #: store knows which backend wrote its logs.
    name: str = "abstract"

    #: On-disk format version, persisted alongside the name; bumped when the
    #: layout changes incompatibly so an older library refuses to parse a
    #: newer log instead of corrupting it.
    version: int = 1

    @abc.abstractmethod
    def append(
        self,
        path: Path,
        entry,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append already-validated record arrays to the log and index them."""

    @abc.abstractmethod
    def read_arrays(
        self,
        path: Path,
        entry,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode the range as ``(kinds (n,), times (n,), values (n, k))``.

        ``dims`` projects the value columns (see :func:`resolve_dims`):
        ``k`` is the stream dimensionality for ``dims=None``, else the number
        of selected columns, in selection order.  Kinds and times are always
        returned in full.
        """

    def truncate(self, path: Path, entry, keep_records: int) -> None:
        """Drop every record after the first ``keep_records`` from the log.

        Used by checkpoint resume to roll a stream back to its last
        checkpointed length before re-ingesting, so a crash between a
        checkpoint and the next one cannot duplicate recordings.
        """
        raise NotImplementedError(f"backend {self.name!r} does not support truncation")

    def compact(self, path: Path, entry) -> bool:
        """Rewrite the log with a fully dense block index.

        Merges undersized index blocks (left behind by truncation, recovery,
        or a store previously opened with a smaller block granularity) into
        full blocks.  Returns ``True`` when the entry's index was rebuilt.
        """
        raise NotImplementedError(f"backend {self.name!r} does not support compaction")

    def read_blocks(
        self, path: Path, entry, lo: int, hi: int, dims: DimsLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode index blocks ``[lo, hi)`` verbatim (no range filtering).

        Used by the query planner to decode exactly the blocks a query
        boundary straddles; ``dims`` projects value columns as in
        :meth:`read_arrays`.  Backends without a block index may leave this
        unimplemented — the planner then falls back to a full range decode.
        """
        raise NotImplementedError(f"backend {self.name!r} does not support block reads")

    def ensure_summaries(self, path: Path, entry) -> bool:
        """Backfill missing per-block summaries on the entry's index.

        Returns ``True`` when any block was summarized (the catalog should
        then be re-persisted).  The default backend has nothing to build.
        """
        return False

    @abc.abstractmethod
    def recover(self, path: Path, entry) -> bool:
        """Reconcile the catalog entry with the log actually on disk.

        Handles logs that are longer than the catalog says (appends that were
        flushed to the log but whose catalog update was lost) and shorter
        (crash mid-flush, or a seed-era catalog with no block index at all).
        Returns ``True`` when the entry was modified and the catalog should
        be re-persisted.
        """

    def block_extent(self, entry, block: list) -> int:
        """End byte offset of one index block (offset plus encoded size).

        Backends with a block index implement this so generic integrity
        checks (and read-only clamping) can compare the index against the
        physical log without backend-specific arithmetic.
        """
        raise NotImplementedError(f"backend {self.name!r} keeps no block index")

    def clamp(self, path: Path, entry) -> bool:
        """Trim the *in-memory* index to the bytes physically on disk.

        The read-only counterpart of :meth:`recover`: used by snapshot
        readers, it never writes, never re-indexes an unindexed tail (a
        concurrent writer may be mid-append there), and drops any trailing
        blocks the log does not fully cover.  Returns ``True`` when the
        entry was modified.
        """
        try:
            on_disk = path.stat().st_size
        except FileNotFoundError:
            on_disk = 0
        kept = []
        for block in entry.blocks:
            if self.block_extent(entry, block) > on_disk:
                break
            kept.append(block)
        if len(kept) == len(entry.blocks):
            return False
        entry.blocks = kept
        entry.refresh_from_blocks()
        return True

    def read(
        self,
        path: Path,
        entry,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> List[Recording]:
        """Decode the range into :class:`Recording` objects.

        With ``dims``, each recording's value vector holds only the selected
        columns (in selection order).
        """
        kinds, times, values = self.read_arrays(path, entry, start, end, dims=dims)
        return [
            Recording(float(t), v, KIND_BY_CODE[int(k)])
            for k, t, v in zip(kinds, times, values)
        ]


_BACKENDS: Dict[str, Type[StorageBackend]] = {}


def register_backend(cls: Type[StorageBackend]) -> Type[StorageBackend]:
    """Class decorator adding a backend to the registry."""
    _BACKENDS[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Names of the registered backends, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str, **options) -> StorageBackend:
    """Instantiate a registered backend by name.

    Raises:
        KeyError: If no backend of that name is registered.
    """
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown storage backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return cls(**options)
