"""Offline store integrity verification.

``verify_store`` inspects a store directory — plain or sharded — without
mutating it: catalog/journal generation consistency, block-index shape
against the physical logs (contiguity, extents, per-block record counts),
columnar ``RCB1`` block headers, and the parity of the pre-aggregated block
summaries and zoom pyramid against a fresh decode of the raw records.  It
returns a structured per-stream report the CLI renders (``repro verify``).

With ``repair=True`` the store is additionally reopened writable after the
inspection, which truncates the journal and every log to its last consistent
prefix (the same recovery an ordinary open performs, with the hardened
header validation), re-checkpoints the catalog, and the inspection is run
again so the report reflects the repaired state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.storage import wal
from repro.storage.backends.base import StorageBackend, get_backend
from repro.storage.segment_store import (
    _CATALOG_VERSION,
    SegmentStore,
    StoredStream,
    _legacy_filename,
)
from repro.storage.sharded_store import ShardedStore
from repro.storage.summaries import (
    block_cells,
    block_summary,
    blocks_summarized,
    build_pyramid,
    summarize_block,
)

__all__ = ["StreamCheck", "VerifyReport", "verify_store"]

#: Numeric tolerance for summary/pyramid parity: incrementally maintained
#: aggregates may differ from a cold recompute only by float association.
PARITY_TOLERANCE = 1e-9


@dataclass
class StreamCheck:
    """Verification outcome of one stream.

    Attributes:
        name: Stream name.
        recordings: Recording count the catalog claims.
        blocks: Index blocks the catalog claims.
        issues: Human-readable problems found (empty when the stream is
            consistent).
    """

    name: str
    recordings: int = 0
    blocks: int = 0
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the stream passed every check."""
        return not self.issues


@dataclass
class VerifyReport:
    """Verification outcome of one store directory.

    Attributes:
        directory: The inspected directory.
        backend: Backend name the catalog pins (``None`` when unreadable).
        generation: Catalog generation including the replayed journal tail.
        journal_records: Valid journal records replayed past the checkpoint.
        issues: Store-level problems (catalog/journal, not per-stream).
        streams: Per-stream outcomes, sorted by name.
        repairs: Actions a ``repair=True`` run performed (empty otherwise).
        shards: Per-shard sub-reports when the store is sharded.
    """

    directory: Path
    backend: Optional[str] = None
    generation: int = 0
    journal_records: int = 0
    issues: List[str] = field(default_factory=list)
    streams: List[StreamCheck] = field(default_factory=list)
    repairs: List[str] = field(default_factory=list)
    shards: List["VerifyReport"] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the whole store (including shards) passed every check."""
        return (
            not self.issues
            and all(stream.ok for stream in self.streams)
            and all(shard.ok for shard in self.shards)
        )

    def all_issues(self) -> List[str]:
        """Every problem found, flattened and labelled with its scope."""
        found = [f"store: {issue}" for issue in self.issues]
        found += [
            f"stream {check.name!r}: {issue}"
            for check in self.streams
            for issue in check.issues
        ]
        for shard in self.shards:
            found += [
                f"{shard.directory.name}/{issue}" for issue in shard.all_issues()
            ]
        return found


def _close_enough(expected, actual) -> bool:
    """Structural comparison with :data:`PARITY_TOLERANCE` on numbers."""
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        return bool(
            np.isclose(expected, actual, rtol=PARITY_TOLERANCE, atol=PARITY_TOLERANCE)
        )
    if isinstance(expected, (list, tuple)) and isinstance(actual, (list, tuple)):
        return len(expected) == len(actual) and all(
            _close_enough(e, a) for e, a in zip(expected, actual)
        )
    if isinstance(expected, dict) and isinstance(actual, dict):
        return expected.keys() == actual.keys() and all(
            _close_enough(expected[key], actual[key]) for key in expected
        )
    return expected == actual


def _effective_entries(
    payload: Dict[str, object], records, report: VerifyReport
) -> Dict[str, StoredStream]:
    """Checkpoint streams with the journal tail replayed on top."""
    entries: Dict[str, StoredStream] = {}
    for raw in payload.get("streams", []):
        try:
            entry = StoredStream.from_dict(raw)
        except (KeyError, TypeError, ValueError) as exc:
            report.issues.append(f"catalog stream entry unreadable: {exc}")
            continue
        if entry.filename is None:
            entry.filename = _legacy_filename(entry.name)
        entries[entry.name] = entry
    for generation, body in records:
        op = body.get("op")
        name = body.get("stream")
        if op == "upsert":
            try:
                entries[str(name)] = StoredStream.from_dict(body["entry"])
            except (KeyError, TypeError, ValueError) as exc:
                report.issues.append(
                    f"journal record (generation {generation}) unreadable: {exc}"
                )
        elif op == "delete":
            entries.pop(name, None)
        else:
            report.issues.append(
                f"journal record (generation {generation}) has unknown op {op!r}"
            )
        report.generation = generation
    return entries


def _check_stream(
    directory: Path,
    backend: StorageBackend,
    entry: StoredStream,
    parity: bool,
) -> StreamCheck:
    check = StreamCheck(
        name=entry.name, recordings=entry.recordings, blocks=len(entry.blocks)
    )
    path = directory / (entry.filename or _legacy_filename(entry.name))
    try:
        on_disk = path.stat().st_size
    except FileNotFoundError:
        on_disk = 0
        if entry.recordings > 0:
            check.issues.append(f"log file {path.name} missing")
            return check

    indexed = sum(block[1] for block in entry.blocks)
    if indexed != entry.recordings:
        check.issues.append(
            f"index counts {indexed} recordings, catalog claims {entry.recordings}"
        )

    structural_ok = True
    previous_end = 0
    previous_max: Optional[float] = None
    for index, block in enumerate(entry.blocks):
        offset, count = int(block[0]), int(block[1])
        if count < 1:
            check.issues.append(f"block {index} indexes {count} records")
            structural_ok = False
            continue
        try:
            extent = backend.block_extent(entry, block)
        except NotImplementedError:
            break
        if offset != previous_end:
            check.issues.append(
                f"block {index} starts at byte {offset}, expected {previous_end} "
                f"(index gap or overlap)"
            )
            structural_ok = False
        previous_end = extent
        if extent > on_disk:
            check.issues.append(
                f"block {index} extends to byte {extent}, log holds only "
                f"{on_disk} (torn or lost write)"
            )
            structural_ok = False
            break
        header_check = getattr(backend, "_header_matches", None)
        if header_check is not None and not header_check(
            path, block, entry.dimensions
        ):
            check.issues.append(f"block {index} has a corrupt RCB1 header")
            structural_ok = False
        min_time, max_time = float(block[2]), float(block[3])
        if min_time > max_time:
            check.issues.append(
                f"block {index} time bounds inverted ({min_time} > {max_time})"
            )
            structural_ok = False
        if previous_max is not None and min_time < previous_max:
            check.issues.append(
                f"block {index} starts at time {min_time}, before the previous "
                f"block's end {previous_max} (time order broken)"
            )
            structural_ok = False
        previous_max = max_time
    else:
        if entry.blocks and on_disk > previous_end:
            check.issues.append(
                f"{on_disk - previous_end} trailing log bytes are not indexed "
                f"(unflushed append or torn write)"
            )
        if not entry.blocks and on_disk > 0:
            check.issues.append(
                f"{on_disk} log bytes but the index holds no blocks"
            )

    if not parity or not structural_ok:
        return check

    for index, block in enumerate(entry.blocks):
        stored = block_summary(block)
        if stored is None:
            continue
        try:
            kinds, times, values = backend.read_blocks(
                path, entry, index, index + 1
            )
        except NotImplementedError:
            break
        except Exception as exc:  # corrupt payload bytes decode can fail anywhere
            check.issues.append(f"block {index} failed to decode: {exc}")
            continue
        if not _close_enough(summarize_block(kinds, times, values), stored):
            check.issues.append(
                f"block {index} summary diverges from a fresh decode "
                f"(beyond {PARITY_TOLERANCE:g})"
            )
    if (
        entry.pyramid is not None
        and entry.blocks
        and blocks_summarized(entry.blocks)
    ):
        if not _close_enough(build_pyramid(block_cells(entry.blocks)), entry.pyramid):
            check.issues.append(
                f"zoom pyramid diverges from a cold rebuild "
                f"(beyond {PARITY_TOLERANCE:g})"
            )
    return check


def _verify_plain(directory: Path, parity: bool) -> VerifyReport:
    report = VerifyReport(directory=directory)
    catalog_path = directory / SegmentStore.CATALOG_NAME
    journal_path = directory / wal.JOURNAL_NAME

    payload: Dict[str, object] = {}
    try:
        payload = json.loads(catalog_path.read_text())
    except FileNotFoundError:
        if not journal_path.exists():
            # A directory holding neither catalog state nor stream logs is
            # an *empty* store (e.g. a shard no stream hashed into), which
            # is consistent; anything with orphaned data files is not.
            if any(directory.glob("*.seg")):
                report.issues.append(
                    "no catalog.json and no journal, but stream logs exist"
                )
            elif not directory.is_dir():
                report.issues.append("no catalog.json and no journal — not a store")
            return report
    except (json.JSONDecodeError, OSError) as exc:
        report.issues.append(f"catalog.json unreadable: {exc}")
        return report

    version = int(payload.get("version", 1))
    if version > _CATALOG_VERSION:
        report.issues.append(
            f"catalog version {version} is newer than this library's "
            f"{_CATALOG_VERSION}"
        )
        return report
    report.generation = int(payload.get("generation", 0))
    if report.generation < 0:
        report.issues.append(f"catalog generation {report.generation} is negative")

    records, consistent_end, total_size = wal.scan_journal(journal_path)
    torn = total_size - consistent_end
    if torn:
        report.issues.append(
            f"journal has {torn} torn/corrupt trailing bytes "
            f"(consistent prefix: {consistent_end})"
        )
    live = [(g, body) for g, body in records if g > report.generation]
    report.journal_records = len(live)

    backend_name = payload.get("backend")
    if backend_name is None and payload.get("streams"):
        backend_name = "block-log"
    try:
        backend = get_backend(backend_name or "block-log")
    except KeyError as exc:
        report.issues.append(str(exc))
        return report
    report.backend = backend.name

    entries = _effective_entries(payload, live, report)
    report.streams = [
        _check_stream(directory, backend, entries[name], parity)
        for name in sorted(entries)
    ]
    return report


def _repair_plain(directory: Path, report: VerifyReport) -> List[str]:
    """Reopen writable — journal + log recovery truncates to the last
    consistent prefix — and describe what changed."""
    before = {check.name: check.recordings for check in report.streams}
    try:
        store = SegmentStore(directory, autoflush=False)
    except Exception as exc:
        return [f"repair failed: could not reopen store writable: {exc}"]
    actions: List[str] = []
    try:
        for entry in store.streams():
            kept = entry.recordings
            was = before.get(entry.name)
            if was is not None and kept != was:
                actions.append(
                    f"stream {entry.name!r}: truncated to consistent prefix "
                    f"({was} -> {kept} recordings)"
                )
        store.checkpoint()
        actions.append(
            f"journal truncated and catalog re-checkpointed at generation "
            f"{store.generation}"
        )
    finally:
        store.close()
    return actions


def verify_store(
    directory: Union[str, Path],
    *,
    repair: bool = False,
    parity: bool = True,
) -> VerifyReport:
    """Check the integrity of the store at ``directory``.

    Args:
        directory: Store directory, plain or sharded.
        repair: After the inspection, reopen the store writable so journal
            and logs are truncated to their last consistent prefix and the
            catalog re-checkpointed; the report then reflects the repaired
            state and lists the actions under ``repairs``.
        parity: Recompute every block summary (and the zoom pyramid) from a
            fresh decode of the raw records and compare within
            :data:`PARITY_TOLERANCE`.  Disable for a fast structural check
            of very large stores.

    Returns:
        A :class:`VerifyReport`; ``report.ok`` is the overall verdict.
    """
    directory = Path(directory)
    if (directory / ShardedStore.META_NAME).exists():
        report = VerifyReport(directory=directory)
        try:
            meta = json.loads((directory / ShardedStore.META_NAME).read_text())
            shard_count = int(meta["shards"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError) as exc:
            report.issues.append(f"shards.json unreadable: {exc}")
            return report
        report.backend = meta.get("backend")
        for index in range(shard_count):
            shard_dir = directory / f"shard-{index:02d}"
            if not shard_dir.is_dir():
                report.issues.append(f"shard directory {shard_dir.name} missing")
                continue
            report.shards.append(
                verify_store(shard_dir, repair=repair, parity=parity)
            )
        return report

    report = _verify_plain(directory, parity)
    if repair and not report.ok:
        repairs = _repair_plain(directory, report)
        report = _verify_plain(directory, parity)
        report.repairs = repairs
    return report
