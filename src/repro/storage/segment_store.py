"""Append-only, file-backed store for compressed streams.

A :class:`SegmentStore` manages a directory holding one append-only log per
named stream.  Each log record is one transmitted
:class:`~repro.core.types.Recording` (kind, time, values); a JSON catalog
keeps per-stream metadata (dimensions, recording count, time span, the
precision width it was compressed with, the collision-safe log filename and
the block index).

The byte-level layout lives in a pluggable
:class:`~repro.storage.backends.base.StorageBackend`; the default
:class:`~repro.storage.backends.block_log.BlockLogBackend` keeps a per-block
time index in the catalog so range reads binary-search to the overlapping
blocks and decode them vectorized (``np.frombuffer`` + structured dtype)
instead of walking the whole log with per-record ``struct.unpack``.

Catalog persistence is batched: appends mark the catalog dirty and
``flush()`` (or ``close()``, or leaving the store's context manager) writes
it once.  The default ``autoflush=True`` keeps the seed's write-through
behaviour; bulk writers pass ``autoflush=False`` so a fleet-sized ingest does
not rewrite the catalog per append.  Either way the store recovers on open:
log bytes that never made it into the catalog are re-indexed, and a log
truncated mid-record by a crash is clamped to the last complete record.

Catalog mutations are additionally journaled write-ahead (see
:mod:`repro.storage.wal`): with ``autoflush=False`` every mutation appends a
checksummed, generation-numbered record carrying the stream's full catalog
entry to ``catalog.wal``, and ``flush()`` turns the JSON catalog into a
checkpoint of that journal (rotating the journal afterwards).  Recovery
replays the journal tail over the checkpoint, discarding any torn suffix, so
a crash at any instruction leaves a readable consistent prefix — and a
*snapshot reader* (``mode="r"``) in another process can pin a generation and
serve range/aggregate/zoom queries from the immutable sealed blocks of that
generation while a live ingester keeps appending.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.approximation.reconstruct import reconstruct
from repro.core.types import Recording, RecordingKind
from repro.storage.backends.base import (
    KIND_BY_CODE,
    RECORD_KINDS,
    DimsLike,
    StorageBackend,
    get_backend,
)
from repro.storage.summaries import (
    block_cells,
    blocks_summarized,
    build_pyramid,
    update_pyramid,
)
from repro.storage.lock import StoreLock
from repro.storage.wal import CatalogJournal
from repro.testing import faults

__all__ = ["SegmentStore", "StoredStream"]

# Backwards-compatible aliases (the codes are part of the log format and now
# live with the backends).
_RECORD_KINDS = RECORD_KINDS
_KIND_BY_CODE = KIND_BY_CODE

#: Catalog schema version written by this release.  Version 1 (the seed) had
#: no ``filename``/``blocks`` fields; both are recovered on open.  Version 3
#: adds the per-block summary as the fifth block element; blocks from older
#: catalogs load with ``None`` there and are backfilled lazily on the first
#: summary query (see :meth:`SegmentStore.summary_range`).  Version 4 adds
#: the optional per-stream zoom ``pyramid`` (multi-resolution folds of the
#: block summaries), built lazily on the first zoom query and maintained
#: incrementally afterwards; older catalogs load with ``None`` there.
#: Version 5 adds the top-level ``generation`` (the write-ahead journal
#: generation the catalog checkpoints — absent means 0); older catalogs
#: load unchanged.
_CATALOG_VERSION = 5

#: Elements per catalog block entry (offset, count, min/max time, summary).
_BLOCK_WIDTH = 5

#: Journal bytes past which a flush upgrades itself to a full checkpoint.
_JOURNAL_LIMIT = 1 << 20


@dataclass
class StoredStream:
    """Catalog entry of one stream held by the store.

    Attributes:
        name: Stream identifier.
        dimensions: Dimensionality of the stored values.
        recordings: Number of recordings appended so far.
        first_time: Time of the earliest recording (``None`` when empty).
        last_time: Time of the latest recording (``None`` when empty).
        epsilon: Precision width the stream was compressed with (optional,
            informational).
        filename: Collision-safe log filename inside the store directory.
        blocks: Block index: ``[byte_offset, record_count, min_time,
            max_time, summary]`` per block, maintained by the storage
            backend.  ``summary`` is the pre-aggregated block summary (see
            :mod:`repro.storage.summaries`), or ``None`` for blocks loaded
            from a pre-summary catalog and not yet backfilled.
        pyramid: Multi-resolution zoom pyramid over the block summaries
            (levels of ``[min_time, max_time, summary]`` cells, finest
            first — see :func:`repro.storage.summaries.build_pyramid`), or
            ``None`` while no zoom query has asked for it yet.
    """

    name: str
    dimensions: int
    recordings: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    epsilon: Optional[List[float]] = None
    filename: Optional[str] = None
    blocks: List[list] = field(default_factory=list)
    pyramid: Optional[List[List[list]]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "dimensions": self.dimensions,
            "recordings": self.recordings,
            "first_time": self.first_time,
            "last_time": self.last_time,
            "epsilon": self.epsilon,
            "filename": self.filename,
            "blocks": [list(block) for block in self.blocks],
            "pyramid": self.pyramid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StoredStream":
        return cls(
            name=str(payload["name"]),
            dimensions=int(payload["dimensions"]),
            recordings=int(payload["recordings"]),
            first_time=payload.get("first_time"),
            last_time=payload.get("last_time"),
            epsilon=payload.get("epsilon"),
            filename=payload.get("filename"),
            blocks=[
                list(block) + [None] * (_BLOCK_WIDTH - len(block))
                for block in payload.get("blocks", [])
            ],
            pyramid=payload.get("pyramid"),
        )

    def refresh_from_blocks(self) -> bool:
        """Re-derive ``recordings``/``first_time``/``last_time`` from the
        block index (the authority after truncation, compaction or
        recovery).  Returns whether anything changed."""
        recordings = sum(block[1] for block in self.blocks)
        first = self.blocks[0][2] if self.blocks else None
        last = self.blocks[-1][3] if self.blocks else None
        if (self.recordings, self.first_time, self.last_time) == (recordings, first, last):
            return False
        self.recordings = recordings
        self.first_time = first
        self.last_time = last
        return True


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)


def collision_safe_filename(name: str, suffix: str) -> str:
    """Filesystem-safe filename for ``name``: sanitized plus a short hash.

    The hash keeps names like ``"a/b"`` and ``"a_b"`` (identical after
    sanitization) in distinct files.  Shared by the stream logs and the
    ingestion checkpoints so one naming scheme governs both.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).hexdigest()
    return f"{_sanitize(name)}-{digest}{suffix}"


def _stream_filename(name: str) -> str:
    """Collision-safe log filename of one stream."""
    return collision_safe_filename(name, ".seg")


def _legacy_filename(name: str) -> str:
    """Filename used by seed-era catalogs (no collision protection)."""
    return f"{_sanitize(name)}.seg"


def read_streams_job(
    directory: str,
    names: Sequence[str],
    start: Optional[float],
    end: Optional[float],
    backend: Optional[str] = None,
    dims: DimsLike = None,
) -> List[Tuple[str, List[Recording]]]:
    """Open the store at ``directory`` and range-read ``names`` (top level so
    it is picklable — the unit of work of the process-executor read path).
    ``backend`` carries the parent store's backend name so a store built on
    a non-default registered backend decodes correctly in the worker.  The
    worker opens a read-only snapshot: the parent flushed before fanning
    out, and a reader must not race recovery writes against it."""
    store = SegmentStore(directory, autoflush=False, backend=backend, mode="r")
    return [(name, store.read(name, start, end, dims=dims)) for name in names]


class SegmentStore:
    """Directory-backed repository of compressed streams.

    Args:
        directory: Directory holding the catalog and the per-stream logs; it
            is created if missing.
        autoflush: When ``True`` (default) every mutation persists the
            catalog immediately, like the seed implementation.  When
            ``False`` the catalog is only written by :meth:`flush` /
            :meth:`close` (new-stream registrations still persist right away
            so recovery always knows each stream's dimensionality).
        backend: Storage backend instance or registry name.  ``None``
            (default) reuses the backend persisted in the catalog on reopen,
            falling back to ``"block-log"`` for new stores; an explicit
            choice that contradicts the persisted one raises instead of
            mis-parsing the logs.
        block_records: Records per index block, forwarded to the backend.
        mode: ``"w"`` (default) opens a writer; ``"r"`` opens a read-only
            snapshot pinned to the last durable catalog generation — it
            performs no recovery writes, serves reads from the sealed blocks
            of that generation, and raises :class:`PermissionError` on any
            mutation.  Safe to hold in one process while a writer in another
            keeps appending; :meth:`refresh` re-pins to the newest state.
        snapshot: Alias flag for the snapshot-reader contract; requires
            ``mode="r"``.
        durable: When ``True``, journal appends and catalog checkpoints
            fsync before returning (crash consistency holds either way for
            process crashes; ``durable`` extends it to power loss at the
            cost of an fsync per persisted mutation).  :meth:`sync` makes
            everything durable on demand regardless of this flag.
        journal_limit: Journal bytes past which a flush checkpoints the
            catalog and rotates the journal.
    """

    CATALOG_NAME = "catalog.json"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        autoflush: bool = True,
        backend: Union[StorageBackend, str, None] = None,
        block_records: Optional[int] = None,
        mode: str = "w",
        snapshot: bool = False,
        durable: bool = False,
        journal_limit: int = _JOURNAL_LIMIT,
    ) -> None:
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        if snapshot and mode != "r":
            raise ValueError("snapshot readers require mode='r'")
        self._directory = Path(directory)
        self._read_only = mode == "r"
        self._lock: Optional[StoreLock] = None
        if self._read_only:
            if not self._directory.is_dir():
                raise FileNotFoundError(f"no store directory at {self._directory}")
        else:
            self._directory.mkdir(parents=True, exist_ok=True)
            # One writing process per store directory, enforced (readers
            # never take the lock — they pin catalog generations instead).
            self._lock = StoreLock.acquire(self._directory)
        self._catalog_path = self._directory / self.CATALOG_NAME
        self._catalog: Dict[str, StoredStream] = {}
        self._autoflush = bool(autoflush) and not self._read_only
        self._durable = bool(durable)
        self._journal_limit = int(journal_limit)
        self._stale = False
        try:
            self._journal = CatalogJournal(self._directory, read_only=self._read_only)
            payload = self._load_checkpoint()
            self._backend = self._resolve_backend(backend, block_records, payload)
            self._load_streams(payload)
            self._replay_journal()
            self._recover()
        except BaseException:
            if self._lock is not None:
                self._lock.release()
                self._lock = None
            raise

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        mode: str = "w",
        snapshot: bool = False,
        **options,
    ) -> "SegmentStore":
        """Open a store; ``SegmentStore.open(path, mode="r", snapshot=True)``
        gives a generation-pinned snapshot reader (see ``mode`` above)."""
        return cls(directory, mode=mode, snapshot=snapshot, **options)

    def _load_checkpoint(self) -> Dict[str, object]:
        try:
            return json.loads(self._catalog_path.read_text())
        except FileNotFoundError:
            return {}

    def _load_streams(self, payload: Dict[str, object]) -> None:
        self._catalog.clear()
        for raw in payload.get("streams", []):
            stream = StoredStream.from_dict(raw)
            if stream.filename is None:
                stream.filename = _legacy_filename(stream.name)
                self._stale = True
            self._catalog[stream.name] = stream
        self._generation = int(payload.get("generation", 0))

    def _replay_journal(self) -> None:
        """Apply the journal tail on top of the checkpoint state.

        Records carry a stream's *full* catalog entry, so replay over any
        older checkpoint converges to the newest journaled state; a torn or
        checksum-failed suffix is discarded (and, in writer mode, truncated
        off the file so later appends extend the consistent prefix).
        """
        records = self._journal.replay(self._generation, repair=not self._read_only)
        for generation, payload in records:
            op = payload.get("op")
            name = payload.get("stream")
            if op == "upsert":
                self._catalog[str(name)] = StoredStream.from_dict(payload["entry"])
            elif op == "delete":
                self._catalog.pop(name, None)
            self._generation = generation
        if records and not self._read_only:
            self._stale = True  # fold the tail into the next checkpoint

    def _resolve_backend(
        self,
        backend: Union[StorageBackend, str, None],
        block_records: Optional[int],
        payload: Dict[str, object],
    ) -> StorageBackend:
        """Reconcile the requested backend with the one the catalog names.

        The persisted choice wins when the caller passes ``None``; an
        explicit contradiction is an error — decoding a log with the wrong
        backend would read garbage (and appending would corrupt it).
        """
        persisted = payload.get("backend")
        if persisted is None and payload.get("streams"):
            # Catalogs written before the backend field was persisted only
            # ever came from the row backend.
            persisted = "block-log"
        if isinstance(backend, StorageBackend):
            resolved = backend
        else:
            options = {} if block_records is None else {"block_records": block_records}
            resolved = get_backend(backend or persisted or "block-log", **options)
        if persisted is not None and resolved.name != persisted:
            raise ValueError(
                f"store at {self._directory} was written by the {persisted!r} backend; "
                f"opening it with {resolved.name!r} would corrupt it "
                f"(use `repro migrate` to convert)"
            )
        persisted_version = payload.get("backend_version")
        if persisted_version is not None and int(persisted_version) > resolved.version:
            raise ValueError(
                f"store at {self._directory} uses {resolved.name!r} log format "
                f"version {persisted_version}, newer than this library's "
                f"version {resolved.version}"
            )
        return resolved

    def _recover(self) -> None:
        if self._read_only:
            # A snapshot reader never writes: it only clamps its in-memory
            # index to the bytes physically on disk (belt and braces — the
            # pinned index was journaled after its log bytes landed).
            for entry in self._catalog.values():
                if self._backend.clamp(self._entry_path(entry), entry):
                    entry.pyramid = None
            return
        for entry in self._catalog.values():
            if self._backend.recover(self._entry_path(entry), entry):
                # The block index changed under the pyramid; drop it and let
                # the next zoom query rebuild from the repaired summaries.
                entry.pyramid = None
                self._generation += 1
                self._stale = True
                if not self._autoflush:
                    self._journal_upsert(entry.name)
        if self._stale and self._autoflush:
            self.flush()

    # ------------------------------------------------------------------ #
    # Catalog
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._directory

    @property
    def backend(self) -> StorageBackend:
        """The storage backend in use."""
        return self._backend

    @property
    def mode(self) -> str:
        """``"r"`` for a snapshot reader, ``"w"`` for a writer."""
        return "r" if self._read_only else "w"

    @property
    def read_only(self) -> bool:
        """Whether this handle is a read-only snapshot."""
        return self._read_only

    @property
    def generation(self) -> int:
        """The catalog generation this handle reflects.

        Writers: the generation of the last persisted mutation.  Snapshot
        readers: the pinned generation (checkpoint plus replayed journal
        tail at open/:meth:`refresh` time)."""
        return self._generation

    @property
    def _dirty(self) -> bool:
        # Kept for observability (tests hook flush and inspect this): true
        # while the JSON checkpoint lags the in-memory/journaled state.
        return self._stale

    def streams(self) -> List[StoredStream]:
        """Return the catalog entries sorted by stream name."""
        return [self._catalog[name] for name in sorted(self._catalog)]

    def stream_names(self) -> List[str]:
        """Return the stored stream names, sorted."""
        return sorted(self._catalog)

    def describe(self, name: str) -> StoredStream:
        """Return the catalog entry for ``name``.

        Raises:
            KeyError: If the stream does not exist.
        """
        try:
            return self._catalog[name]
        except KeyError:
            raise KeyError(f"unknown stream {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        name: str,
        recordings: Iterable[Recording],
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Append recordings to a stream (creating the stream if needed).

        Recordings must be appended in time order (within and across calls).
        An empty iterable is a no-op: it neither registers an unknown stream
        (the dimensionality is not known yet) nor touches an existing one,
        and returns the current catalog entry — ``None`` for unknown streams.

        Raises:
            ValueError: If the recordings are out of order or their
                dimensionality differs from the stream's.
        """
        records = list(recordings)
        if not records:
            return self._catalog.get(name)
        dimensions = records[0].dimensions
        count = len(records)
        kinds = np.empty(count, dtype=np.uint8)
        times = np.empty(count, dtype=float)
        values = np.empty((count, dimensions), dtype=float)
        for index, record in enumerate(records):
            if record.dimensions != dimensions:
                raise ValueError("recordings must share one dimensionality")
            kinds[index] = RECORD_KINDS[record.kind]
            times[index] = record.time
            values[index] = record.value
        return self._append_arrays(name, kinds, times, values, epsilon)

    def append_arrays(
        self,
        name: str,
        times,
        values,
        kinds=None,
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Vectorized bulk append from parallel arrays.

        Args:
            name: Stream to append to (created if needed).
            times: ``(n,)`` non-decreasing times.
            values: ``(n,)`` or ``(n, d)`` values.
            kinds: Per-record :class:`RecordingKind` (or wire codes); a
                scalar broadcasts, ``None`` means :data:`RecordingKind.HOLD`.
            epsilon: Optional precision width stored in the catalog entry.

        Raises:
            ValueError: Like :meth:`append`, plus on shape mismatches.
        """
        times = np.asarray(times, dtype=float).reshape(-1)
        if times.shape[0] == 0:
            return self._catalog.get(name)
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        if values.ndim != 2 or values.shape[0] != times.shape[0]:
            raise ValueError(
                f"values must have shape (n,) or (n, d) matching {times.shape[0]} times, "
                f"got {values.shape}"
            )
        kinds = self._coerce_kinds(kinds, times.shape[0])
        return self._append_arrays(name, kinds, times, values, epsilon)

    @staticmethod
    def _coerce_kinds(kinds, count: int) -> np.ndarray:
        if kinds is None:
            kinds = RECORD_KINDS[RecordingKind.HOLD]
        if isinstance(kinds, RecordingKind):
            kinds = RECORD_KINDS[kinds]
        if np.isscalar(kinds):
            return np.full(count, int(kinds), dtype=np.uint8)
        codes = np.asarray(
            [RECORD_KINDS[k] if isinstance(k, RecordingKind) else int(k) for k in kinds],
            dtype=np.uint8,
        )
        if codes.shape[0] != count:
            raise ValueError(f"kinds must match the {count} records, got {codes.shape[0]}")
        return codes

    def _append_arrays(
        self,
        name: str,
        kinds: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        epsilon: Optional[Sequence[float]],
    ) -> StoredStream:
        self._require_writable()
        dimensions = int(values.shape[1])
        entry = self._catalog.get(name)
        if entry is not None and entry.dimensions != dimensions:
            raise ValueError(
                f"stream {name!r} holds {entry.dimensions}-dimensional values, "
                f"got {dimensions}-dimensional recordings"
            )
        self._check_time_order(times, None if entry is None else entry.last_time)
        if entry is None:
            entry = self._register(name, dimensions, epsilon)
        blocks_before = len(entry.blocks)
        self._backend.append(self._entry_path(entry), entry, kinds, times, values)
        if entry.pyramid is not None:
            # An append only touches the (possibly topped-up) trailing block
            # and beyond — refresh exactly the pyramid cells above them.
            if blocks_summarized(entry.blocks):
                update_pyramid(
                    entry.pyramid, block_cells(entry.blocks), max(blocks_before - 1, 0)
                )
            else:
                entry.pyramid = None
        entry.recordings += times.shape[0]
        if entry.first_time is None:
            entry.first_time = float(times[0])
        entry.last_time = float(times[-1])
        if epsilon is not None:
            entry.epsilon = [float(value) for value in np.atleast_1d(epsilon)]
        self._mark_dirty(name)
        return entry

    @staticmethod
    def _check_time_order(times: np.ndarray, last_time: Optional[float]) -> None:
        backwards = np.nonzero(np.diff(times) < 0.0)[0]
        if backwards.size:
            index = int(backwards[0])
            raise ValueError(
                f"recordings must be appended in time order; got {float(times[index + 1])!r} "
                f"after {float(times[index])!r}"
            )
        if last_time is not None and times[0] < last_time:
            raise ValueError(
                f"recordings must be appended in time order; got {float(times[0])!r} "
                f"after {last_time!r}"
            )

    def ensure_stream(
        self,
        name: str,
        dimensions: int,
        epsilon: Optional[Sequence[float]] = None,
    ) -> StoredStream:
        """Register an (empty) stream without appending any recordings.

        Idempotent for an existing stream of the same dimensionality; used
        by store migration to carry over streams that hold no recordings.

        Raises:
            ValueError: If the stream exists with a different dimensionality.
        """
        entry = self._catalog.get(name)
        if entry is not None:
            if entry.dimensions != int(dimensions):
                raise ValueError(
                    f"stream {name!r} holds {entry.dimensions}-dimensional values, "
                    f"cannot re-register as {int(dimensions)}-dimensional"
                )
            if epsilon is not None:
                self._require_writable()
                entry.epsilon = [float(v) for v in np.atleast_1d(epsilon)]
                self._mark_dirty(name)
            return entry
        self._require_writable()
        return self._register(name, int(dimensions), epsilon)

    def _register(self, name: str, dimensions: int, epsilon) -> StoredStream:
        entry = StoredStream(
            name=name,
            dimensions=dimensions,
            epsilon=[float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None,
            filename=_stream_filename(name),
        )
        self._catalog[name] = entry
        self._entry_path(entry).touch()
        # Registration always checkpoints immediately — recovery after a
        # crash needs the dimensionality (and the backend name, on a fresh
        # store) to parse the log, and neither can come from the log itself.
        self._generation += 1
        self._stale = True
        self.flush()
        return entry

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> List[Recording]:
        """Read a stream's recordings, optionally restricted to a time range.

        The range filter keeps one recording before ``start`` and one after
        ``end`` when available, so the returned recordings still describe the
        approximation over the whole requested range.  Only the log blocks
        overlapping the range are decoded.  ``dims`` projects the value
        columns (an index or sequence of indexes); columnar backends then
        read only the selected columns.
        """
        entry = self.describe(name)
        return self._backend.read(self._entry_path(entry), entry, start, end, dims=dims)

    def read_arrays(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`read` but as ``(kinds, times, values)`` arrays."""
        entry = self.describe(name)
        return self._backend.read_arrays(
            self._entry_path(entry), entry, start, end, dims=dims
        )

    def reconstruct(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Approximation:
        """Rebuild the stored approximation (optionally over a time range)."""
        recordings = self.read(name, start, end)
        return reconstruct(recordings)

    def summary_range(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[list]:
        """The stream's block-summary index over ``[start, end]``.

        Ensures every returned block carries its pre-aggregated summary,
        lazily backfilling indexes written before the summary format (one
        streaming pass over the log; the upgraded catalog is persisted).
        With no bounds the full index is returned (block position equals
        block number — what :meth:`read_block_arrays` addresses); with
        bounds, the entries whose time span overlaps the range.

        Raises:
            KeyError: If the stream does not exist.
        """
        entry = self.describe(name)
        if entry.blocks and self._backend.ensure_summaries(self._entry_path(entry), entry):
            self._mark_dirty(name)
        if start is None and end is None:
            return entry.blocks
        return [
            block
            for block in entry.blocks
            if (start is None or block[3] >= start) and (end is None or block[2] <= end)
        ]

    def read_block_arrays(
        self, name: str, lo: int, hi: int, dims: DimsLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode index blocks ``[lo, hi)`` of ``name`` verbatim.

        Returns ``(kinds, times, values)`` arrays — no range filtering and
        no context records, exactly the blocks' records.  The query planner
        uses this to decode only the blocks a query boundary straddles, and
        passes ``dims`` so columnar backends fault in only the touched value
        columns.

        Raises:
            KeyError: If the stream does not exist.
            NotImplementedError: If the backend keeps no block index.
        """
        entry = self.describe(name)
        return self._backend.read_blocks(self._entry_path(entry), entry, lo, hi, dims=dims)

    def pyramid_levels(self, name: str) -> List[List[list]]:
        """The stream's zoom pyramid, building it lazily on first use.

        Levels are lists of ``[min_time, max_time, summary]`` cells, finest
        first; level ``0`` is the block index itself (not returned here — use
        :meth:`summary_range`), and cell ``c`` of each level folds children
        ``[c * base, (c + 1) * base)`` of the level below (see
        :mod:`repro.storage.summaries`).  Like the summaries the pyramid is
        persisted with the catalog exactly once and maintained incrementally
        on later appends, truncations and compactions.

        Raises:
            KeyError: If the stream does not exist.
            NotImplementedError: If the backend keeps no block summaries to
                fold (the zoom planner then falls back to the decode path).
        """
        entry = self.describe(name)
        if entry.blocks and self._backend.ensure_summaries(self._entry_path(entry), entry):
            self._mark_dirty(name)
        if entry.blocks and not blocks_summarized(entry.blocks):
            raise NotImplementedError(
                f"backend {self._backend.name!r} keeps no block summaries"
            )
        if entry.pyramid is None:
            entry.pyramid = build_pyramid(block_cells(entry.blocks))
            self._mark_dirty(name)
        return entry.pyramid

    def _refresh_pyramid(self, entry: StoredStream) -> None:
        """Cold-rebuild an entry's pyramid after wholesale index changes."""
        if entry.pyramid is None:
            return
        if blocks_summarized(entry.blocks):
            entry.pyramid = build_pyramid(block_cells(entry.blocks))
        else:
            entry.pyramid = None

    def read_many(
        self,
        names: Iterable[str],
        start: Optional[float] = None,
        end: Optional[float] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        dims: DimsLike = None,
    ) -> Dict[str, List[Recording]]:
        """Range-read several streams at once.

        Mirrors :meth:`ShardedStore.read_many` so multi-stream consumers need
        not branch on the store type.  ``executor="thread"`` (default) reads
        the streams concurrently in a thread pool — the file I/O releases the
        GIL; ``executor="process"`` fans the names out to worker processes
        that reopen the store read-only, so decode-heavy reads (large values
        dimensionality, wide ranges) escape the GIL entirely.  ``dims``
        projects value columns as in :meth:`read`.

        Raises:
            ValueError: For an unknown ``executor``.
            KeyError: If any requested stream does not exist.
        """
        names = list(names)
        for name in names:
            self.describe(name)  # fail fast, before any worker spins up
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        if len(names) <= 1:
            return {name: self.read(name, start, end, dims=dims) for name in names}
        if executor == "thread":
            workers = max_workers or min(len(names), os.cpu_count() or 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batches = pool.map(
                    lambda name: (name, self.read(name, start, end, dims=dims)), names
                )
                return dict(batches)
        self.flush()  # worker processes reopen the store from disk
        workers = max_workers or min(len(names), os.cpu_count() or 1)
        groups = [names[index::workers] for index in range(workers) if names[index::workers]]
        directory = str(self._directory)
        results: Dict[str, List[Recording]] = {}
        with ProcessPoolExecutor(max_workers=len(groups)) as pool:
            futures = [
                pool.submit(
                    read_streams_job, directory, group, start, end, self._backend.name, dims
                )
                for group in groups
            ]
            for future in futures:
                results.update(future.result())
        return results

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def truncate_stream(self, name: str, keep_records: int) -> StoredStream:
        """Roll a stream back to its first ``keep_records`` recordings.

        Used by checkpoint resume: recordings appended after the last
        checkpoint are dropped so re-ingesting from the checkpoint cannot
        duplicate them.  Truncating beyond the current length is a no-op.

        Raises:
            KeyError: If the stream does not exist.
            ValueError: If ``keep_records`` is negative.
        """
        if keep_records < 0:
            raise ValueError(f"keep_records must be non-negative, got {keep_records}")
        self._require_writable()
        entry = self.describe(name)
        if keep_records >= entry.recordings:
            return entry
        self._backend.truncate(self._entry_path(entry), entry, keep_records)
        entry.refresh_from_blocks()
        self._refresh_pyramid(entry)
        self._mark_dirty(name)
        return entry

    def compact(self, name: Optional[str] = None) -> Dict[str, Tuple[int, int]]:
        """Merge undersized index blocks (see ``StorageBackend.compact``).

        Compacts one stream, or every stream when ``name`` is ``None``.
        Returns ``{stream: (blocks_before, blocks_after)}`` for each stream
        whose index was rebuilt.

        Raises:
            KeyError: If ``name`` is given but does not exist.
        """
        self._require_writable()
        entries = [self.describe(name)] if name is not None else self.streams()
        rebuilt: Dict[str, Tuple[int, int]] = {}
        for entry in entries:
            before = len(entry.blocks)
            if self._backend.compact(self._entry_path(entry), entry):
                # The rebuilt index is authoritative (a corrupt-index repair
                # may have changed the record count).
                entry.refresh_from_blocks()
                self._refresh_pyramid(entry)
                rebuilt[entry.name] = (before, len(entry.blocks))
                self._mark_dirty(entry.name)
        return rebuilt

    def delete(self, name: str) -> None:
        """Remove a stream and its log file.

        Raises:
            KeyError: If the stream does not exist.
        """
        self._require_writable()
        entry = self.describe(name)
        self._entry_path(entry).unlink(missing_ok=True)
        del self._catalog[name]
        self._generation += 1
        self._stale = True
        if self._autoflush:
            self.flush()
        else:
            self._journal.append(
                self._generation,
                {"op": "delete", "stream": name},
                durable=self._durable,
            )

    def total_bytes(self) -> int:
        """Total size of all stream logs on disk."""
        total = 0
        for entry in self._catalog.values():
            path = self._entry_path(entry)
            if path.exists():
                total += path.stat().st_size
        return total

    def flush(self) -> None:
        """Persist the catalog if it has pending changes.

        Checkpoints the catalog JSON atomically (temp file + rename in the
        same directory — a crash mid-flush leaves the previous catalog
        intact) and rotates the write-ahead journal, whose records already
        cover every mutation since the last flush.  A no-op on snapshot
        readers.
        """
        if self._read_only or not self._stale:
            return
        self.checkpoint()

    def checkpoint(self, durable: Optional[bool] = None) -> int:
        """Write the catalog JSON checkpoint and rotate the journal.

        Returns the checkpointed generation.  ``durable`` overrides the
        store's durability setting for this checkpoint (``True`` fsyncs the
        staged file and the directory).
        """
        self._require_writable()
        durable = self._durable if durable is None else bool(durable)
        payload = {
            "version": _CATALOG_VERSION,
            "generation": self._generation,
            "backend": self._backend.name,
            "backend_version": self._backend.version,
            "streams": [entry.to_dict() for entry in self._catalog.values()],
        }
        staging = self._catalog_path.with_suffix(".json.tmp")
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        with open(staging, "wb") as handle:
            faults.write(handle, body, path=staging)
            if durable:
                faults.fsync(handle, path=staging)
        faults.crash_point("catalog.checkpoint.before_replace")
        faults.replace(staging, self._catalog_path)
        if durable:
            faults.fsync_dir(self._directory)
        faults.crash_point("catalog.checkpoint.after_replace")
        # The journal is reset only after the checkpoint replace: a crash
        # between the two re-applies records the checkpoint already holds,
        # which replay skips by generation.
        if self._journal.size() > 0:
            self._journal.reset()
        self._stale = False
        return self._generation

    def sync(self, name: Optional[str] = None) -> None:
        """Flush, then ``fsync`` log, journal and catalog to stable storage.

        :meth:`flush` makes the catalog consistent with the logs but both
        may still sit in the page cache; callers recording durable facts
        about store contents (checkpoints) call this so a power loss cannot
        roll the store back behind what they recorded.  Syncs one stream's
        log or every log when ``name`` is ``None``.
        """
        self.flush()
        entries = [self.describe(name)] if name is not None else self.streams()
        for entry in entries:
            self._fsync_path(self._entry_path(entry))
        self._fsync_path(self._catalog_path)
        if not self._read_only:
            self._journal.sync()
            self._fsync_path(self._journal.path)
            faults.fsync_dir(self._directory)

    @staticmethod
    def _fsync_path(path: Path) -> None:
        if not path.exists():
            return
        descriptor = os.open(path, os.O_RDONLY)
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def refresh(self) -> int:
        """Re-pin a snapshot reader to the latest durable catalog state.

        Reloads the checkpoint, replays the journal tail (ignoring any torn
        suffix a concurrent writer is mid-way through) and clamps the index
        to the bytes on disk.  Returns the newly pinned generation.  On a
        writer this just flushes and returns the current generation.
        """
        if not self._read_only:
            self.flush()
            return self._generation
        self._load_streams(self._load_checkpoint())
        self._replay_journal()
        self._recover()
        return self._generation

    def close(self) -> None:
        """Flush pending catalog changes and drop the writer lock."""
        self.flush()
        self._journal.close()
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _entry_path(self, entry: StoredStream) -> Path:
        return self._directory / entry.filename

    def _log_path(self, name: str) -> Path:
        """Log path of a stream already in the catalog."""
        return self._entry_path(self.describe(name))

    def _require_writable(self) -> None:
        if self._read_only:
            raise PermissionError(
                f"store at {self._directory} is open read-only (mode='r')"
            )

    def _journal_upsert(self, name: str) -> None:
        entry = self._catalog[name]
        self._journal.append(
            self._generation,
            {"op": "upsert", "stream": name, "entry": entry.to_dict()},
            durable=self._durable,
        )

    def _mark_dirty(self, name: Optional[str] = None) -> None:
        """Record one persisted-state mutation (write-ahead).

        Autoflush stores checkpoint immediately (the seed's write-through
        behaviour).  Batched stores journal the mutated stream's full entry
        right away — the cheap O(entry) append that makes the state visible
        to snapshot readers and replayable after a crash — and defer the
        O(catalog) checkpoint to :meth:`flush` (or to the journal growing
        past ``journal_limit``).  Snapshot readers may mutate in-memory
        caches (summary backfill, pyramids) but never persist: no-op.
        """
        if self._read_only:
            return
        self._generation += 1
        self._stale = True
        if self._autoflush:
            self.flush()
            return
        if name is not None and name in self._catalog:
            self._journal_upsert(name)
            if self._journal.size() >= self._journal_limit:
                self.flush()
