"""Append-only, file-backed store for compressed streams.

A :class:`SegmentStore` manages a directory holding one append-only log per
named stream.  Each log record is one transmitted
:class:`~repro.core.types.Recording` (kind, time, values) encoded with the
binary codec from :mod:`repro.approximation.encoding`; a small JSON catalog
keeps per-stream metadata (dimensions, recording count, time span, the
precision width it was compressed with).

The store is deliberately simple — a faithful stand-in for the "repository
used for storing the monitoring data" of the paper's introduction — but it is
a real, durable store: streams survive re-opening the directory, appends are
flushed per batch, and reads can be restricted to a time range without
decoding the whole log.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.approximation.reconstruct import reconstruct
from repro.core.types import Recording, RecordingKind

__all__ = ["SegmentStore", "StoredStream"]

_RECORD_KINDS = {
    RecordingKind.SEGMENT_START: 0,
    RecordingKind.SEGMENT_END: 1,
    RecordingKind.HOLD: 2,
}
_KIND_BY_CODE = {code: kind for kind, code in _RECORD_KINDS.items()}


@dataclass
class StoredStream:
    """Catalog entry of one stream held by the store.

    Attributes:
        name: Stream identifier.
        dimensions: Dimensionality of the stored values.
        recordings: Number of recordings appended so far.
        first_time: Time of the earliest recording (``None`` when empty).
        last_time: Time of the latest recording (``None`` when empty).
        epsilon: Precision width the stream was compressed with (optional,
            informational).
    """

    name: str
    dimensions: int
    recordings: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    epsilon: Optional[List[float]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "dimensions": self.dimensions,
            "recordings": self.recordings,
            "first_time": self.first_time,
            "last_time": self.last_time,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StoredStream":
        return cls(
            name=str(payload["name"]),
            dimensions=int(payload["dimensions"]),
            recordings=int(payload["recordings"]),
            first_time=payload.get("first_time"),
            last_time=payload.get("last_time"),
            epsilon=payload.get("epsilon"),
        )


class SegmentStore:
    """Directory-backed repository of compressed streams.

    Args:
        directory: Directory holding the catalog and the per-stream logs; it
            is created if missing.
    """

    CATALOG_NAME = "catalog.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._catalog_path = self._directory / self.CATALOG_NAME
        self._catalog: Dict[str, StoredStream] = {}
        if self._catalog_path.exists():
            payload = json.loads(self._catalog_path.read_text())
            for entry in payload.get("streams", []):
                stream = StoredStream.from_dict(entry)
                self._catalog[stream.name] = stream

    # ------------------------------------------------------------------ #
    # Catalog
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._directory

    def streams(self) -> List[StoredStream]:
        """Return the catalog entries sorted by stream name."""
        return [self._catalog[name] for name in sorted(self._catalog)]

    def stream_names(self) -> List[str]:
        """Return the stored stream names, sorted."""
        return sorted(self._catalog)

    def describe(self, name: str) -> StoredStream:
        """Return the catalog entry for ``name``.

        Raises:
            KeyError: If the stream does not exist.
        """
        try:
            return self._catalog[name]
        except KeyError:
            raise KeyError(f"unknown stream {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        name: str,
        recordings: Iterable[Recording],
        epsilon: Optional[Sequence[float]] = None,
    ) -> StoredStream:
        """Append recordings to a stream (creating the stream if needed).

        Recordings must be appended in time order (within and across calls).

        Raises:
            ValueError: If the recordings are out of order or their
                dimensionality differs from the stream's.
        """
        records = list(recordings)
        if not records:
            return self._catalog.get(name) or self._register(name, 1, epsilon)
        dimensions = records[0].dimensions
        entry = self._catalog.get(name)
        if entry is None:
            entry = self._register(name, dimensions, epsilon)
        if entry.dimensions != dimensions:
            raise ValueError(
                f"stream {name!r} holds {entry.dimensions}-dimensional values, "
                f"got {dimensions}-dimensional recordings"
            )
        packer = struct.Struct(f"<Bd{dimensions}d")
        last_time = entry.last_time
        with open(self._log_path(name), "ab") as log:
            for record in records:
                if record.dimensions != dimensions:
                    raise ValueError("recordings must share one dimensionality")
                if last_time is not None and record.time < last_time:
                    raise ValueError(
                        f"recordings must be appended in time order; got {record.time!r} "
                        f"after {last_time!r}"
                    )
                last_time = record.time
                log.write(
                    packer.pack(_RECORD_KINDS[record.kind], record.time, *map(float, record.value))
                )
        entry.recordings += len(records)
        if entry.first_time is None:
            entry.first_time = records[0].time
        entry.last_time = last_time
        if epsilon is not None:
            entry.epsilon = [float(value) for value in np.atleast_1d(epsilon)]
        self._save_catalog()
        return entry

    def _register(self, name: str, dimensions: int, epsilon) -> StoredStream:
        entry = StoredStream(
            name=name,
            dimensions=dimensions,
            epsilon=[float(v) for v in np.atleast_1d(epsilon)] if epsilon is not None else None,
        )
        self._catalog[name] = entry
        self._log_path(name).touch()
        self._save_catalog()
        return entry

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Recording]:
        """Read a stream's recordings, optionally restricted to a time range.

        The range filter keeps one recording before ``start`` when available,
        so the returned recordings still describe the approximation over the
        whole requested range.
        """
        entry = self.describe(name)
        packer = struct.Struct(f"<Bd{entry.dimensions}d")
        recordings: List[Recording] = []
        payload = self._log_path(name).read_bytes()
        for offset in range(0, len(payload), packer.size):
            fields = packer.unpack_from(payload, offset)
            recordings.append(
                Recording(fields[1], np.asarray(fields[2:], dtype=float), _KIND_BY_CODE[fields[0]])
            )
        if start is None and end is None:
            return recordings
        filtered: List[Recording] = []
        previous: Optional[Recording] = None
        for record in recordings:
            if start is not None and record.time < start:
                previous = record
                continue
            if end is not None and record.time > end:
                # Flush the covering recording first: the requested range may
                # fall strictly inside one segment, in which case `previous`
                # is still pending here.
                if previous is not None:
                    filtered.append(previous)
                    previous = None
                filtered.append(record)
                break
            if previous is not None:
                filtered.append(previous)
                previous = None
            filtered.append(record)
        if not filtered and previous is not None:
            filtered.append(previous)
        return filtered

    def reconstruct(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Approximation:
        """Rebuild the stored approximation (optionally over a time range)."""
        recordings = self.read(name, start, end)
        return reconstruct(recordings)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def delete(self, name: str) -> None:
        """Remove a stream and its log file.

        Raises:
            KeyError: If the stream does not exist.
        """
        self.describe(name)
        self._log_path(name).unlink(missing_ok=True)
        del self._catalog[name]
        self._save_catalog()

    def total_bytes(self) -> int:
        """Total size of all stream logs on disk."""
        return sum(self._log_path(name).stat().st_size for name in self._catalog)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _log_path(self, name: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
        return self._directory / f"{safe}.seg"

    def _save_catalog(self) -> None:
        payload = {"streams": [entry.to_dict() for entry in self._catalog.values()]}
        self._catalog_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
