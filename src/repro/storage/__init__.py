"""Persistent storage of compressed streams.

The monitoring scenario of the paper keeps the recordings — not the raw data
points — in a repository for later offline analysis.  This subpackage
provides that repository as a small storage engine:

* :class:`~repro.storage.segment_store.SegmentStore` — an append-only,
  file-backed store holding one compressed series per named stream, with
  block-indexed time-range retrieval, vectorized decode, batched catalog
  persistence and reconstruction back into an evaluable approximation.
* :class:`~repro.storage.sharded_store.ShardedStore` — the same public API,
  hash-partitioning stream names across N shard stores with a unified
  catalog view and parallel multi-stream range reads.
* :mod:`~repro.storage.backends` — the pluggable byte-level backends behind
  both: row-oriented block logs (default) and the columnar mmap layout.
* :func:`open_store` — open whichever of the two lives at a directory,
  including read-only snapshot handles (``mode="r"``, ``snapshot=True``)
  that pin a catalog generation while another process keeps appending.
* :func:`~repro.storage.migrate.migrate_store` — atomically rewrite a store
  into the other backend.
* :func:`~repro.storage.verify.verify_store` — offline integrity check
  (catalog/journal generations, block headers, index extents, summary and
  pyramid parity) with optional repair to the last consistent prefix.
"""

from pathlib import Path
from typing import Optional, Union

from repro.storage.backends import (
    BlockLogBackend,
    ColumnarBackend,
    StorageBackend,
    available_backends,
    get_backend,
)
from repro.storage.lock import LOCK_NAME, StoreLock, StoreLockedError
from repro.storage.migrate import (
    MigrationReport,
    migrate_store,
    recover_interrupted_migration,
)
from repro.storage.segment_store import SegmentStore, StoredStream
from repro.storage.sharded_store import DEFAULT_SHARDS, ShardedStore, shard_index
from repro.storage.verify import StreamCheck, VerifyReport, verify_store

__all__ = [
    "SegmentStore",
    "StoredStream",
    "ShardedStore",
    "DEFAULT_SHARDS",
    "shard_index",
    "StorageBackend",
    "BlockLogBackend",
    "ColumnarBackend",
    "get_backend",
    "available_backends",
    "MigrationReport",
    "migrate_store",
    "recover_interrupted_migration",
    "StreamCheck",
    "VerifyReport",
    "verify_store",
    "LOCK_NAME",
    "StoreLock",
    "StoreLockedError",
    "StoreLike",
    "open_store",
]

#: Anything with the segment-store public API (append/read/reconstruct/...).
StoreLike = Union[SegmentStore, ShardedStore]


def open_store(
    directory: Union[str, Path],
    shards: Optional[int] = None,
    **options,
) -> StoreLike:
    """Open (or create) the store living at ``directory``.

    An existing sharded store is reopened as a :class:`ShardedStore`
    (validating ``shards`` when given); an existing plain store as a
    :class:`SegmentStore`.  A fresh directory becomes a sharded store when
    ``shards`` is given and a plain store otherwise.  Extra keyword options
    (``autoflush``, ``backend``, ``block_records``, ``mode``, ``snapshot``,
    ``durable``) are forwarded — ``mode="r", snapshot=True`` opens a
    generation-pinned snapshot reader that is safe while another process
    appends.

    Raises:
        ValueError: If ``shards`` is requested for an existing unsharded
            store, or disagrees with an existing sharded store's count.
    """
    path = Path(directory)
    if (path / ShardedStore.META_NAME).exists():
        return ShardedStore(path, shards, **options)
    if shards is not None:
        if (path / SegmentStore.CATALOG_NAME).exists():
            raise ValueError(
                f"store at {str(path)!r} is not sharded; open it without `shards`"
            )
        return ShardedStore(path, shards, **options)
    return SegmentStore(path, **options)
