"""Persistent storage of compressed streams.

The monitoring scenario of the paper keeps the recordings — not the raw data
points — in a repository for later offline analysis.  This subpackage
provides that repository:

* :class:`~repro.storage.segment_store.SegmentStore` — an append-only,
  file-backed store holding one compressed series per named stream, with
  time-range retrieval and reconstruction back into an evaluable
  approximation.
"""

from repro.storage.segment_store import SegmentStore, StoredStream

__all__ = ["SegmentStore", "StoredStream"]
