"""Hash-partitioned store spreading streams across several segment stores.

A :class:`ShardedStore` presents the same public API as a single
:class:`~repro.storage.segment_store.SegmentStore` but hash-partitions
stream names across ``N`` shard stores, each in its own subdirectory.  The
shard of a stream is a stable function of its name (BLAKE2 digest modulo the
shard count), so a store can be reopened — or grown by other writers — and
every stream is found where it was written.  The shard count itself is
pinned in a small ``shards.json`` meta file and validated on reopen.

Shards are plain segment stores: the catalog/``streams()``/``total_bytes()``
views here merge the per-shard catalogs, and :meth:`read_many` fans a
multi-stream range read out across the shards in parallel.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.types import Recording
from repro.storage.backends.base import DimsLike, StorageBackend, get_backend
from repro.storage.segment_store import SegmentStore, StoredStream, read_streams_job

__all__ = ["ShardedStore", "DEFAULT_SHARDS", "shard_index"]

#: Default shard count for new sharded stores.
DEFAULT_SHARDS = 4


def shard_index(name: str, shards: int) -> int:
    """Stable shard of a stream name (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class ShardedStore:
    """Sharded repository of compressed streams.

    Args:
        directory: Root directory; shards live in ``shard-NN`` subdirectories.
        shards: Shard count for a new store.  For an existing store it may be
            omitted; when given it must match the persisted count.
        autoflush: Forwarded to every shard store.
        backend: Storage backend name or instance, forwarded to every shard.
            ``None`` (default) reuses the backend persisted in
            ``shards.json`` on reopen; an explicit contradiction raises.
        block_records: Block index granularity, forwarded to every shard.
        mode: ``"w"`` (default) or ``"r"``; a read-only open pins every
            shard to a snapshot (see ``SegmentStore``) and never creates
            or writes ``shards.json``.
        snapshot: Snapshot-reader alias flag, forwarded to every shard
            (requires ``mode="r"``).
        durable: Forwarded to every shard (fsync-per-persisted-mutation).

    Raises:
        ValueError: If ``shards`` is not positive, or disagrees with the
            shard count the store was created with; or if ``backend``
            contradicts the backend the store was created with.
    """

    META_NAME = "shards.json"

    def __init__(
        self,
        directory: Union[str, Path],
        shards: Optional[int] = None,
        *,
        autoflush: bool = True,
        backend: Union[StorageBackend, str, None] = None,
        block_records: Optional[int] = None,
        mode: str = "w",
        snapshot: bool = False,
        durable: bool = False,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        self._directory = Path(directory)
        self._read_only = mode == "r"
        meta_path = self._directory / self.META_NAME
        requested = backend.name if isinstance(backend, StorageBackend) else backend
        if self._read_only and not meta_path.exists():
            raise FileNotFoundError(f"no sharded store at {self._directory}")
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            persisted = int(meta["shards"])
            if shards is not None and shards != persisted:
                raise ValueError(
                    f"store at {str(self._directory)!r} has {persisted} shards, "
                    f"requested {shards}"
                )
            shards = persisted
            persisted_backend = meta.get("backend")
            if persisted_backend is not None:
                if requested is not None and requested != persisted_backend:
                    raise ValueError(
                        f"store at {str(self._directory)!r} was written by the "
                        f"{persisted_backend!r} backend; opening it with "
                        f"{requested!r} would corrupt it (use `repro migrate` "
                        f"to convert)"
                    )
                if backend is None:
                    backend = persisted_backend
            # Legacy meta without a backend key: the shard catalogs carry
            # their own backend field, so each shard auto-detects below.
        else:
            shards = DEFAULT_SHARDS if shards is None else shards
            # Validate the name before pinning it (raises on unknown names).
            pinned = requested if requested is not None else "block-log"
            if requested is not None and not isinstance(backend, StorageBackend):
                pinned = get_backend(requested).name
            self._directory.mkdir(parents=True, exist_ok=True)
            meta_path.write_text(
                json.dumps({"version": 1, "shards": shards, "backend": pinned})
            )
        self._shard_count = shards
        # Writer mode locks every shard directory (each shard store takes its
        # own `store.lock`); if a later shard turns out to be held by another
        # process, release the ones already acquired before propagating.
        self._shards: List[SegmentStore] = []
        try:
            for index in range(shards):
                self._shards.append(
                    SegmentStore(
                        self._directory / f"shard-{index:02d}",
                        autoflush=autoflush,
                        backend=backend,
                        block_records=block_records,
                        mode=mode,
                        snapshot=snapshot,
                        durable=durable,
                    )
                )
        except BaseException:
            for shard in self._shards:
                shard.close()
            raise

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The root directory."""
        return self._directory

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return self._shard_count

    @property
    def shards(self) -> Tuple[SegmentStore, ...]:
        """The underlying shard stores, in shard order."""
        return tuple(self._shards)

    def shard_for(self, name: str) -> SegmentStore:
        """The shard store responsible for ``name``."""
        return self._shards[shard_index(name, self._shard_count)]

    @property
    def mode(self) -> str:
        """``"r"`` for a snapshot reader, ``"w"`` for a writer."""
        return "r" if self._read_only else "w"

    @property
    def read_only(self) -> bool:
        """Whether this handle is a read-only snapshot."""
        return self._read_only

    @property
    def generation(self) -> Tuple[int, ...]:
        """Per-shard pinned/persisted catalog generations, in shard order."""
        return tuple(shard.generation for shard in self._shards)

    def refresh(self) -> Tuple[int, ...]:
        """Re-pin every shard's snapshot (see ``SegmentStore.refresh``)."""
        return tuple(shard.refresh() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Catalog (unified view)
    # ------------------------------------------------------------------ #
    def streams(self) -> List[StoredStream]:
        """All catalog entries across shards, sorted by stream name."""
        merged = [entry for shard in self._shards for entry in shard.streams()]
        return sorted(merged, key=lambda entry: entry.name)

    def stream_names(self) -> List[str]:
        """All stored stream names across shards, sorted."""
        return sorted(name for shard in self._shards for name in shard.stream_names())

    def describe(self, name: str) -> StoredStream:
        """Catalog entry for ``name`` (raises ``KeyError`` when unknown)."""
        return self.shard_for(name).describe(name)

    def __contains__(self, name: str) -> bool:
        return name in self.shard_for(name)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        name: str,
        recordings: Iterable[Recording],
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Append recordings to ``name``'s shard (see ``SegmentStore.append``)."""
        return self.shard_for(name).append(name, recordings, epsilon=epsilon)

    def append_arrays(
        self,
        name: str,
        times,
        values,
        kinds=None,
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Vectorized bulk append (see ``SegmentStore.append_arrays``)."""
        return self.shard_for(name).append_arrays(
            name, times, values, kinds=kinds, epsilon=epsilon
        )

    def ensure_stream(
        self,
        name: str,
        dimensions: int,
        epsilon: Optional[Sequence[float]] = None,
    ) -> StoredStream:
        """Register an empty stream (see ``SegmentStore.ensure_stream``)."""
        return self.shard_for(name).ensure_stream(name, dimensions, epsilon=epsilon)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> List[Recording]:
        """Range read of one stream (see ``SegmentStore.read``)."""
        return self.shard_for(name).read(name, start, end, dims=dims)

    def read_arrays(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        dims: DimsLike = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Range read as arrays (see ``SegmentStore.read_arrays``)."""
        return self.shard_for(name).read_arrays(name, start, end, dims=dims)

    def reconstruct(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Approximation:
        """Rebuild one stored approximation (see ``SegmentStore.reconstruct``)."""
        return self.shard_for(name).reconstruct(name, start, end)

    def summary_range(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[list]:
        """Block-summary index of one stream (see ``SegmentStore.summary_range``)."""
        return self.shard_for(name).summary_range(name, start, end)

    def read_block_arrays(
        self, name: str, lo: int, hi: int, dims: DimsLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode index blocks verbatim (see ``SegmentStore.read_block_arrays``)."""
        return self.shard_for(name).read_block_arrays(name, lo, hi, dims=dims)

    def pyramid_levels(self, name: str) -> List[List[list]]:
        """Zoom pyramid of one stream (see ``SegmentStore.pyramid_levels``)."""
        return self.shard_for(name).pyramid_levels(name)

    def read_many(
        self,
        names: Iterable[str],
        start: Optional[float] = None,
        end: Optional[float] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        dims: DimsLike = None,
    ) -> Dict[str, List[Recording]]:
        """Range-read several streams, fanning out across shards in parallel.

        Returns a dict mapping each requested name to its recordings.  Reads
        of streams on different shards run concurrently, one worker per
        involved shard.  With ``executor="thread"`` (default) the workers are
        threads sharing this process's shard stores; ``executor="process"``
        dispatches each shard's reads to a worker process that reopens the
        shard read-only, so decode-heavy reads escape the GIL.  A
        single-shard request on the thread path degrades to a serial loop.

        Raises:
            ValueError: For an unknown ``executor``.
            KeyError: If any requested stream does not exist.
        """
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        by_shard: Dict[int, List[str]] = {}
        for name in names:
            self.describe(name)  # fail fast, before any worker spins up
            by_shard.setdefault(shard_index(name, self._shard_count), []).append(name)

        results: Dict[str, List[Recording]] = {}
        if executor == "process" and by_shard:
            self.flush()  # worker processes reopen the shards from disk
            with ProcessPoolExecutor(max_workers=min(len(by_shard), max_workers or len(by_shard))) as pool:
                futures = [
                    pool.submit(
                        read_streams_job,
                        str(self._shards[index].directory),
                        shard_names,
                        start,
                        end,
                        self._shards[index].backend.name,
                        dims,
                    )
                    for index, shard_names in by_shard.items()
                ]
                for future in futures:
                    results.update(future.result())
            return results

        def read_shard(index: int) -> List[Tuple[str, List[Recording]]]:
            shard = self._shards[index]
            return [
                (name, shard.read(name, start, end, dims=dims))
                for name in by_shard[index]
            ]

        if len(by_shard) <= 1:
            batches = [read_shard(index) for index in by_shard]
        else:
            workers = min(len(by_shard), max_workers or len(by_shard))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batches = list(pool.map(read_shard, by_shard))
        for batch in batches:
            results.update(batch)
        return results

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def truncate_stream(self, name: str, keep_records: int) -> StoredStream:
        """Roll one stream back (see ``SegmentStore.truncate_stream``)."""
        return self.shard_for(name).truncate_stream(name, keep_records)

    def compact(self, name: Optional[str] = None) -> Dict[str, Tuple[int, int]]:
        """Compact one stream — or every stream on every shard.

        Returns ``{stream: (blocks_before, blocks_after)}`` for the streams
        whose index was rebuilt (see ``SegmentStore.compact``).
        """
        if name is not None:
            return self.shard_for(name).compact(name)
        rebuilt: Dict[str, Tuple[int, int]] = {}
        for shard in self._shards:
            rebuilt.update(shard.compact())
        return rebuilt

    def delete(self, name: str) -> None:
        """Remove a stream (raises ``KeyError`` when unknown)."""
        self.shard_for(name).delete(name)

    def total_bytes(self) -> int:
        """Total size of all stream logs across all shards."""
        return sum(shard.total_bytes() for shard in self._shards)

    def flush(self) -> None:
        """Persist pending catalog changes on every shard."""
        for shard in self._shards:
            shard.flush()

    def sync(self, name: Optional[str] = None) -> None:
        """Fsync one stream's shard — or every shard (see ``SegmentStore.sync``)."""
        if name is not None:
            self.shard_for(name).sync(name)
        else:
            for shard in self._shards:
                shard.sync()

    def close(self) -> None:
        """Flush every shard."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
