"""Hash-partitioned store spreading streams across several segment stores.

A :class:`ShardedStore` presents the same public API as a single
:class:`~repro.storage.segment_store.SegmentStore` but hash-partitions
stream names across ``N`` shard stores, each in its own subdirectory.  The
shard of a stream is a stable function of its name (BLAKE2 digest modulo the
shard count), so a store can be reopened — or grown by other writers — and
every stream is found where it was written.  The shard count itself is
pinned in a small ``shards.json`` meta file and validated on reopen.

Shards are plain segment stores: the catalog/``streams()``/``total_bytes()``
views here merge the per-shard catalogs, and :meth:`read_many` fans a
multi-stream range read out across the shards in parallel.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.types import Recording
from repro.storage.backends.base import StorageBackend
from repro.storage.segment_store import SegmentStore, StoredStream

__all__ = ["ShardedStore", "DEFAULT_SHARDS", "shard_index"]

#: Default shard count for new sharded stores.
DEFAULT_SHARDS = 4


def shard_index(name: str, shards: int) -> int:
    """Stable shard of a stream name (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class ShardedStore:
    """Sharded repository of compressed streams.

    Args:
        directory: Root directory; shards live in ``shard-NN`` subdirectories.
        shards: Shard count for a new store.  For an existing store it may be
            omitted; when given it must match the persisted count.
        autoflush: Forwarded to every shard store.
        backend: Storage backend name or instance, forwarded to every shard.
        block_records: Block index granularity, forwarded to every shard.

    Raises:
        ValueError: If ``shards`` is not positive, or disagrees with the
            shard count the store was created with.
    """

    META_NAME = "shards.json"

    def __init__(
        self,
        directory: Union[str, Path],
        shards: Optional[int] = None,
        *,
        autoflush: bool = True,
        backend: Union[StorageBackend, str, None] = None,
        block_records: Optional[int] = None,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self._directory = Path(directory)
        meta_path = self._directory / self.META_NAME
        if meta_path.exists():
            persisted = int(json.loads(meta_path.read_text())["shards"])
            if shards is not None and shards != persisted:
                raise ValueError(
                    f"store at {str(self._directory)!r} has {persisted} shards, "
                    f"requested {shards}"
                )
            shards = persisted
        else:
            shards = DEFAULT_SHARDS if shards is None else shards
            self._directory.mkdir(parents=True, exist_ok=True)
            meta_path.write_text(json.dumps({"version": 1, "shards": shards}))
        self._shard_count = shards
        self._shards = [
            SegmentStore(
                self._directory / f"shard-{index:02d}",
                autoflush=autoflush,
                backend=backend,
                block_records=block_records,
            )
            for index in range(shards)
        ]

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The root directory."""
        return self._directory

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return self._shard_count

    @property
    def shards(self) -> Tuple[SegmentStore, ...]:
        """The underlying shard stores, in shard order."""
        return tuple(self._shards)

    def shard_for(self, name: str) -> SegmentStore:
        """The shard store responsible for ``name``."""
        return self._shards[shard_index(name, self._shard_count)]

    # ------------------------------------------------------------------ #
    # Catalog (unified view)
    # ------------------------------------------------------------------ #
    def streams(self) -> List[StoredStream]:
        """All catalog entries across shards, sorted by stream name."""
        merged = [entry for shard in self._shards for entry in shard.streams()]
        return sorted(merged, key=lambda entry: entry.name)

    def stream_names(self) -> List[str]:
        """All stored stream names across shards, sorted."""
        return sorted(name for shard in self._shards for name in shard.stream_names())

    def describe(self, name: str) -> StoredStream:
        """Catalog entry for ``name`` (raises ``KeyError`` when unknown)."""
        return self.shard_for(name).describe(name)

    def __contains__(self, name: str) -> bool:
        return name in self.shard_for(name)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        name: str,
        recordings: Iterable[Recording],
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Append recordings to ``name``'s shard (see ``SegmentStore.append``)."""
        return self.shard_for(name).append(name, recordings, epsilon=epsilon)

    def append_arrays(
        self,
        name: str,
        times,
        values,
        kinds=None,
        epsilon: Optional[Sequence[float]] = None,
    ) -> Optional[StoredStream]:
        """Vectorized bulk append (see ``SegmentStore.append_arrays``)."""
        return self.shard_for(name).append_arrays(
            name, times, values, kinds=kinds, epsilon=epsilon
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def read(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Recording]:
        """Range read of one stream (see ``SegmentStore.read``)."""
        return self.shard_for(name).read(name, start, end)

    def read_arrays(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Range read as arrays (see ``SegmentStore.read_arrays``)."""
        return self.shard_for(name).read_arrays(name, start, end)

    def reconstruct(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Approximation:
        """Rebuild one stored approximation (see ``SegmentStore.reconstruct``)."""
        return self.shard_for(name).reconstruct(name, start, end)

    def read_many(
        self,
        names: Iterable[str],
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Dict[str, List[Recording]]:
        """Range-read several streams, fanning out across shards in parallel.

        Returns a dict mapping each requested name to its recordings.  Reads
        of streams on different shards run concurrently (one worker per
        involved shard); a single-shard request degrades to a serial loop.
        """
        by_shard: Dict[int, List[str]] = {}
        for name in names:
            by_shard.setdefault(shard_index(name, self._shard_count), []).append(name)

        def read_shard(index: int) -> List[Tuple[str, List[Recording]]]:
            shard = self._shards[index]
            return [(name, shard.read(name, start, end)) for name in by_shard[index]]

        results: Dict[str, List[Recording]] = {}
        if len(by_shard) <= 1:
            batches = [read_shard(index) for index in by_shard]
        else:
            with ThreadPoolExecutor(max_workers=len(by_shard)) as executor:
                batches = list(executor.map(read_shard, by_shard))
        for batch in batches:
            results.update(batch)
        return results

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def delete(self, name: str) -> None:
        """Remove a stream (raises ``KeyError`` when unknown)."""
        self.shard_for(name).delete(name)

    def total_bytes(self) -> int:
        """Total size of all stream logs across all shards."""
        return sum(shard.total_bytes() for shard in self._shards)

    def flush(self) -> None:
        """Persist pending catalog changes on every shard."""
        for shard in self._shards:
            shard.flush()

    def close(self) -> None:
        """Flush every shard."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
