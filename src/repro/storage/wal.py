"""Write-ahead catalog journal.

The store's catalog (stream entries, block indexes, summaries, pyramid
levels, backend metadata) used to be persisted only as a whole-file JSON
rewrite.  This module makes the JSON catalog a periodic *checkpoint* of an
append-only journal: every catalog mutation is appended as a checksummed,
generation-numbered record, and recovery replays the journal tail on top
of the last checkpoint, discarding any torn or checksum-failed suffix.
A crash at any instruction therefore leaves a readable consistent prefix:

* records are framed ``<u32 length><u32 crc32><u64 generation><payload>``
  with the CRC computed over generation + payload — a torn append fails
  either the length bound or the checksum and replay stops there;
* generations increase strictly; replay also stops on a non-increasing
  generation (stale bytes from a recycled file can never be replayed);
* the journal is rotated by atomically replacing it with a fresh file
  (plus a directory fsync) only *after* the checkpoint itself has been
  atomically replaced — a crash between the two replays harmlessly
  re-applies records the checkpoint already contains (replay skips
  records whose generation is not beyond the checkpoint's).

Payloads are JSON objects: ``{"op": "upsert", "stream": name, "entry":
{...}}`` re-registers or updates one stream's full catalog entry, and
``{"op": "delete", "stream": name}`` removes it.  Durability of each
append is the caller's choice (``durable=True`` fsyncs); consistency of
the recovered prefix holds either way.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import IO, List, Optional, Tuple

from repro.testing import faults

__all__ = ["JOURNAL_NAME", "JournalRecord", "CatalogJournal", "scan_journal"]

#: File name of the catalog journal inside a store directory.
JOURNAL_NAME = "catalog.wal"

_FRAME = struct.Struct("<IIQ")  # payload length, crc32, generation


JournalRecord = Tuple[int, dict]  # (generation, payload)


def _checksum(generation: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(struct.pack("<Q", generation))) & 0xFFFFFFFF


def encode_record(generation: int, payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(body), _checksum(generation, body), generation) + body


def scan_journal(path: Path) -> Tuple[List[JournalRecord], int, int]:
    """Parse a journal file into its longest consistent prefix.

    Returns ``(records, consistent_end, total_size)`` where
    ``consistent_end`` is the byte offset after the last valid record —
    everything beyond it is a torn/corrupt suffix a writer should truncate
    away (readers simply ignore it).
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    records: List[JournalRecord] = []
    offset = 0
    previous_generation = -1
    while offset + _FRAME.size <= len(data):
        length, crc, generation = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        body_end = body_start + length
        if body_end > len(data):
            break  # torn tail: the payload never fully landed
        body = data[body_start:body_end]
        if _checksum(generation, body) != crc:
            break  # bit rot or a torn header — nothing beyond is trusted
        if generation <= previous_generation:
            break  # recycled bytes from an older journal incarnation
        try:
            payload = json.loads(body.decode("utf-8"))
        except ValueError:
            break
        records.append((generation, payload))
        previous_generation = generation
        offset = body_end
    return records, offset, len(data)


class CatalogJournal:
    """Appendable, replayable catalog journal for one store directory."""

    def __init__(self, directory: Path, *, read_only: bool = False) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.read_only = read_only
        self._handle: Optional[IO[bytes]] = None

    # -- replay -------------------------------------------------------------
    def replay(self, after_generation: int, *, repair: bool = True) -> List[JournalRecord]:
        """Records beyond ``after_generation``, torn suffix discarded.

        With ``repair`` (writer mode) a torn suffix is also truncated off
        the file so subsequent appends extend the consistent prefix.
        """
        records, consistent_end, total = scan_journal(self.path)
        if repair and not self.read_only and consistent_end < total:
            with open(self.path, "r+b") as handle:
                faults.truncate(handle, consistent_end, path=self.path)
                faults.fsync(handle, path=self.path)
        return [(gen, payload) for gen, payload in records if gen > after_generation]

    def last_generation(self, floor: int = 0) -> int:
        records, _, _ = scan_journal(self.path)
        return max([floor] + [gen for gen, _ in records])

    # -- append -------------------------------------------------------------
    def append(self, generation: int, payload: dict, *, durable: bool = False) -> None:
        if self.read_only:
            raise PermissionError("journal opened read-only")
        handle = self._open()
        faults.write(handle, encode_record(generation, payload), path=self.path)
        if durable:
            faults.fsync(handle, path=self.path)
        else:
            handle.flush()

    def sync(self) -> None:
        """fsync any appended records (no-op if nothing was appended)."""
        if self._handle is not None:
            faults.fsync(self._handle, path=self.path)

    def size(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    # -- rotation -----------------------------------------------------------
    def reset(self) -> None:
        """Atomically replace the journal with a fresh empty file.

        Called right after a successful catalog checkpoint.  The fresh
        file is a new inode, so a concurrent reader that already opened
        the old journal keeps its consistent view.
        """
        if self.read_only:
            raise PermissionError("journal opened read-only")
        self.close()
        staging = self.path.with_suffix(".wal.new")
        with open(staging, "wb") as handle:
            faults.fsync(handle, path=staging)
        faults.replace(staging, self.path)
        faults.fsync_dir(self.directory)

    # -- lifecycle ----------------------------------------------------------
    def _open(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CatalogJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
