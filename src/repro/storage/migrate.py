"""Atomic store migration between storage backends.

``migrate_store`` rewrites an existing store — plain or sharded — into a
different registered backend.  The rewrite happens in a staging directory
next to the store; every stream is verified to read back bit-identically
before the directories are swapped, and the swap itself is two renames, so
an interrupted migration leaves the original store untouched.

A *hard* crash (power loss, ``os._exit``) between the two renames leaves no
store at the canonical path; :func:`recover_interrupted_migration` resolves
any such half-state from the ``.migrate-old`` / ``.migrate-tmp`` leftovers —
it restores the original when the swap never completed and finishes the
cleanup when it did.  ``migrate_store`` runs it automatically on entry.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.testing import faults
from repro.storage.backends.base import get_backend
from repro.storage.segment_store import SegmentStore
from repro.storage.sharded_store import ShardedStore

__all__ = ["MigrationReport", "migrate_store", "recover_interrupted_migration"]

#: Index blocks copied per append batch while rewriting a stream.
_BLOCKS_PER_BATCH = 64


@dataclass
class MigrationReport:
    """Outcome of one :func:`migrate_store` call.

    Attributes:
        directory: The migrated store's directory.
        source: Backend name the store was read with.
        target: Backend name the store was rewritten into.
        streams: Number of streams carried over.
        recordings: Total recordings carried over.
        verified: Stream names whose round-trip read was checked
            bit-identically (every stream, unless ``verify=False``).
        changed: ``False`` when the store already used the target backend
            and nothing was rewritten.
    """

    directory: Path
    source: str
    target: str
    streams: int = 0
    recordings: int = 0
    verified: List[str] = field(default_factory=list)
    changed: bool = True


def _open(directory: Path, **options):
    """Auto-detecting open (local twin of ``open_store``, import-cycle-free)."""
    if (directory / ShardedStore.META_NAME).exists():
        return ShardedStore(directory, **options)
    return SegmentStore(directory, **options)


def _copy_stream(source, target, entry, verify: bool) -> int:
    """Rewrite one stream into ``target``; returns its recording count."""
    name = entry.name
    target.ensure_stream(name, entry.dimensions, epsilon=entry.epsilon)
    blocks = source.describe(name).blocks
    copied = 0
    for lo in range(0, len(blocks), _BLOCKS_PER_BATCH):
        hi = min(lo + _BLOCKS_PER_BATCH, len(blocks))
        kinds, times, values = source.read_block_arrays(name, lo, hi)
        target.append_arrays(name, times, values, kinds=kinds)
        copied += times.shape[0]
    if verify:
        old = source.read_arrays(name)
        new = target.read_arrays(name)
        for before, after, what in zip(old, new, ("kinds", "times", "values")):
            if not np.array_equal(before, after):
                raise RuntimeError(
                    f"migration verification failed for stream {name!r}: "
                    f"{what} differ between backends"
                )
    return copied


def recover_interrupted_migration(directory: Union[str, Path]) -> Optional[str]:
    """Resolve the half-state a hard crash mid-:func:`migrate_store` leaves.

    The swap is ``rename(store -> .migrate-old)`` then
    ``rename(.migrate-tmp -> store)`` then ``rmtree(.migrate-old)``; a process
    kill can stop between any two of those.  This inspects which of the three
    directories exist and finishes or rolls back the swap:

    - store missing, backup present: the first rename landed but the second
      did not — restore the original (``"restored"``).  Any staging directory
      is removed; re-running the migration rebuilds it.
    - store and backup both present: the swap completed but cleanup did not —
      remove the backup (``"finalized"``).
    - store and stale staging present: the rewrite never reached the swap —
      remove the staging directory (``"cleaned"``).

    Returns the action taken, or ``None`` when there was nothing to repair.
    Safe to call on a healthy store; :func:`migrate_store` calls it on entry.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".migrate-tmp")
    backup = directory.with_name(directory.name + ".migrate-old")
    if not directory.exists():
        if not backup.exists():
            return None
        if staging.exists():
            shutil.rmtree(staging)
        faults.rename(backup, directory)
        faults.fsync_dir(directory.parent)
        return "restored"
    if backup.exists():
        shutil.rmtree(backup)
        return "finalized"
    if staging.exists():
        shutil.rmtree(staging)
        return "cleaned"
    return None


def migrate_store(
    directory: Union[str, Path],
    to: str,
    *,
    block_records: Optional[int] = None,
    verify: bool = True,
) -> MigrationReport:
    """Rewrite the store at ``directory`` into the ``to`` backend, atomically.

    The store is rebuilt — shard-by-shard for sharded stores, preserving the
    shard count — in a staging directory, each stream verified to read back
    bit-identically (unless ``verify=False``), then swapped in with two
    renames.  A store already on the target backend is left untouched
    (``report.changed`` is ``False``).

    Args:
        directory: Store directory (plain or sharded).
        to: Target backend registry name (e.g. ``"columnar"``,
            ``"block-log"``).
        block_records: Block granularity for the rewritten store (defaults
            to the target backend's default).
        verify: Compare every stream's full read between the old and new
            store before swapping.

    Raises:
        KeyError: If ``to`` names no registered backend.
        FileNotFoundError: If no store lives at ``directory``.
        RuntimeError: If verification finds a mismatch (the original store
            is left in place).
    """
    target_name = get_backend(to).name  # validate early, before any I/O
    directory = Path(directory)
    recover_interrupted_migration(directory)
    if not (directory / ShardedStore.META_NAME).exists() and not (
        directory / SegmentStore.CATALOG_NAME
    ).exists():
        raise FileNotFoundError(f"no store found at {directory}")
    source = _open(directory, autoflush=False)
    sharded = isinstance(source, ShardedStore)
    source_name = (
        source.shards[0].backend.name if sharded else source.backend.name
    )
    report = MigrationReport(
        directory=directory, source=source_name, target=target_name
    )
    if source_name == target_name:
        report.streams = len(source.stream_names())
        report.changed = False
        return report

    staging = directory.with_name(directory.name + ".migrate-tmp")
    backup = directory.with_name(directory.name + ".migrate-old")
    for leftover in (staging, backup):
        if leftover.exists():
            shutil.rmtree(leftover)
    try:
        options = {} if block_records is None else {"block_records": block_records}
        if sharded:
            target = ShardedStore(
                staging,
                source.shard_count,
                autoflush=False,
                backend=target_name,
                **options,
            )
        else:
            target = SegmentStore(
                staging, autoflush=False, backend=target_name, **options
            )
        for entry in source.streams():
            report.recordings += _copy_stream(source, target, entry, verify)
            report.streams += 1
            if verify:
                report.verified.append(entry.name)
        target.close()
        source.close()
        faults.crash_point("migrate.before_swap")
        faults.rename(directory, backup)
        faults.crash_point("migrate.between_renames")
        faults.rename(staging, directory)
        faults.crash_point("migrate.after_swap")
        faults.fsync_dir(directory.parent)
        shutil.rmtree(backup)
    except BaseException:
        if staging.exists() and directory.exists():
            shutil.rmtree(staging)
        elif backup.exists() and not directory.exists():
            # Crash between the two renames: put the original back.
            if staging.exists():
                shutil.rmtree(staging)
            backup.rename(directory)
        raise
    return report
