"""Writer lock files: one writing process per store directory, enforced.

The storage layer has always had a social contract — one writer per store
(or per shard) at a time — because two processes appending to the same log
would interleave records and corrupt the block index.  This module turns
that contract into a hard guarantee: a writer-mode
:class:`~repro.storage.segment_store.SegmentStore` acquires ``store.lock``
inside its directory before touching anything, and a second *process*
opening the same directory writable gets a
:class:`~repro.core.errors.StoreLockedError` instead of a corrupted store.

Mechanics:

* The lock file is created with ``O_CREAT | O_EXCL`` — atomic on every
  POSIX filesystem — and stamped with the holder's pid, hostname and
  creation time as JSON.
* **Within one process** the lock is reference-counted per resolved
  directory: the many code paths that legitimately hold several writer
  handles to one store in one process (tests, recovery re-opens, sink
  helpers) keep working exactly as before.  The file is removed when the
  last handle closes.
* **Staleness**: a lock whose pid is no longer alive on this host (the
  holder crashed or was killed) is reclaimed automatically.  A lock from
  another host — or an unreadable lock file — is conservatively treated as
  held.

Snapshot readers (``mode="r"``) never take the lock: many readers alongside
one writer is exactly the concurrency the write-ahead catalog supports.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.errors import StoreLockedError

__all__ = ["LOCK_NAME", "StoreLock", "StoreLockedError"]

#: Lock filename inside a store (or shard) directory.
LOCK_NAME = "store.lock"

#: Attempts at the create-exclusive / reclaim-stale cycle before giving up.
#: Two attempts handle the benign race of two processes reclaiming one
#: stale lock at once; more would only mask a livelock.
_ACQUIRE_ATTEMPTS = 3

# Per-process registry of held locks, keyed by resolved directory path.
# Guarded by _REGISTRY_LOCK: writer handles are opened from many threads
# (servers, thread-pool ingest helpers).
_REGISTRY: Dict[str, "StoreLock"] = {}
_REGISTRY_LOCK = threading.Lock()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours to signal
    except OSError:
        return True  # unknown — be conservative
    return True


class StoreLock:
    """A reference-counted, pid-stamped exclusive lock on one directory.

    Do not construct directly — use :meth:`acquire`, which returns the
    process-wide instance for the directory (creating the lock file on
    first acquisition) with its reference count bumped.  Every acquisition
    must be paired with one :meth:`release`.
    """

    def __init__(self, directory: Path, key: str) -> None:
        self._directory = directory
        self._key = key
        self._path = directory / LOCK_NAME
        self._count = 0

    @property
    def path(self) -> Path:
        """The lock file's path."""
        return self._path

    @property
    def count(self) -> int:
        """Current in-process acquisition count (0 = not held)."""
        return self._count

    # ------------------------------------------------------------------ #
    # Acquisition
    # ------------------------------------------------------------------ #
    @classmethod
    def acquire(cls, directory) -> "StoreLock":
        """Acquire (or re-acquire) the writer lock for ``directory``.

        Raises:
            StoreLockedError: If another live process holds the lock.
        """
        directory = Path(directory)
        key = str(directory.resolve())
        with _REGISTRY_LOCK:
            lock = _REGISTRY.get(key)
            if lock is None:
                lock = cls(directory, key)
                _REGISTRY[key] = lock
            if lock._count == 0:
                try:
                    lock._create_file()
                except BaseException:
                    if lock._count == 0:
                        _REGISTRY.pop(key, None)
                    raise
            lock._count += 1
            return lock

    def _create_file(self) -> None:
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "created_unix": time.time(),
            }
        ).encode("utf-8")
        for attempt in range(_ACQUIRE_ATTEMPTS):
            try:
                descriptor = os.open(
                    self._path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                holder = self._read_holder()
                if holder is not None and not self._is_stale(holder):
                    raise StoreLockedError(
                        f"store at {str(self._directory)!r} is locked by writer "
                        f"pid {holder.get('pid')} on {holder.get('host')!r} "
                        f"(remove {LOCK_NAME!r} if that process is truly gone)",
                        pid=holder.get("pid"),
                        host=holder.get("host"),
                    )
                # Stale (dead holder) or unreadable-and-vanished: reclaim.
                # Two reclaimers may race on the unlink; the O_EXCL retry
                # decides the winner.
                try:
                    os.unlink(self._path)
                except FileNotFoundError:
                    pass
                except OSError as error:
                    if attempt == _ACQUIRE_ATTEMPTS - 1:
                        raise StoreLockedError(
                            f"could not reclaim stale lock {str(self._path)!r}: {error}"
                        ) from error
                continue
            try:
                os.write(descriptor, payload)
            finally:
                os.close(descriptor)
            return
        raise StoreLockedError(
            f"store at {str(self._directory)!r} is locked (gave up after "
            f"{_ACQUIRE_ATTEMPTS} attempts to reclaim {LOCK_NAME!r})"
        )

    def _read_holder(self) -> Optional[dict]:
        """The lock file's stamp, or ``None`` when the file vanished."""
        try:
            raw = self._path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return {}
        try:
            holder = json.loads(raw)
        except (ValueError, TypeError):
            # A torn stamp (the holder crashed mid-write): judge by nothing
            # — unreadable means we cannot prove it stale.
            return {}
        return holder if isinstance(holder, dict) else {}

    @staticmethod
    def _is_stale(holder: dict) -> bool:
        """Whether the stamped holder is provably gone.

        Only same-host locks can be liveness-checked; a lock from another
        host (or with no readable stamp) is treated as held.
        """
        host = holder.get("host")
        pid = holder.get("pid")
        if host != socket.gethostname() or not isinstance(pid, int):
            return False
        return not _pid_alive(pid)

    # ------------------------------------------------------------------ #
    # Release
    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Drop one acquisition; the file is removed when the count hits 0.

        Releasing an unheld lock is a no-op (close paths are idempotent).
        """
        with _REGISTRY_LOCK:
            if self._count == 0:
                return
            self._count -= 1
            if self._count > 0:
                return
            _REGISTRY.pop(self._key, None)
            try:
                os.unlink(self._path)
            except FileNotFoundError:
                pass
            except OSError as error:  # pragma: no cover - platform-specific
                if error.errno not in (errno.ENOENT,):
                    raise
