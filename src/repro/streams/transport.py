"""Transmitter, channel and receiver simulation.

The transmitter wraps a filter; every data point it observes is filtered and
any resulting recordings are pushed through a :class:`Channel` to a
:class:`Receiver`.  The channel keeps traffic statistics (messages and bytes),
and the receiver tracks the transmitter→receiver lag — the number of data
points the transmitter has processed beyond the last recording it has seen —
which is the quantity bounded by ``m_max_lag`` in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.approximation.encoding import encode_recordings
from repro.approximation.piecewise import Approximation
from repro.approximation.reconstruct import reconstruct
from repro.core.base import StreamFilter
from repro.core.types import DataPoint, Recording

__all__ = ["Channel", "Receiver", "Transmitter"]


@dataclass
class Channel:
    """A loss-less channel counting transmitted messages and bytes."""

    messages_sent: int = 0
    bytes_sent: int = 0
    _receivers: List["Receiver"] = field(default_factory=list)

    def attach(self, receiver: "Receiver") -> None:
        """Register a receiver for future transmissions."""
        self._receivers.append(receiver)

    def transmit(self, recording: Recording, observed_points: int) -> None:
        """Deliver one recording to every attached receiver."""
        self.messages_sent += 1
        self.bytes_sent += len(encode_recordings([recording]))
        for receiver in self._receivers:
            receiver.deliver(recording, observed_points)


class Receiver:
    """Receiver-side state: recordings received and lag statistics."""

    def __init__(self) -> None:
        self._recordings: List[Recording] = []
        self._points_at_last_recording = 0
        self._observed_points = 0
        self._max_lag_seen = 0

    # ------------------------------------------------------------------ #
    # Channel interface
    # ------------------------------------------------------------------ #
    def deliver(self, recording: Recording, observed_points: int) -> None:
        """Accept a recording; ``observed_points`` is the transmitter's count."""
        self._recordings.append(recording)
        self._points_at_last_recording = observed_points
        self._observed_points = observed_points

    def note_observation(self, observed_points: int) -> None:
        """Update lag statistics after the transmitter processed a point."""
        self._observed_points = observed_points
        self._max_lag_seen = max(self._max_lag_seen, self.current_lag)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def recordings(self) -> List[Recording]:
        """All recordings received so far."""
        return list(self._recordings)

    @property
    def recording_count(self) -> int:
        """Number of recordings received."""
        return len(self._recordings)

    @property
    def current_lag(self) -> int:
        """Points processed by the transmitter since the last recording."""
        return self._observed_points - self._points_at_last_recording

    @property
    def max_lag_seen(self) -> int:
        """Largest lag observed during the run."""
        return self._max_lag_seen

    def approximation(self) -> Approximation:
        """Reconstruct the signal approximation from the received recordings."""
        return reconstruct(self._recordings)


class Transmitter:
    """Filter-equipped transmitter pushing recordings through a channel.

    Args:
        stream_filter: The online filter applied to observed data points.
        channel: Channel used for transmission; a fresh one is created when
            omitted.
        receiver: Receiver attached to the channel; a fresh one is created
            when omitted.
    """

    def __init__(
        self,
        stream_filter: StreamFilter,
        channel: Optional[Channel] = None,
        receiver: Optional[Receiver] = None,
    ) -> None:
        self.filter = stream_filter
        self.channel = channel or Channel()
        self.receiver = receiver or Receiver()
        self.channel.attach(self.receiver)
        self._observed_points = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, time: float, value) -> List[Recording]:
        """Process one measurement; transmit any recordings it triggers."""
        recordings = self.filter.feed(time, value)
        self._observed_points += 1
        for recording in recordings:
            self.channel.transmit(recording, self._observed_points)
        self.receiver.note_observation(self._observed_points)
        return recordings

    def observe_point(self, point: DataPoint) -> List[Recording]:
        """Like :meth:`observe` for a :class:`DataPoint`."""
        return self.observe(point.time, point.value)

    def observe_batch(self, times, values) -> List[Recording]:
        """Process one chunk of measurements through the filter's fast path.

        Recordings produced anywhere inside the chunk are transmitted at the
        end of the chunk, so the receiver's lag statistics are tracked at
        chunk granularity (an upper bound on the per-point lag).
        """
        recordings = self.filter.process_batch(times, values)
        self._observed_points += int(np.asarray(times).shape[0])
        for recording in recordings:
            self.channel.transmit(recording, self._observed_points)
        self.receiver.note_observation(self._observed_points)
        return recordings

    def close(self) -> List[Recording]:
        """Signal end-of-stream, transmitting the filter's final recordings."""
        recordings = self.filter.finish()
        for recording in recordings:
            self.channel.transmit(recording, self._observed_points)
        return recordings

    @property
    def observed_points(self) -> int:
        """Number of measurements observed so far."""
        return self._observed_points

    @property
    def suppressed_points(self) -> int:
        """Measurements that did not require any transmission."""
        return self._observed_points - self.channel.messages_sent

    def compression_ratio(self) -> float:
        """Points observed divided by recordings transmitted so far."""
        if self.channel.messages_sent == 0:
            return float("inf") if self._observed_points else 0.0
        return self._observed_points / self.channel.messages_sent
