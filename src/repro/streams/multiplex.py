"""Managing a fleet of monitored streams.

Large monitoring deployments (the paper's motivating setting) track many
variables at once.  :class:`StreamSet` owns one filter-equipped transmitter
per named stream, routes observations to the right transmitter, and offers
fleet-wide statistics plus optional archiving of every stream into a segment
store (plain or sharded).

Archiving is batched: transmitted recordings are buffered per stream and
appended to the store in ``archive_batch``-sized batches (plus one final
flush on :meth:`close`), so archiving a fleet does not rewrite the store
catalog once per observation.  The batch ingestion path —
:meth:`observe_batch` and :meth:`run_arrays` — additionally routes chunked
arrays through the filters' vectorized ``process_batch`` fast path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.base import StreamFilter
from repro.core.registry import create_filter
from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.pipeline.sinks import flush_buffered
from repro.storage import StoreLike
from repro.streams.transport import Transmitter

__all__ = ["StreamSet", "StreamSetReport"]

FilterFactory = Callable[[], StreamFilter]


@dataclass(frozen=True)
class StreamSetReport:
    """Fleet-wide statistics of a :class:`StreamSet` run.

    Attributes:
        streams: Number of managed streams.
        points: Total observations across all streams.
        recordings: Total recordings transmitted across all streams.
        compression_ratio: ``points / recordings``.
        bytes_sent: Total channel payload bytes.
        worst_lag: Largest transmitter→receiver lag seen on any stream.
    """

    streams: int
    points: int
    recordings: int
    compression_ratio: float
    bytes_sent: int
    worst_lag: int


class StreamSet:
    """A set of independently filtered streams sharing one configuration.

    Args:
        filter_name: Registered filter name (or a custom factory via
            ``filter_factory``).
        epsilon: Precision width passed to every per-stream filter.
        filter_factory: Alternative to ``filter_name``: a zero-argument
            callable returning a fresh filter per stream.
        store: Optional segment store (plain or sharded); when given, every
            transmitted recording is also appended to the store under the
            stream's name.
        archive_batch: Recordings buffered per stream before they are
            appended to the store (1 restores write-through archiving).
        **filter_kwargs: Extra options forwarded to :func:`create_filter`.
    """

    def __init__(
        self,
        filter_name: Optional[str] = None,
        epsilon=None,
        filter_factory: Optional[FilterFactory] = None,
        store: Optional[StoreLike] = None,
        archive_batch: int = 256,
        **filter_kwargs,
    ) -> None:
        if filter_factory is None:
            if filter_name is None or epsilon is None:
                raise ValueError("provide either filter_factory or (filter_name and epsilon)")
            filter_factory = lambda: create_filter(filter_name, epsilon, **filter_kwargs)  # noqa: E731
        if archive_batch < 1:
            raise ValueError(f"archive_batch must be positive, got {archive_batch}")
        self._factory = filter_factory
        self._epsilon = epsilon
        self._store = store
        self._archive_batch = archive_batch
        self._transmitters: Dict[str, Transmitter] = {}
        self._pending: Dict[str, List] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, stream: str, time: float, value) -> int:
        """Route one measurement to its stream; return the recordings emitted."""
        transmitter = self._transmitter(stream)
        recordings = transmitter.observe(time, value)
        self._archive(stream, recordings)
        return len(recordings)

    def observe_batch(self, stream: str, times, values) -> int:
        """Route one chunk of measurements through the vectorized fast path.

        Args:
            stream: Target stream name.
            times: ``(n,)`` observation times.
            values: ``(n,)`` or ``(n, d)`` observed values.

        Returns:
            The number of recordings the chunk triggered.
        """
        transmitter = self._transmitter(stream)
        recordings = transmitter.observe_batch(times, values)
        self._archive(stream, recordings)
        return len(recordings)

    def run_arrays(
        self,
        data: Mapping[str, Tuple],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        close: bool = True,
    ) -> StreamSetReport:
        """Ingest several streams given as ``{name: (times, values)}`` arrays.

        The streams' chunks are interleaved round-robin — the multiplexed
        arrival order of a live fleet — and each chunk goes through
        :meth:`observe_batch`.  With ``close=True`` (default) the set is
        closed afterwards, flushing every filter and the archive buffers.

        .. deprecated::
            Use the :class:`~repro.api.session.StreamDB` session instead —
            ``with repro.open(path, filter=...) as db`` and one
            :meth:`~repro.api.session.StreamDB.append` per stream chunk (or
            :meth:`~repro.api.session.StreamDB.ingest` per whole stream).
        """
        warnings.warn(
            "StreamSet.run_arrays is deprecated and will be removed in the next "
            "release; use the StreamDB session instead: "
            "`with repro.open(path, filter=FilterSpec(...)) as db: db.append(name, times, values)`",
            DeprecationWarning,
            stacklevel=2,
        )
        iterators = {
            name: iter_chunks(times, values, chunk_size)
            for name, (times, values) in data.items()
        }
        while iterators:
            exhausted = []
            for name, chunks in iterators.items():
                chunk = next(chunks, None)
                if chunk is None:
                    exhausted.append(name)
                    continue
                self.observe_batch(name, chunk[0], chunk[1])
            for name in exhausted:
                del iterators[name]
        if close:
            return self.close()
        return self.report()

    def flush(self) -> None:
        """Append all buffered recordings to the store and flush its catalog."""
        if self._store is None:
            return
        for stream in list(self._pending):
            self._flush_stream(stream)
        self._store.flush()

    def close(self) -> StreamSetReport:
        """Flush every stream's filter and archive buffer; return the report."""
        if not self._closed:
            for name, transmitter in self._transmitters.items():
                self._archive(name, transmitter.close())
            self.flush()
            self._closed = True
        return self.report()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stream_names(self) -> List[str]:
        """Names of the streams observed so far, sorted."""
        return sorted(self._transmitters)

    def __len__(self) -> int:
        return len(self._transmitters)

    def approximation(self, stream: str) -> Approximation:
        """Receiver-side approximation of one stream.

        Raises:
            KeyError: If the stream has not been observed.
        """
        try:
            transmitter = self._transmitters[stream]
        except KeyError:
            raise KeyError(f"unknown stream {stream!r}") from None
        return transmitter.receiver.approximation()

    def report(self) -> StreamSetReport:
        """Fleet-wide statistics (valid before or after :meth:`close`)."""
        points = sum(t.observed_points for t in self._transmitters.values())
        recordings = sum(t.receiver.recording_count for t in self._transmitters.values())
        bytes_sent = sum(t.channel.bytes_sent for t in self._transmitters.values())
        worst_lag = max(
            (t.receiver.max_lag_seen for t in self._transmitters.values()), default=0
        )
        ratio = points / recordings if recordings else (float("inf") if points else 0.0)
        return StreamSetReport(
            streams=len(self._transmitters),
            points=points,
            recordings=recordings,
            compression_ratio=ratio,
            bytes_sent=bytes_sent,
            worst_lag=worst_lag,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _transmitter(self, stream: str) -> Transmitter:
        if self._closed:
            raise RuntimeError("the stream set has been closed")
        transmitter = self._transmitters.get(stream)
        if transmitter is None:
            transmitter = Transmitter(self._factory())
            self._transmitters[stream] = transmitter
        return transmitter

    def _archive(self, stream: str, recordings) -> None:
        if self._store is None or not recordings:
            return
        buffer = self._pending.setdefault(stream, [])
        buffer.extend(recordings)
        if len(buffer) >= self._archive_batch:
            self._flush_stream(stream)

    def _flush_stream(self, stream: str) -> None:
        buffer = self._pending.get(stream)
        if buffer:
            flush_buffered(self._store, stream, buffer, self._epsilon_list())

    def _epsilon_list(self) -> Optional[List[float]]:
        if self._epsilon is None:
            return None
        return [float(v) for v in np.atleast_1d(self._epsilon)]
