"""Managing a fleet of monitored streams.

Large monitoring deployments (the paper's motivating setting) track many
variables at once.  :class:`StreamSet` owns one filter-equipped transmitter
per named stream, routes observations to the right transmitter, and offers
fleet-wide statistics plus optional archiving of every stream into a
:class:`~repro.storage.segment_store.SegmentStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.base import StreamFilter
from repro.core.registry import create_filter
from repro.storage.segment_store import SegmentStore
from repro.streams.transport import Transmitter

__all__ = ["StreamSet", "StreamSetReport"]

FilterFactory = Callable[[], StreamFilter]


@dataclass(frozen=True)
class StreamSetReport:
    """Fleet-wide statistics of a :class:`StreamSet` run.

    Attributes:
        streams: Number of managed streams.
        points: Total observations across all streams.
        recordings: Total recordings transmitted across all streams.
        compression_ratio: ``points / recordings``.
        bytes_sent: Total channel payload bytes.
        worst_lag: Largest transmitter→receiver lag seen on any stream.
    """

    streams: int
    points: int
    recordings: int
    compression_ratio: float
    bytes_sent: int
    worst_lag: int


class StreamSet:
    """A set of independently filtered streams sharing one configuration.

    Args:
        filter_name: Registered filter name (or a custom factory via
            ``filter_factory``).
        epsilon: Precision width passed to every per-stream filter.
        filter_factory: Alternative to ``filter_name``: a zero-argument
            callable returning a fresh filter per stream.
        store: Optional :class:`SegmentStore`; when given, every transmitted
            recording is also appended to the store under the stream's name.
        **filter_kwargs: Extra options forwarded to :func:`create_filter`.
    """

    def __init__(
        self,
        filter_name: Optional[str] = None,
        epsilon=None,
        filter_factory: Optional[FilterFactory] = None,
        store: Optional[SegmentStore] = None,
        **filter_kwargs,
    ) -> None:
        if filter_factory is None:
            if filter_name is None or epsilon is None:
                raise ValueError("provide either filter_factory or (filter_name and epsilon)")
            filter_factory = lambda: create_filter(filter_name, epsilon, **filter_kwargs)  # noqa: E731
        self._factory = filter_factory
        self._epsilon = epsilon
        self._store = store
        self._transmitters: Dict[str, Transmitter] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, stream: str, time: float, value) -> int:
        """Route one measurement to its stream; return the recordings emitted."""
        if self._closed:
            raise RuntimeError("the stream set has been closed")
        transmitter = self._transmitters.get(stream)
        if transmitter is None:
            transmitter = Transmitter(self._factory())
            self._transmitters[stream] = transmitter
        recordings = transmitter.observe(time, value)
        if self._store is not None and recordings:
            self._store.append(stream, recordings, epsilon=self._epsilon_list())
        return len(recordings)

    def close(self) -> StreamSetReport:
        """Flush every stream's filter and return the fleet report."""
        if not self._closed:
            for name, transmitter in self._transmitters.items():
                recordings = transmitter.close()
                if self._store is not None and recordings:
                    self._store.append(name, recordings, epsilon=self._epsilon_list())
            self._closed = True
        return self.report()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stream_names(self) -> List[str]:
        """Names of the streams observed so far, sorted."""
        return sorted(self._transmitters)

    def __len__(self) -> int:
        return len(self._transmitters)

    def approximation(self, stream: str) -> Approximation:
        """Receiver-side approximation of one stream.

        Raises:
            KeyError: If the stream has not been observed.
        """
        try:
            transmitter = self._transmitters[stream]
        except KeyError:
            raise KeyError(f"unknown stream {stream!r}") from None
        return transmitter.receiver.approximation()

    def report(self) -> StreamSetReport:
        """Fleet-wide statistics (valid before or after :meth:`close`)."""
        points = sum(t.observed_points for t in self._transmitters.values())
        recordings = sum(t.receiver.recording_count for t in self._transmitters.values())
        bytes_sent = sum(t.channel.bytes_sent for t in self._transmitters.values())
        worst_lag = max(
            (t.receiver.max_lag_seen for t in self._transmitters.values()), default=0
        )
        ratio = points / recordings if recordings else (float("inf") if points else 0.0)
        return StreamSetReport(
            streams=len(self._transmitters),
            points=points,
            recordings=recordings,
            compression_ratio=ratio,
            bytes_sent=bytes_sent,
            worst_lag=worst_lag,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _epsilon_list(self) -> Optional[List[float]]:
        if self._epsilon is None:
            return None
        return [float(v) for v in np.atleast_1d(self._epsilon)]
