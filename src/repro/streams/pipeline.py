"""End-to-end monitoring pipeline.

:class:`MonitoringPipeline` ties a stream source, a filter-equipped
transmitter and a receiver together, runs the stream to completion and
produces a :class:`PipelineReport` with the quantities the paper reports:
compression ratio, average and maximum error, observed lag and channel
traffic.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.base import StreamFilter
from repro.core.registry import create_filter
from repro.core.types import DataPoint, ensure_points
from repro.metrics.error import error_profile
from repro.pipeline.chunking import DEFAULT_CHUNK_SIZE, iter_chunks, normalize_chunk
from repro.streams.source import IterableSource, StreamSource
from repro.streams.transport import Channel, Receiver, Transmitter

__all__ = ["PipelineReport", "MonitoringPipeline"]


@dataclass(frozen=True)
class PipelineReport:
    """Summary of one end-to-end monitoring run.

    Attributes:
        filter_name: Name of the filter used by the transmitter.
        points: Number of data points observed.
        recordings: Number of recordings received.
        compression_ratio: ``points / recordings``.
        mean_absolute_error: Average absolute error of the reconstruction.
        max_absolute_error: Maximum absolute error of the reconstruction.
        mean_error_percent_of_range: Average error as % of the signal range.
        max_lag: Largest transmitter→receiver lag observed (in points).
        messages_sent: Channel messages (equals ``recordings``).
        bytes_sent: Channel payload bytes.
    """

    filter_name: str
    points: int
    recordings: int
    compression_ratio: float
    mean_absolute_error: float
    max_absolute_error: float
    mean_error_percent_of_range: float
    max_lag: int
    messages_sent: int
    bytes_sent: int


class MonitoringPipeline:
    """Source → filter → channel → receiver, with a one-call runner.

    Args:
        stream_filter: A filter instance or a registered filter name.
        epsilon: Precision width, required when ``stream_filter`` is a name.
        **filter_kwargs: Extra options forwarded when building by name.
    """

    def __init__(self, stream_filter: Union[StreamFilter, str], epsilon=None, **filter_kwargs) -> None:
        if isinstance(stream_filter, str):
            if epsilon is None:
                raise ValueError("epsilon is required when the filter is given by name")
            stream_filter = create_filter(stream_filter, epsilon, **filter_kwargs)
        self.transmitter = Transmitter(stream_filter)
        self.receiver = self.transmitter.receiver
        self.channel = self.transmitter.channel

    def run(self, source: Union[StreamSource, Iterable]) -> PipelineReport:
        """Run the pipeline over a finite stream and return its report."""
        if not isinstance(source, StreamSource):
            source = IterableSource(source)
        observed: list[DataPoint] = []
        for point in source:
            observed.append(point)
            self.transmitter.observe_point(point)
        self.transmitter.close()
        points = ensure_points(observed)
        times = np.array([p.time for p in points])
        values = np.vstack([p.value for p in points]) if points else np.empty((0, 0))
        return self._report(times, values)

    def run_arrays(
        self, times, values, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> PipelineReport:
        """Run the pipeline over array data via the batch fast path.

        Equivalent to :meth:`run` over the same points (identical recordings
        and traffic), but driven chunk-by-chunk through
        :meth:`~repro.streams.transport.Transmitter.observe_batch`; the
        reported ``max_lag`` is measured at chunk granularity.

        .. deprecated::
            Use the :class:`~repro.api.session.StreamDB` session instead —
            ``repro.open(path, filter=...).ingest(name, times, values)``
            drives the same vectorized batch path and archives the
            recordings for querying.
        """
        warnings.warn(
            "MonitoringPipeline.run_arrays is deprecated and will be removed in "
            "the next release; use the StreamDB session instead: "
            "`repro.open(path, filter=FilterSpec(...)).ingest(name, times, values)`",
            DeprecationWarning,
            stacklevel=2,
        )
        times, values = normalize_chunk(times, values)
        for chunk_times, chunk_values in iter_chunks(times, values, chunk_size):
            self.transmitter.observe_batch(chunk_times, chunk_values)
        self.transmitter.close()
        return self._report(times, values)

    def approximation(self) -> Approximation:
        """Receiver-side approximation reconstructed from the recordings."""
        return self.receiver.approximation()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _report(self, times: np.ndarray, values: np.ndarray) -> PipelineReport:
        point_count = int(np.asarray(times).shape[0])
        recordings = self.receiver.recording_count
        if recordings and point_count:
            approximation = self.receiver.approximation()
            profile = error_profile(approximation, times, values)
            mean_abs, max_abs = profile.mean_absolute, profile.max_absolute
            mean_pct = profile.mean_percent_of_range
        else:
            mean_abs = max_abs = mean_pct = 0.0
        ratio = (point_count / recordings) if recordings else (float("inf") if point_count else 0.0)
        return PipelineReport(
            filter_name=self.transmitter.filter.name,
            points=point_count,
            recordings=recordings,
            compression_ratio=ratio,
            mean_absolute_error=mean_abs,
            max_absolute_error=max_abs,
            mean_error_percent_of_range=mean_pct,
            max_lag=self.receiver.max_lag_seen,
            messages_sent=self.channel.messages_sent,
            bytes_sent=self.channel.bytes_sent,
        )
