"""End-to-end monitoring pipeline.

:class:`MonitoringPipeline` ties a stream source, a filter-equipped
transmitter and a receiver together, runs the stream to completion and
produces a :class:`PipelineReport` with the quantities the paper reports:
compression ratio, average and maximum error, observed lag and channel
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.approximation.piecewise import Approximation
from repro.core.base import StreamFilter
from repro.core.registry import create_filter
from repro.core.types import DataPoint, ensure_points
from repro.metrics.error import error_profile
from repro.streams.source import IterableSource, StreamSource
from repro.streams.transport import Channel, Receiver, Transmitter

__all__ = ["PipelineReport", "MonitoringPipeline"]


@dataclass(frozen=True)
class PipelineReport:
    """Summary of one end-to-end monitoring run.

    Attributes:
        filter_name: Name of the filter used by the transmitter.
        points: Number of data points observed.
        recordings: Number of recordings received.
        compression_ratio: ``points / recordings``.
        mean_absolute_error: Average absolute error of the reconstruction.
        max_absolute_error: Maximum absolute error of the reconstruction.
        mean_error_percent_of_range: Average error as % of the signal range.
        max_lag: Largest transmitter→receiver lag observed (in points).
        messages_sent: Channel messages (equals ``recordings``).
        bytes_sent: Channel payload bytes.
    """

    filter_name: str
    points: int
    recordings: int
    compression_ratio: float
    mean_absolute_error: float
    max_absolute_error: float
    mean_error_percent_of_range: float
    max_lag: int
    messages_sent: int
    bytes_sent: int


class MonitoringPipeline:
    """Source → filter → channel → receiver, with a one-call runner.

    Args:
        stream_filter: A filter instance or a registered filter name.
        epsilon: Precision width, required when ``stream_filter`` is a name.
        **filter_kwargs: Extra options forwarded when building by name.
    """

    def __init__(self, stream_filter: Union[StreamFilter, str], epsilon=None, **filter_kwargs) -> None:
        if isinstance(stream_filter, str):
            if epsilon is None:
                raise ValueError("epsilon is required when the filter is given by name")
            stream_filter = create_filter(stream_filter, epsilon, **filter_kwargs)
        self.transmitter = Transmitter(stream_filter)
        self.receiver = self.transmitter.receiver
        self.channel = self.transmitter.channel

    def run(self, source: Union[StreamSource, Iterable]) -> PipelineReport:
        """Run the pipeline over a finite stream and return its report."""
        if not isinstance(source, StreamSource):
            source = IterableSource(source)
        observed: list[DataPoint] = []
        for point in source:
            observed.append(point)
            self.transmitter.observe_point(point)
        self.transmitter.close()
        return self._report(observed)

    def approximation(self) -> Approximation:
        """Receiver-side approximation reconstructed from the recordings."""
        return self.receiver.approximation()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _report(self, observed: list) -> PipelineReport:
        points = ensure_points(observed)
        recordings = self.receiver.recording_count
        if recordings and points:
            approximation = self.receiver.approximation()
            times = [p.time for p in points]
            values = np.vstack([p.value for p in points])
            profile = error_profile(approximation, times, values)
            mean_abs, max_abs = profile.mean_absolute, profile.max_absolute
            mean_pct = profile.mean_percent_of_range
        else:
            mean_abs = max_abs = mean_pct = 0.0
        ratio = (len(points) / recordings) if recordings else (float("inf") if points else 0.0)
        return PipelineReport(
            filter_name=self.transmitter.filter.name,
            points=len(points),
            recordings=recordings,
            compression_ratio=ratio,
            mean_absolute_error=mean_abs,
            max_absolute_error=max_abs,
            mean_error_percent_of_range=mean_pct,
            max_lag=self.receiver.max_lag_seen,
            messages_sent=self.channel.messages_sent,
            bytes_sent=self.channel.bytes_sent,
        )
