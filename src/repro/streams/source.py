"""Stream sources.

A :class:`StreamSource` is simply an iterable of
:class:`~repro.core.types.DataPoint`; the concrete classes adapt the common
ways a monitored signal shows up in practice — in-memory arrays, Python
iterables, callables polled for new samples, and CSV files.
"""

from __future__ import annotations

import abc
import csv
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.types import DataPoint

__all__ = [
    "StreamSource",
    "ArraySource",
    "IterableSource",
    "CallbackSource",
    "CsvSource",
]


class StreamSource(abc.ABC):
    """Abstract iterable of data points."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[DataPoint]:
        """Yield the stream's data points in time order."""

    def to_arrays(self) -> tuple:
        """Materialize the stream into ``(times, values)`` arrays."""
        points = list(self)
        if not points:
            return np.empty(0), np.empty((0, 0))
        times = np.array([p.time for p in points])
        values = np.vstack([p.value for p in points])
        return times, values


class ArraySource(StreamSource):
    """Stream over parallel time/value arrays.

    Args:
        times: Sequence of timestamps, strictly increasing.
        values: Sequence of scalars or vectors, one per timestamp.
    """

    def __init__(self, times: Sequence[float], values: Sequence) -> None:
        self._times = np.asarray(times, dtype=float)
        self._values = np.asarray(values, dtype=float)
        if self._times.ndim != 1:
            raise ValueError("times must be one-dimensional")
        if len(self._times) != len(self._values):
            raise ValueError("times and values must have the same length")

    def __len__(self) -> int:
        return int(self._times.shape[0])

    def __iter__(self) -> Iterator[DataPoint]:
        for time, value in zip(self._times, self._values):
            yield DataPoint(float(time), value)


class IterableSource(StreamSource):
    """Stream over any iterable of ``(t, value)`` pairs or data points."""

    def __init__(self, iterable: Iterable) -> None:
        self._iterable = iterable

    def __iter__(self) -> Iterator[DataPoint]:
        for element in self._iterable:
            if isinstance(element, DataPoint):
                yield element
            else:
                time, value = element
                yield DataPoint(float(time), value)


class CallbackSource(StreamSource):
    """Stream produced by polling a callable until it returns ``None``.

    Args:
        poll: Zero-argument callable returning the next ``(t, value)`` pair or
            ``None`` when the stream is exhausted.
        limit: Optional hard cap on the number of polled points.
    """

    def __init__(self, poll: Callable[[], Optional[tuple]], limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        self._poll = poll
        self._limit = limit

    def __iter__(self) -> Iterator[DataPoint]:
        produced = 0
        while self._limit is None or produced < self._limit:
            sample = self._poll()
            if sample is None:
                return
            time, value = sample
            yield DataPoint(float(time), value)
            produced += 1


class CsvSource(StreamSource):
    """Stream over a CSV file with a time column and one or more value columns.

    Args:
        path: CSV file path.
        time_column: Index of the timestamp column (default 0).
        value_columns: Indices of the value columns (default: every column
            after the time column).
        skip_header: Number of leading rows to skip (default 1).
        delimiter: Field delimiter (default ``","``).
    """

    def __init__(
        self,
        path: Union[str, Path],
        time_column: int = 0,
        value_columns: Optional[Sequence[int]] = None,
        skip_header: int = 1,
        delimiter: str = ",",
    ) -> None:
        self._path = Path(path)
        self._time_column = time_column
        self._value_columns = list(value_columns) if value_columns is not None else None
        self._skip_header = skip_header
        self._delimiter = delimiter

    def __iter__(self) -> Iterator[DataPoint]:
        with open(self._path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self._delimiter)
            for index, row in enumerate(reader):
                if index < self._skip_header or not row:
                    continue
                time = float(row[self._time_column])
                if self._value_columns is None:
                    columns = [i for i in range(len(row)) if i != self._time_column]
                else:
                    columns = self._value_columns
                values = [float(row[i]) for i in columns]
                yield DataPoint(time, values if len(values) > 1 else values[0])
