"""Streaming substrate: sources, transmitter/receiver channel, pipelines.

The paper's setting is continuous monitoring: a *transmitter* (sensor, probe)
filters its measurements online and sends recordings to a *receiver* (a data
stream management system or repository) over a channel.  This subpackage
models that setting so the filters can be exercised end-to-end:

* :mod:`~repro.streams.source` — stream sources over arrays, callables, files
  and generators,
* :mod:`~repro.streams.transport` — transmitter, channel and receiver with
  lag and traffic accounting,
* :mod:`~repro.streams.pipeline` — a convenience pipeline tying a source, a
  filter and a receiver together and reporting the run's statistics.
"""

from repro.streams.pipeline import MonitoringPipeline, PipelineReport
from repro.streams.source import ArraySource, CallbackSource, CsvSource, IterableSource, StreamSource
from repro.streams.transport import Channel, Receiver, Transmitter

__all__ = [
    "StreamSource",
    "ArraySource",
    "IterableSource",
    "CallbackSource",
    "CsvSource",
    "Transmitter",
    "Receiver",
    "Channel",
    "MonitoringPipeline",
    "PipelineReport",
]
