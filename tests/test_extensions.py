"""Tests for the related-work baselines (Kalman, SWAB, optimal PCA)."""

import numpy as np
import pytest

from repro.core.cache import MidrangeCacheFilter
from repro.data.patterns import ramp_signal, sine_signal, step_signal
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.extensions.kalman import KalmanFilterPredictor
from repro.extensions.optimal_pca import optimal_piecewise_constant, optimal_segment_count
from repro.extensions.swab import bottom_up_segments, swab_segments

from conftest import assert_within_bound


class TestKalmanPredictor:
    def test_error_bound_on_random_walk(self, smooth_walk):
        times, values = smooth_walk
        epsilon = 0.5
        result = KalmanFilterPredictor(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_error_bound_on_noisy_walk(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        result = KalmanFilterPredictor(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_tracks_linear_trend_cheaply(self):
        times, values = ramp_signal(length=300, slope=0.5)
        result = KalmanFilterPredictor(0.5).process(zip(times, values))
        # After locking onto the constant velocity the predictor should stop
        # transmitting; expect far fewer recordings than points.
        assert result.recording_count < 60

    def test_worse_than_slide_on_irregular_signal(self, noisy_walk):
        from repro.core.slide import SlideFilter

        times, values = noisy_walk
        epsilon = 1.0
        kalman = KalmanFilterPredictor(epsilon).process(zip(times, values))
        slide = SlideFilter(epsilon).process(zip(times, values))
        assert slide.recording_count <= kalman.recording_count

    def test_multidimensional(self):
        rng = np.random.default_rng(3)
        times = np.arange(200.0)
        values = np.cumsum(rng.normal(0, 0.3, (200, 2)), axis=0)
        epsilon = 0.5
        result = KalmanFilterPredictor(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_predicted_value_property(self):
        kalman = KalmanFilterPredictor(0.5)
        assert kalman.predicted_value is None
        kalman.feed(0.0, 2.0)
        assert kalman.predicted_value[0] == pytest.approx(2.0)

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            KalmanFilterPredictor(0.5, process_noise=0.0)
        with pytest.raises(ValueError):
            KalmanFilterPredictor(0.5, measurement_noise=-1.0)

    def test_single_point(self):
        result = KalmanFilterPredictor(0.5).process([(0.0, 1.0)])
        assert result.recording_count == 1


class TestOptimalPiecewiseConstant:
    def test_constant_signal_single_segment(self):
        segments = optimal_piecewise_constant(np.ones(50), 0.1)
        assert len(segments) == 1
        assert segments[0].length == 50

    def test_step_signal_two_segments(self):
        _, values = step_signal(length=60, low=0.0, high=10.0)
        assert optimal_segment_count(values, 1.0) == 2

    def test_segments_respect_bound(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.normal(0, 0.4, 500))
        epsilon = 0.6
        segments = optimal_piecewise_constant(values, epsilon)
        for segment in segments:
            chunk = values[segment.start_index : segment.end_index + 1]
            assert np.all(np.abs(chunk - segment.value[0]) <= epsilon + 1e-12)

    def test_segments_are_contiguous_partition(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, 200)
        segments = optimal_piecewise_constant(values, 0.5)
        assert segments[0].start_index == 0
        assert segments[-1].end_index == 199
        for left, right in zip(segments, segments[1:]):
            assert right.start_index == left.end_index + 1

    def test_midrange_cache_filter_is_optimal(self):
        """The online midrange cache filter matches the offline optimum [18]."""
        rng = np.random.default_rng(2)
        values = np.cumsum(rng.normal(0, 0.5, 800))
        times = np.arange(800.0)
        epsilon = 0.75
        online = MidrangeCacheFilter(epsilon).process(zip(times, values))
        offline = optimal_segment_count(values, epsilon)
        assert online.recording_count == offline

    def test_multidimensional_bound(self):
        # Dimension 2 forces the breaks (spread 3 > 2·ε) while dimension 1
        # alone would fit in a single segment.
        values = np.array([[0.0, 0.0], [0.5, 3.0], [1.0, 0.0]])
        segments = optimal_piecewise_constant(values, [1.0, 1.0])
        assert len(segments) == 3
        assert optimal_segment_count(values[:, 0], 1.0) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_piecewise_constant(np.array([]), 0.5)

    def test_epsilon_dimension_mismatch(self):
        with pytest.raises(ValueError):
            optimal_piecewise_constant(np.zeros((5, 2)), [1.0, 2.0, 3.0])


class TestSwab:
    def test_straight_line_single_segment(self):
        times, values = ramp_signal(length=40, slope=1.0)
        segments = bottom_up_segments(times, values, epsilon=0.01)
        assert len(segments) == 1
        assert segments[0].length == 40

    def test_segments_partition_signal(self):
        times, values = sine_signal(length=300, amplitude=5.0, period=60.0)
        segments = bottom_up_segments(times, values, epsilon=0.5)
        assert segments[0].start_index == 0
        assert segments[-1].end_index == 299
        for left, right in zip(segments, segments[1:]):
            assert right.start_index == left.end_index + 1

    def test_smaller_epsilon_needs_more_segments(self):
        times, values = sine_signal(length=300, amplitude=5.0, period=60.0)
        coarse = bottom_up_segments(times, values, epsilon=1.0)
        fine = bottom_up_segments(times, values, epsilon=0.1)
        assert len(fine) >= len(coarse)

    def test_swab_covers_signal(self):
        times, values = random_walk(RandomWalkConfig(length=400, max_delta=0.5, seed=9))
        segments = swab_segments(times, values, epsilon=0.5, buffer_size=80)
        assert segments[0].start_index == 0
        assert segments[-1].end_index == 399

    def test_swab_validation(self):
        with pytest.raises(ValueError):
            swab_segments([0.0], [1.0], epsilon=0.5, buffer_size=1)
        with pytest.raises(ValueError):
            bottom_up_segments([], [], epsilon=0.5)
        with pytest.raises(ValueError):
            bottom_up_segments([0.0], [1.0], epsilon=-1.0)

    def test_single_point(self):
        segments = bottom_up_segments([0.0], [5.0], epsilon=0.5)
        assert len(segments) == 1
        assert segments[0].length == 1
