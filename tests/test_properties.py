"""Property-based tests (hypothesis) for the core invariants.

The paper's central theorem (3.1 / 4.1) is that *every* original data point
lies within ε of the generated approximation, for *any* input signal.  These
tests generate arbitrary signals and check that invariant — plus a handful of
structural invariants of the geometry substrate and the codecs — across all
filters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approximation.encoding import decode_recordings, encode_recordings
from repro.approximation.reconstruct import reconstruct, segments_from_recordings
from repro.core.cache import CacheFilter, MeanCacheFilter, MidrangeCacheFilter
from repro.core.linear import DisconnectedLinearFilter, LinearFilter
from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.extensions.kalman import KalmanFilterPredictor
from repro.geometry.hull import IncrementalConvexHull

from conftest import assert_within_bound


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def signals(min_size=1, max_size=120, value_range=50.0):
    """Strategy producing (times, values) with strictly increasing times."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
            st.floats(min_value=-value_range, max_value=value_range, allow_nan=False),
        ),
        min_size=min_size,
        max_size=max_size,
    ).map(_to_signal)


def _to_signal(steps):
    times = np.cumsum([step[0] for step in steps])
    values = np.array([step[1] for step in steps])
    return times, values


epsilons = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

ALL_FILTERS = [
    CacheFilter,
    MidrangeCacheFilter,
    MeanCacheFilter,
    LinearFilter,
    DisconnectedLinearFilter,
    SwingFilter,
    SlideFilter,
    KalmanFilterPredictor,
]


# --------------------------------------------------------------------------- #
# The headline invariant: the L∞ error bound (Theorems 3.1 and 4.1)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("filter_class", ALL_FILTERS, ids=lambda cls: cls.name)
@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_every_filter_respects_the_error_bound(filter_class, signal, epsilon):
    times, values = signal
    result = filter_class(epsilon).process(zip(times, values))
    assert_within_bound(result, times, values, epsilon)


@given(signal=signals(min_size=3), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_slide_without_validation_respects_the_error_bound(signal, epsilon):
    times, values = signal
    result = SlideFilter(epsilon, validate_connections=False).process(zip(times, values))
    assert_within_bound(result, times, values, epsilon)


@given(signal=signals(min_size=3), epsilon=epsilons, max_lag=st.integers(2, 20))
@settings(max_examples=30, deadline=None)
def test_bounded_lag_preserves_the_error_bound(signal, epsilon, max_lag):
    times, values = signal
    for filter_class in (SwingFilter, SlideFilter):
        result = filter_class(epsilon, max_lag=max_lag).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)


@given(signal=signals(min_size=2, max_size=60), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_multidimensional_error_bound(signal, epsilon):
    times, values = signal
    stacked = np.column_stack([values, -0.5 * values + 3.0])
    for filter_class in (SwingFilter, SlideFilter):
        result = filter_class(epsilon).process(zip(times, stacked))
        assert_within_bound(result, times, stacked, epsilon)


# --------------------------------------------------------------------------- #
# Structural invariants
# --------------------------------------------------------------------------- #
@given(signal=signals(min_size=2), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_recording_times_strictly_increase(signal, epsilon):
    times, values = signal
    for filter_class in (CacheFilter, LinearFilter, SwingFilter, SlideFilter):
        result = filter_class(epsilon).process(zip(times, values))
        recorded = [r.time for r in result.recordings]
        assert all(b > a for a, b in zip(recorded, recorded[1:]))


@given(signal=signals(min_size=2), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_recordings_never_exceed_points(signal, epsilon):
    times, values = signal
    for filter_class in (CacheFilter, SwingFilter,):
        result = filter_class(epsilon).process(zip(times, values))
        assert 1 <= result.recording_count <= len(times)


@given(signal=signals(min_size=2), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_swing_segments_are_connected(signal, epsilon):
    times, values = signal
    result = SwingFilter(epsilon).process(zip(times, values))
    segments = segments_from_recordings(result)
    assert all(segment.connected_to_previous for segment in segments[1:])


@given(signal=signals(min_size=2), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_slide_hull_and_naive_variants_agree(signal, epsilon):
    times, values = signal
    optimized = SlideFilter(epsilon).process(zip(times, values))
    naive = SlideFilter(epsilon, use_convex_hull=False).process(zip(times, values))
    assert optimized.recording_count == naive.recording_count
    for a, b in zip(optimized.recordings, naive.recordings):
        assert a.time == pytest.approx(b.time, rel=1e-9, abs=1e-9)
        np.testing.assert_allclose(a.value, b.value, rtol=1e-7, atol=1e-7)


@given(signal=signals(min_size=1), epsilon=epsilons)
@settings(max_examples=40, deadline=None)
def test_encoding_round_trip(signal, epsilon):
    times, values = signal
    result = SlideFilter(epsilon).process(zip(times, values))
    decoded = decode_recordings(encode_recordings(result))
    assert len(decoded) == result.recording_count
    for original, restored in zip(result.recordings, decoded):
        assert original.kind is restored.kind
        assert original.time == restored.time
        np.testing.assert_array_equal(original.value, restored.value)


@given(
    points=st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=150
    )
)
@settings(max_examples=60, deadline=None)
def test_hull_contains_all_points(points):
    times = np.arange(float(len(points)))
    hull = IncrementalConvexHull(zip(times, points))
    upper = list(hull.upper)
    lower = list(hull.lower)

    def chain_value(chain, t):
        for (t1, x1), (t2, x2) in zip(chain, chain[1:]):
            if t1 <= t <= t2:
                return x1 if t2 == t1 else x1 + (x2 - x1) * (t - t1) / (t2 - t1)
        return chain[-1][1]

    for t, x in zip(times, points):
        assert chain_value(upper, t) >= x - 1e-7
        assert chain_value(lower, t) <= x + 1e-7


@given(signal=signals(min_size=1, max_size=80), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_reconstruction_covers_every_data_time(signal, epsilon):
    times, values = signal
    for filter_class in (CacheFilter, LinearFilter, SwingFilter, SlideFilter):
        result = filter_class(epsilon).process(zip(times, values))
        approximation = reconstruct(result)
        sampled = approximation.values_at(times)
        assert sampled.shape == (len(times), 1)
        assert np.all(np.isfinite(sampled))
