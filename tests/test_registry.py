"""Tests for the filter registry."""

import pytest

from repro.core.base import StreamFilter
from repro.core.registry import (
    PAPER_FILTERS,
    available_filters,
    create_filter,
    filter_classes,
    paper_filters,
    register_filter,
)
from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.core.types import RecordingKind


class TestRegistry:
    def test_paper_filters_present(self):
        names = available_filters()
        for name in PAPER_FILTERS:
            assert name in names

    def test_create_filter_returns_configured_instance(self):
        swing = create_filter("swing", 0.5, max_lag=10)
        assert isinstance(swing, SwingFilter)
        assert swing.max_lag == 10

    def test_create_slide_variants(self):
        plain = create_filter("slide-unoptimized", 0.5)
        assert isinstance(plain, SlideFilter)
        assert plain.use_convex_hull is False
        disconnected = create_filter("slide-disconnected", 0.5)
        assert disconnected.connect_segments is False

    def test_unknown_filter_raises_with_hint(self):
        with pytest.raises(KeyError) as excinfo:
            create_filter("does-not-exist", 0.5)
        assert "available" in str(excinfo.value)

    def test_register_custom_filter(self):
        class NullFilter(StreamFilter):
            name = "null-test"
            family = "constant"

            def _feed_point(self, point):
                self._emit(point.time, point.value, RecordingKind.HOLD)

            def _finish_stream(self):
                pass

        register_filter("null-test", NullFilter)
        try:
            instance = create_filter("null-test", 1.0)
            assert isinstance(instance, NullFilter)
            with pytest.raises(ValueError):
                register_filter("null-test", NullFilter)
            register_filter("null-test", NullFilter, overwrite=True)
        finally:
            from repro.core.registry import FILTER_REGISTRY

            FILTER_REGISTRY.pop("null-test", None)

    def test_paper_filters_helper(self):
        filters = paper_filters(0.5)
        assert set(filters) == set(PAPER_FILTERS)
        assert all(f.epsilon is None for f in filters.values())  # resolved lazily

    def test_filter_classes_only_contains_classes(self):
        classes = filter_classes()
        assert "swing" in classes
        assert "slide-unoptimized" not in classes
