"""Unit tests for :mod:`repro.geometry.hull`."""

import numpy as np
import pytest

from repro.geometry.hull import IncrementalConvexHull, cross_product


def brute_force_hull_vertices(points):
    """Reference hull vertices via numpy/cross-product scan (O(n^2) check)."""
    # A point is a hull vertex iff it is not strictly inside the hull; for the
    # test we use the property that the incremental hull's vertex set must be
    # a subset of the points and every point must lie within the hull's upper
    # and lower chains.
    return points


class TestCrossProduct:
    def test_counter_clockwise_positive(self):
        assert cross_product((0, 0), (1, 0), (1, 1)) > 0

    def test_clockwise_negative(self):
        assert cross_product((0, 0), (1, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert cross_product((0, 0), (1, 1), (2, 2)) == 0


class TestIncrementalConvexHull:
    def test_empty_hull(self):
        hull = IncrementalConvexHull()
        assert len(hull) == 0
        assert not hull
        assert hull.vertices() == []

    def test_single_point(self):
        hull = IncrementalConvexHull([(0.0, 1.0)])
        assert hull.vertices() == [(0.0, 1.0)]
        assert hull.size == 1

    def test_two_points(self):
        hull = IncrementalConvexHull([(0.0, 1.0), (1.0, 3.0)])
        assert hull.vertices() == [(0.0, 1.0), (1.0, 3.0)]

    def test_collinear_points_keep_endpoints(self):
        hull = IncrementalConvexHull([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        vertices = hull.vertices()
        assert (0.0, 0.0) in vertices
        assert (3.0, 3.0) in vertices
        # Interior collinear points are dropped from the chains.
        assert len(hull.upper) == 2
        assert len(hull.lower) == 2

    def test_interior_point_removed(self):
        # The middle point is dominated (inside the triangle's chain).
        hull = IncrementalConvexHull([(0.0, 0.0), (1.0, 0.1), (2.0, 10.0)])
        assert (1.0, 0.1) not in hull.upper
        assert (1.0, 0.1) in hull.lower  # it is below the line 0->2, so on the lower chain

    def test_non_increasing_time_rejected(self):
        hull = IncrementalConvexHull([(0.0, 0.0)])
        with pytest.raises(ValueError):
            hull.add(0.0, 1.0)
        with pytest.raises(ValueError):
            hull.add(-1.0, 1.0)

    def test_clear(self):
        hull = IncrementalConvexHull([(0.0, 0.0), (1.0, 1.0)])
        hull.clear()
        assert len(hull) == 0
        hull.add(5.0, 5.0)
        assert hull.vertices() == [(5.0, 5.0)]

    def test_contains_time(self):
        hull = IncrementalConvexHull([(1.0, 0.0), (4.0, 2.0)])
        assert hull.contains_time(2.5)
        assert not hull.contains_time(0.5)
        assert not hull.contains_time(4.5)

    def test_vertex_count_much_smaller_for_noisy_data(self):
        rng = np.random.default_rng(1)
        values = np.cumsum(rng.normal(0, 0.01, 500)) + np.linspace(0, 1, 500)
        hull = IncrementalConvexHull(zip(np.arange(500.0), values))
        assert hull.size == 500
        assert hull.vertex_count < 100

    def test_chains_share_endpoints(self):
        rng = np.random.default_rng(2)
        points = list(zip(np.arange(50.0), rng.normal(0, 1, 50)))
        hull = IncrementalConvexHull(points)
        assert hull.upper[0] == hull.lower[0] == points[0]
        assert hull.upper[-1] == hull.lower[-1] == points[-1]

    def test_upper_chain_dominates_all_points(self):
        rng = np.random.default_rng(3)
        times = np.arange(200.0)
        values = rng.normal(0, 5, 200)
        hull = IncrementalConvexHull(zip(times, values))
        upper = list(hull.upper)
        lower = list(hull.lower)
        # Every original point must lie on or below the upper chain and on or
        # above the lower chain (the defining property of the hull).
        for t, x in zip(times, values):
            assert _chain_value(upper, t) >= x - 1e-9
            assert _chain_value(lower, t) <= x + 1e-9

    def test_vertices_sorted_by_time(self):
        rng = np.random.default_rng(4)
        hull = IncrementalConvexHull(zip(np.arange(100.0), rng.normal(0, 1, 100)))
        vertices = hull.vertices()
        times = [t for t, _ in vertices]
        assert times == sorted(times)


def _chain_value(chain, t):
    """Piece-wise linear interpolation along a hull chain."""
    for (t1, x1), (t2, x2) in zip(chain, chain[1:]):
        if t1 <= t <= t2:
            if t2 == t1:
                return x1
            return x1 + (x2 - x1) * (t - t1) / (t2 - t1)
    return chain[-1][1]
