"""Tests for the swing filter (paper §3)."""

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct, segments_from_recordings
from repro.core.swing import SwingFilter
from repro.core.types import RecordingKind
from repro.data.patterns import ramp_signal, sawtooth_signal, sine_signal
from repro.data.random_walk import RandomWalkConfig, random_walk

from conftest import assert_within_bound


class TestBasicBehaviour:
    def test_first_point_is_recorded(self):
        swing = SwingFilter(0.5)
        recordings = swing.feed(0.0, 1.0)
        assert len(recordings) == 1
        assert recordings[0].kind is RecordingKind.SEGMENT_START
        assert recordings[0].component(0) == 1.0

    def test_ramp_needs_two_recordings(self):
        times, values = ramp_signal(length=200, slope=0.3)
        result = SwingFilter(0.01).process(zip(times, values))
        assert result.recording_count == 2

    def test_paper_example_pattern(self):
        """Reproduce Example 3.1: the swing filter absorbs the fourth point.

        The pattern rises, dips, then rises again; a linear filter fixed on
        the first two points records after three points, while the swing
        filter swings its bounds and survives one point longer.
        """
        epsilon = 1.0
        stream = [(0.0, 0.0), (1.0, 2.0), (2.0, 2.5), (3.0, 1.8), (4.0, 6.0)]
        from repro.core.linear import LinearFilter

        swing = SwingFilter(epsilon).process(stream)
        linear = LinearFilter(epsilon).process(stream)
        assert swing.recording_count <= linear.recording_count

    def test_connected_segments_only(self, noisy_walk):
        times, values = noisy_walk
        result = SwingFilter(1.0).process(zip(times, values))
        segments = segments_from_recordings(result)
        assert all(segment.connected_to_previous for segment in segments[1:])
        # Connected output: recordings = segments + 1.
        assert result.recording_count == len(segments) + 1

    def test_single_point_stream(self):
        result = SwingFilter(0.5).process([(0.0, 3.0)])
        assert result.recording_count == 1
        assert reconstruct(result).value_at(0.0)[0] == pytest.approx(3.0)

    def test_two_point_stream_exact_at_endpoints(self):
        result = SwingFilter(0.5).process([(0.0, 1.0), (2.0, 2.0)])
        approx = reconstruct(result)
        assert approx.value_at(0.0)[0] == pytest.approx(1.0)
        assert abs(approx.value_at(2.0)[0] - 2.0) <= 0.5 + 1e-9

    def test_empty_stream(self):
        result = SwingFilter(0.5).process([])
        assert result.recording_count == 0


class TestErrorGuarantee:
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_random_walk_bound(self, noisy_walk, epsilon):
        times, values = noisy_walk
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_sine_bound(self):
        times, values = sine_signal(length=2000, amplitude=10.0, period=300.0)
        epsilon = 0.25
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_sawtooth_bound(self):
        times, values = sawtooth_signal(length=1000, amplitude=3.0, period=80.0)
        epsilon = 0.2
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_multidimensional_bound_with_vector_epsilon(self):
        rng = np.random.default_rng(5)
        times = np.arange(400.0)
        values = np.cumsum(rng.normal(0, [0.2, 1.0], (400, 2)), axis=0)
        epsilon = [0.3, 1.5]
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_zero_epsilon_still_bounded(self):
        times = np.arange(30.0)
        values = np.where(times % 2 == 0, 0.0, 1.0)
        result = SwingFilter(0.0).process(zip(times, values))
        assert_within_bound(result, times, values, 0.0)

    def test_irregular_time_steps(self):
        rng = np.random.default_rng(6)
        times = np.cumsum(rng.uniform(0.1, 5.0, 300))
        values = np.cumsum(rng.normal(0, 0.5, 300))
        epsilon = 0.4
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)


class TestCompressionQuality:
    def test_beats_linear_on_random_walk(self, noisy_walk):
        from repro.core.linear import LinearFilter

        times, values = noisy_walk
        epsilon = 1.0
        swing = SwingFilter(epsilon).process(zip(times, values))
        linear = LinearFilter(epsilon).process(zip(times, values))
        assert swing.recording_count < linear.recording_count

    def test_larger_epsilon_never_hurts_much(self, noisy_walk):
        times, values = noisy_walk
        small = SwingFilter(0.2).process(zip(times, values))
        large = SwingFilter(2.0).process(zip(times, values))
        assert large.recording_count <= small.recording_count

    def test_mse_recording_is_admissible(self):
        """The recorded endpoint stays within the bound cone (paper eq. 5)."""
        rng = np.random.default_rng(7)
        times = np.arange(200.0)
        values = np.cumsum(rng.normal(0, 0.7, 200))
        epsilon = 0.5
        result = SwingFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)


class TestMaxLag:
    def test_max_lag_bounds_gap_between_recordings(self):
        times, values = ramp_signal(length=120, slope=0.05)
        result = SwingFilter(5.0, max_lag=15).process(zip(times, values))
        gaps = np.diff([r.time for r in result.recordings])
        assert np.max(gaps) <= 15.0

    def test_max_lag_preserves_error_bound(self):
        times, values = random_walk(
            RandomWalkConfig(length=800, decrease_probability=0.5, max_delta=1.0, seed=9)
        )
        epsilon = 0.6
        result = SwingFilter(epsilon, max_lag=10).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_max_lag_costs_compression(self, smooth_walk):
        times, values = smooth_walk
        epsilon = 1.0
        bounded = SwingFilter(epsilon, max_lag=8).process(zip(times, values))
        unbounded = SwingFilter(epsilon).process(zip(times, values))
        assert bounded.recording_count >= unbounded.recording_count
