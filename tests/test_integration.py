"""End-to-end integration tests crossing module boundaries.

These scenarios mirror how a downstream system would actually use the
library: sensors feed transmitters, recordings travel over a channel into an
archive, and queries run against the reconstructed approximation — with the
paper's ε guarantee holding at every step.
"""

import numpy as np
import pytest

from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import PAPER_FILTERS, create_filter
from repro.approximation.reconstruct import reconstruct
from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.data.sst import sea_surface_temperature
from repro.extensions.optimal_pca import optimal_segment_count
from repro.queries.aggregates import range_aggregate, resample, window_aggregates
from repro.storage.segment_store import SegmentStore
from repro.streams.multiplex import StreamSet
from repro.streams.pipeline import MonitoringPipeline
from repro.streams.source import ArraySource


class TestSensorToArchiveToQuery:
    """Sensor → filter → channel → archive → reconstruction → queries."""

    @pytest.fixture(scope="class")
    def archive(self, tmp_path_factory):
        store = SegmentStore(tmp_path_factory.mktemp("archive"))
        times, values = sea_surface_temperature()
        epsilon = epsilon_from_percent(1.0, values)
        streams = StreamSet("slide", epsilon=epsilon, store=store)
        for t, v in zip(times, values):
            streams.observe("buoy-1", t, v)
        report = streams.close()
        return store, report, (times, values, epsilon)

    def test_compression_and_archival_consistency(self, archive):
        store, report, (times, values, epsilon) = archive
        assert report.points == len(times)
        assert store.describe("buoy-1").recordings == report.recordings
        assert report.compression_ratio > 1.5

    def test_archived_reconstruction_respects_bound(self, archive):
        store, _, (times, values, epsilon) = archive
        approx = store.reconstruct("buoy-1")
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= epsilon + 1e-8

    def test_windowed_queries_match_raw_signal(self, archive):
        store, _, (times, values, epsilon) = archive
        approx = store.reconstruct("buoy-1")
        day_minutes = 24 * 60.0
        windows = window_aggregates(approx, float(times[0]), float(times[-1]), day_minutes)
        assert len(windows) == int(np.ceil((times[-1] - times[0]) / day_minutes))
        for window in windows:
            mask = (times >= window.start) & (times <= window.end)
            if not np.any(mask):
                continue
            assert window.maximum >= values[mask].max() - epsilon - 1e-9
            assert window.minimum <= values[mask].min() + epsilon + 1e-9

    def test_resampled_series_stays_within_bound(self, archive):
        store, _, (times, values, epsilon) = archive
        approx = store.reconstruct("buoy-1")
        grid_times, grid_values = resample(approx, float(times[0]), float(times[-1]), 10.0)
        original = np.interp(grid_times, times, values)
        # The resampled approximation deviates from the (piece-wise linear
        # interpolation of the) original by at most epsilon plus the local
        # interpolation error, which is tiny at the original sampling rate.
        assert np.max(np.abs(grid_values[:, 0] - original)) <= epsilon + 1e-6


class TestMultiDimensionalPipeline:
    def test_correlated_signal_through_pipeline(self):
        times, values = correlated_random_walk(
            CorrelatedWalkConfig(length=2_000, dimensions=3, correlation=0.8, max_delta=0.5, seed=3)
        )
        epsilon = [0.4, 0.4, 0.4]
        pipeline = MonitoringPipeline("slide", epsilon=epsilon)
        report = pipeline.run(ArraySource(times, values))
        assert report.points == 2_000
        assert report.max_absolute_error <= 0.4 + 1e-8
        assert report.compression_ratio > 1.0

    def test_all_paper_filters_agree_on_guarantee(self):
        times, values = correlated_random_walk(
            CorrelatedWalkConfig(length=1_000, dimensions=2, correlation=0.5, max_delta=1.0, seed=9)
        )
        epsilon = 0.8
        for name in PAPER_FILTERS:
            result = create_filter(name, epsilon).process(zip(times, values))
            approx = reconstruct(result)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8, name


class TestCrossFilterConsistency:
    def test_piecewise_constant_filters_bounded_below_by_optimum(self, sst_signal):
        """No piece-wise constant filter can beat the offline optimum [18]."""
        times, values = sst_signal
        epsilon = epsilon_from_percent(3.16, values)
        optimum = optimal_segment_count(values, epsilon)
        for name in ("cache", "cache-midrange", "cache-mean"):
            result = create_filter(name, epsilon).process(zip(times, values))
            assert result.recording_count >= optimum

    def test_slide_dominates_across_precisions(self, sst_signal):
        times, values = sst_signal
        for percent in (0.5, 2.0, 8.0):
            epsilon = epsilon_from_percent(percent, values)
            counts = {
                name: create_filter(name, epsilon).process(zip(times, values)).recording_count
                for name in PAPER_FILTERS
            }
            assert counts["slide"] <= min(counts.values()) + 1

    def test_compression_monotone_in_epsilon(self, sst_signal):
        times, values = sst_signal
        for name in ("swing", "slide"):
            previous = None
            for percent in (0.5, 1.0, 4.0, 16.0):
                epsilon = epsilon_from_percent(percent, values)
                count = create_filter(name, epsilon).process(zip(times, values)).recording_count
                if previous is not None:
                    assert count <= previous * 1.05
                previous = count
