"""Tests for query processing over compressed approximations."""

import numpy as np
import pytest

from repro.approximation.piecewise import (
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)
from repro.approximation.reconstruct import reconstruct
from repro.core.slide import SlideFilter
from repro.core.types import Segment
from repro.data.patterns import sine_signal
from repro.queries.aggregates import (
    integral,
    range_aggregate,
    resample,
    threshold_crossings,
    window_aggregates,
)


def simple_pla():
    """A ramp from (0,0) to (10,10) followed by a flat piece at 4."""
    return PiecewiseLinearApproximation(
        [
            Segment(0.0, [0.0], 10.0, [10.0]),
            Segment(10.0, [4.0], 20.0, [4.0]),
        ]
    )


class TestRangeAggregate:
    def test_single_segment_range(self):
        aggregate = range_aggregate(simple_pla(), 0.0, 10.0)
        assert aggregate.minimum == pytest.approx(0.0)
        assert aggregate.maximum == pytest.approx(10.0)
        assert aggregate.mean == pytest.approx(5.0)
        assert aggregate.integral == pytest.approx(50.0)

    def test_partial_range(self):
        aggregate = range_aggregate(simple_pla(), 2.0, 6.0)
        assert aggregate.minimum == pytest.approx(2.0)
        assert aggregate.maximum == pytest.approx(6.0)
        assert aggregate.mean == pytest.approx(4.0)

    def test_range_spanning_two_segments(self):
        aggregate = range_aggregate(simple_pla(), 5.0, 15.0)
        assert aggregate.maximum == pytest.approx(10.0)
        assert aggregate.minimum == pytest.approx(4.0)
        # integral = ramp part (5..10): (5+10)/2*5 = 37.5; flat part: 4*5 = 20.
        assert aggregate.integral == pytest.approx(57.5)
        assert aggregate.mean == pytest.approx(5.75)

    def test_zero_length_range(self):
        aggregate = range_aggregate(simple_pla(), 3.0, 3.0)
        assert aggregate.minimum == aggregate.maximum == pytest.approx(3.0)
        assert aggregate.integral == 0.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_aggregate(simple_pla(), 5.0, 1.0)

    def test_constant_approximation(self):
        approx = PiecewiseConstantApproximation([0.0, 10.0], [[2.0], [6.0]])
        aggregate = range_aggregate(approx, 0.0, 10.0)
        assert aggregate.minimum == pytest.approx(2.0)
        assert aggregate.maximum == pytest.approx(6.0)

    def test_range_outside_span(self):
        aggregate = range_aggregate(simple_pla(), 25.0, 30.0)
        # The flat tail extrapolates at 4.
        assert aggregate.mean == pytest.approx(4.0)

    def test_aggregate_close_to_true_signal(self):
        """Aggregates from the approximation stay within ε of the true ones."""
        times, values = sine_signal(length=1000, amplitude=5.0, period=250.0)
        epsilon = 0.2
        approx = reconstruct(SlideFilter(epsilon).process(zip(times, values)))
        aggregate = range_aggregate(approx, 100.0, 600.0)
        window = (times >= 100.0) & (times <= 600.0)
        assert aggregate.maximum == pytest.approx(values[window].max(), abs=epsilon + 1e-9)
        assert aggregate.minimum == pytest.approx(values[window].min(), abs=epsilon + 1e-9)
        assert aggregate.mean == pytest.approx(values[window].mean(), abs=epsilon + 0.05)


class TestWindowAggregates:
    def test_windows_cover_range(self):
        windows = window_aggregates(simple_pla(), 0.0, 20.0, window=5.0)
        assert len(windows) == 4
        assert windows[0].start == 0.0
        assert windows[-1].end == 20.0

    def test_last_window_truncated(self):
        windows = window_aggregates(simple_pla(), 0.0, 12.0, window=5.0)
        assert windows[-1].end == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            window_aggregates(simple_pla(), 0.0, 10.0, window=0.0)
        with pytest.raises(ValueError):
            window_aggregates(simple_pla(), 10.0, 0.0, window=1.0)


class TestAggregateSemanticsFixes:
    """Regression tests for the aggregate-semantics bugfixes."""

    def test_out_of_span_extension_feeds_all_four_aggregates(self):
        # The ramp extrapolates to -5 over [-5, 0]; the seed let min/max see
        # the extension while mean/integral silently ignored it.
        aggregate = range_aggregate(simple_pla(), -5.0, 5.0)
        assert aggregate.minimum == pytest.approx(-5.0)
        assert aggregate.maximum == pytest.approx(5.0)
        assert aggregate.integral == pytest.approx(0.0, abs=1e-12)
        assert aggregate.mean == pytest.approx(0.0, abs=1e-12)

    def test_range_inside_interior_gap_degrades_to_trapezoid(self):
        approx = PiecewiseLinearApproximation(
            [
                Segment(0.0, [0.0], 10.0, [10.0]),
                Segment(20.0, [0.0], 30.0, [10.0]),
            ]
        )
        aggregate = range_aggregate(approx, 12.0, 18.0)
        # value_at extrapolates the next piece's line backwards: -8 and -2.
        assert aggregate.minimum == pytest.approx(-8.0)
        assert aggregate.maximum == pytest.approx(-2.0)
        assert aggregate.mean == pytest.approx(-5.0)
        assert aggregate.integral == pytest.approx(-30.0)

    def test_window_count_is_not_inflated_by_float_drift(self):
        # 0.7 / 0.07 is 9.999999999999998 in floats: a naive accumulating
        # cursor (or un-slacked ceil) would emit an 11th sliver window.
        windows = window_aggregates(simple_pla(), 0.0, 0.7, window=0.07)
        assert len(windows) == 10
        assert windows[-1].end == 0.7
        # Edges come from index arithmetic, not a running cursor.
        assert windows[3].start == 3 * 0.07

    def test_resample_grid_never_overshoots_end(self):
        times, values = resample(simple_pla(), 0.0, 0.7, 0.07)
        assert len(times) == 11
        assert times[-1] == 0.7  # 10 * 0.07 rounds to 0.7000000000000001
        assert np.all(times <= 0.7)
        assert values.shape == (11, 1)


class TestIntegralAndCrossings:
    def test_integral_helper(self):
        assert integral(simple_pla(), 0.0, 10.0) == pytest.approx(50.0)

    def test_threshold_crossings_on_ramp(self):
        crossings = threshold_crossings(simple_pla(), threshold=5.0)
        assert crossings == [pytest.approx(5.0)]

    def test_threshold_crossings_range_filter(self):
        assert threshold_crossings(simple_pla(), 5.0, start=6.0) == []

    def test_no_crossing_when_touching(self):
        approx = PiecewiseLinearApproximation([Segment(0.0, [0.0], 10.0, [5.0])])
        # Reaches exactly 5 at the end without crossing above.
        assert threshold_crossings(approx, 5.0) == []

    def test_crossings_on_sine(self):
        times, values = sine_signal(length=1000, amplitude=1.0, period=200.0)
        approx = reconstruct(SlideFilter(0.05).process(zip(times, values)))
        crossings = threshold_crossings(approx, 0.0, start=1.0, end=999.0)
        # A sine with period 200 over ~1000 samples crosses zero ~10 times.
        assert 8 <= len(crossings) <= 12


class TestResample:
    def test_resample_grid(self):
        times, values = resample(simple_pla(), 0.0, 10.0, step=2.5)
        assert times.tolist() == [0.0, 2.5, 5.0, 7.5, 10.0]
        assert values.shape == (5, 1)
        assert values[2, 0] == pytest.approx(5.0)

    def test_resample_validation(self):
        with pytest.raises(ValueError):
            resample(simple_pla(), 0.0, 10.0, step=0.0)
        with pytest.raises(ValueError):
            resample(simple_pla(), 10.0, 0.0, step=1.0)

    def test_resample_accuracy_against_original(self):
        times, values = sine_signal(length=500, amplitude=2.0, period=125.0)
        epsilon = 0.1
        approx = reconstruct(SlideFilter(epsilon).process(zip(times, values)))
        grid_times, grid_values = resample(approx, 0.0, 499.0, step=1.0)
        assert np.max(np.abs(grid_values[:, 0] - values[: len(grid_times)])) <= epsilon + 1e-9


class TestThresholdCrossingBoundaries:
    def test_crossing_exactly_at_range_boundary_is_kept(self):
        """The clip is a closed interval: a crossing at t == start or
        t == end must be reported."""
        crossings = threshold_crossings(simple_pla(), 5.0, start=5.0, end=10.0)
        assert crossings == [pytest.approx(5.0)]
        crossings = threshold_crossings(simple_pla(), 5.0, start=0.0, end=5.0)
        assert crossings == [pytest.approx(5.0)]

    def test_crossing_just_outside_boundary_is_dropped(self):
        assert threshold_crossings(simple_pla(), 5.0, start=5.0 + 1e-9) == []
        assert threshold_crossings(simple_pla(), 5.0, end=5.0 - 1e-9) == []

    def test_none_bounds_are_accepted(self):
        # The signature promises Optional[float]; None means unbounded.
        assert threshold_crossings(simple_pla(), 5.0, start=None, end=None) == [
            pytest.approx(5.0)
        ]
