"""Unit tests for :mod:`repro.core.types`."""

import numpy as np
import pytest

from repro.core.types import (
    DataPoint,
    FilterResult,
    Recording,
    RecordingKind,
    Segment,
    as_value_vector,
    ensure_points,
    points_from_arrays,
    split_connected_runs,
)


class TestValueVector:
    def test_scalar_becomes_vector(self):
        assert as_value_vector(3.0).shape == (1,)

    def test_list_preserved(self):
        vector = as_value_vector([1.0, 2.0, 3.0])
        assert vector.shape == (3,)
        assert vector.dtype == float

    def test_matrix_rejected(self):
        with pytest.raises(ValueError):
            as_value_vector([[1.0, 2.0], [3.0, 4.0]])


class TestDataPoint:
    def test_scalar_point(self):
        point = DataPoint(1.0, 5.0)
        assert point.dimensions == 1
        assert point.component(0) == 5.0

    def test_vector_point(self):
        point = DataPoint(2.0, [1.0, 2.0, 3.0])
        assert point.dimensions == 3
        assert point.component(2) == 3.0

    def test_as_tuple(self):
        point = DataPoint(1.5, [1.0, 2.0])
        assert point.as_tuple() == (1.5, (1.0, 2.0))


class TestRecording:
    def test_kind_and_value(self):
        recording = Recording(3.0, 7.0, RecordingKind.SEGMENT_END)
        assert recording.kind is RecordingKind.SEGMENT_END
        assert recording.component(0) == 7.0
        assert recording.dimensions == 1


class TestSegment:
    def test_slope_and_interpolation(self):
        segment = Segment(0.0, [0.0], 10.0, [5.0])
        assert segment.slope()[0] == pytest.approx(0.5)
        assert segment.value_at(4.0)[0] == pytest.approx(2.0)
        assert segment.duration == 10.0

    def test_extrapolation_outside_span(self):
        segment = Segment(0.0, [0.0], 2.0, [2.0])
        assert segment.value_at(4.0)[0] == pytest.approx(4.0)
        assert segment.value_at(-1.0)[0] == pytest.approx(-1.0)

    def test_zero_duration_segment(self):
        segment = Segment(1.0, [3.0], 1.0, [3.0])
        assert segment.duration == 0.0
        assert segment.slope()[0] == 0.0
        assert segment.value_at(1.0)[0] == 3.0

    def test_reversed_times_rejected(self):
        with pytest.raises(ValueError):
            Segment(2.0, [0.0], 1.0, [1.0])

    def test_covers(self):
        segment = Segment(1.0, [0.0], 3.0, [1.0])
        assert segment.covers(2.0)
        assert not segment.covers(3.5)

    def test_multidimensional_interpolation(self):
        segment = Segment(0.0, [0.0, 10.0], 2.0, [2.0, 6.0])
        value = segment.value_at(1.0)
        assert value[0] == pytest.approx(1.0)
        assert value[1] == pytest.approx(8.0)


class TestFilterResult:
    def test_compression_ratio(self):
        result = FilterResult(
            recordings=[Recording(0.0, 0.0, RecordingKind.HOLD)], points_processed=10, dimensions=1
        )
        assert result.compression_ratio == 10.0
        assert result.recording_count == 1

    def test_empty_result(self):
        result = FilterResult()
        assert result.compression_ratio == 0.0
        assert result.recording_matrix().shape[0] == 0

    def test_recording_matrix_shape(self):
        result = FilterResult(
            recordings=[
                Recording(0.0, [1.0, 2.0], RecordingKind.SEGMENT_START),
                Recording(1.0, [3.0, 4.0], RecordingKind.SEGMENT_END),
            ],
            points_processed=5,
            dimensions=2,
        )
        matrix = result.recording_matrix()
        assert matrix.shape == (2, 3)
        assert matrix[1, 0] == 1.0
        assert matrix[1, 2] == 4.0

    def test_recording_times(self):
        result = FilterResult(
            recordings=[
                Recording(0.0, 0.0, RecordingKind.HOLD),
                Recording(4.0, 1.0, RecordingKind.HOLD),
            ],
            points_processed=5,
            dimensions=1,
        )
        assert result.recording_times() == [0.0, 4.0]


class TestHelpers:
    def test_points_from_arrays(self):
        points = points_from_arrays([0.0, 1.0], [5.0, 6.0])
        assert len(points) == 2
        assert points[1].time == 1.0

    def test_ensure_points_mixed_input(self):
        mixed = [DataPoint(0.0, 1.0), (1.0, 2.0)]
        points = ensure_points(mixed)
        assert all(isinstance(p, DataPoint) for p in points)
        assert points[1].component(0) == 2.0

    def test_split_connected_runs(self):
        segments = [
            Segment(0.0, [0.0], 1.0, [1.0]),
            Segment(1.0, [1.0], 2.0, [2.0], connected_to_previous=True),
            Segment(3.0, [0.0], 4.0, [1.0]),
        ]
        runs = split_connected_runs(segments)
        assert len(runs) == 2
        assert len(runs[0]) == 2
        assert len(runs[1]) == 1
